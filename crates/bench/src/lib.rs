//! Shared helpers for the benchmark suite.
//!
//! Benchmarks run *scaled-down* versions of the paper's experiments: the
//! same code paths as the `fig2`–`fig8` binaries, but fewer nodes, fewer
//! seeds and shorter simulated time, so `cargo bench` finishes in
//! minutes while still measuring realistic full-stack workloads. The
//! benched value is the wall-clock cost of regenerating (a slice of)
//! each figure; the *science* lives in the harness binaries and
//! EXPERIMENTS.md.

// `deny`, not `forbid`: the `alloc` module needs `unsafe` for its
// `GlobalAlloc` impl and opts back in explicitly; everything else in the
// crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use ag_harness::Scenario;
use ag_mobility::{Field, Mobility, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::{Engine, Message, NodeId, NodeSetup, PhyParams, ProtoCtx, Protocol, RxKind, TimerKey};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::SimDuration;

#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod perf;

/// Seconds of simulated time per benchmark run.
pub const BENCH_SECS: u64 = 60;

/// Nodes per benchmark scenario (figure benches override where the
/// figure sweeps node count).
pub const BENCH_NODES: usize = 20;

/// A scaled-down paper scenario for benchmarking.
pub fn bench_scenario(range_m: f64, max_speed: f64) -> Scenario {
    Scenario::paper(BENCH_NODES, range_m, max_speed).with_duration_secs(BENCH_SECS)
}

/// A fixed-size beacon payload.
#[derive(Clone, Debug)]
pub struct BeaconMsg;

impl Message for BeaconMsg {
    fn wire_size(&self) -> usize {
        64
    }
}

/// A minimal broadcast-beacon protocol used to measure *engine*
/// throughput (receiver scans, collision checks, mobility rebucketing)
/// without any routing-layer cost on top.
#[derive(Debug)]
pub struct Beacon {
    interval: SimDuration,
    /// Broadcasts heard, across all senders.
    pub heard: u64,
}

impl Beacon {
    /// A beacon source transmitting every `interval`.
    pub fn new(interval: SimDuration) -> Self {
        Beacon { interval, heard: 0 }
    }
}

impl Protocol for Beacon {
    type Msg = BeaconMsg;

    fn start<C: ProtoCtx<BeaconMsg>>(&mut self, api: &mut C) {
        // Stagger first beacons so the whole network doesn't key up at
        // one instant.
        let offset = SimDuration::from_millis(3 * (api.id().raw() as u64 + 1));
        api.set_timer(offset, 0);
    }

    fn on_packet<C: ProtoCtx<BeaconMsg>>(
        &mut self,
        _api: &mut C,
        _f: NodeId,
        _m: BeaconMsg,
        _r: RxKind,
    ) {
        self.heard += 1;
    }

    fn on_timer<C: ProtoCtx<BeaconMsg>>(&mut self, api: &mut C, _key: TimerKey) {
        api.broadcast(BeaconMsg);
        api.set_timer(self.interval, 0);
    }

    fn on_send_failure<C: ProtoCtx<BeaconMsg>>(&mut self, _api: &mut C, _t: NodeId, _m: BeaconMsg) {
    }
}

/// A mobile beaconing network at constant node density: `n` random-
/// waypoint nodes on a field scaled so mean degree stays fixed as `n`
/// grows (≈2 neighbours — the sparse, coverage-limited regime large
/// ad-hoc networks live in, and the one where an `O(N)` receiver scan
/// per transmission is almost pure waste), 100 m range, 4 Hz beacons.
/// `spatial` selects the grid or the brute-force engine path — the knob
/// the scaling bench compares. At higher densities the ratio shrinks
/// toward the Amdahl floor of per-event costs shared by both paths.
pub fn beacon_engine(n: usize, seed: u64, spatial: bool) -> Engine<Beacon> {
    let range = 100.0;
    // Mean degree ≈ n·π·range²/side² ≈ 2, independent of n.
    let side = (n as f64 * std::f64::consts::PI * range * range / 2.0).sqrt();
    let field = Field::new(side, side);
    let splitter = SeedSplitter::new(seed);
    let nodes = (0..n)
        .map(|i| {
            let mut rng = splitter.stream(StreamKind::Placement, i as u64);
            NodeSetup {
                mobility: Box::new(RandomWaypoint::new(
                    field,
                    SpeedRange::new(1.0, 10.0),
                    PauseRange::uniform_secs(0.0, 5.0),
                    &mut rng,
                )) as Box<dyn Mobility>,
                protocol: Beacon::new(SimDuration::from_millis(250)),
            }
        })
        .collect();
    Engine::new(
        PhyParams::paper_default(range).with_spatial_index(spatial),
        seed,
        nodes,
    )
}

/// A contention-heavy beaconing network: `n` random-waypoint nodes
/// packed to a mean degree of ≈12 (versus [`beacon_engine`]'s ≈2),
/// beaconing at 10 Hz. Most transmissions now reach many receivers and
/// collide with each other, so the run is dominated by short-horizon
/// MAC timers — backoff re-arms, deferred attempts, busy-channel
/// retries. That is exactly the event mix the calendar queue's dense
/// day buckets are tuned for, which makes this the scheduler stress
/// workload of `BENCH_<pr>.json`.
pub fn dense_engine(n: usize, seed: u64) -> Engine<Beacon> {
    let range = 100.0;
    // Mean degree ≈ n·π·range²/side² ≈ 12.
    let side = (n as f64 * std::f64::consts::PI * range * range / 12.0).sqrt();
    let field = Field::new(side, side);
    let splitter = SeedSplitter::new(seed);
    let nodes = (0..n)
        .map(|i| {
            let mut rng = splitter.stream(StreamKind::Placement, i as u64);
            NodeSetup {
                mobility: Box::new(RandomWaypoint::new(
                    field,
                    SpeedRange::new(1.0, 10.0),
                    PauseRange::uniform_secs(0.0, 5.0),
                    &mut rng,
                )) as Box<dyn Mobility>,
                protocol: Beacon::new(SimDuration::from_millis(100)),
            }
        })
        .collect();
    Engine::new(
        PhyParams::paper_default(range).with_spatial_index(true),
        seed,
        nodes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::SimTime;

    #[test]
    fn bench_scenario_is_scaled() {
        let sc = bench_scenario(75.0, 0.2);
        assert_eq!(sc.nodes, BENCH_NODES);
        assert!(sc.packets_sent() < 2201);
    }

    #[test]
    fn beacon_engine_paths_agree() {
        let mut grid = beacon_engine(30, 5, true);
        let mut brute = beacon_engine(30, 5, false);
        grid.run_until(SimTime::from_secs(10));
        brute.run_until(SimTime::from_secs(10));
        let heard = |e: &Engine<Beacon>| e.protocols().iter().map(|p| p.heard).sum::<u64>();
        assert!(heard(&grid) > 0, "beacons should be heard");
        assert_eq!(heard(&grid), heard(&brute));
        let cg: Vec<_> = grid.counters().iter().collect();
        let cb: Vec<_> = brute.counters().iter().collect();
        assert_eq!(cg, cb);
    }

    #[test]
    fn dense_engine_is_contention_heavy() {
        let mut dense = dense_engine(30, 5);
        dense.run_until(SimTime::from_secs(5));
        let heard: u64 = dense.protocols().iter().map(|p| p.heard).sum();
        assert!(heard > 0, "beacons should be heard");
        // Denser field + faster beacons → more kernel events than the
        // sparse scaling workload over the same simulated span.
        let mut sparse = beacon_engine(30, 5, true);
        sparse.run_until(SimTime::from_secs(5));
        assert!(dense.events_processed() > sparse.events_processed());
    }
}
