//! Multi-seed parameter sweeps: the machinery behind every figure.
//!
//! Each sweep point runs both protocol stacks over `seeds` independent
//! seeds and pools the per-receiver packet counts; the pooled summary's
//! mean is the paper's plotted line and its min/max are the error bars
//! ("the range of measured data values obtained for the full set of
//! receivers", §5.1).

use ag_sim::stats::Summary;
use serde::Serialize;

use crate::{run_gossip, run_maodv, Scenario};

/// One x-position of a figure: pooled receiver summaries for both
/// protocol series.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Packets the source sent at this point.
    pub sent: u64,
    /// Pooled receiver packet counts, bare MAODV.
    pub maodv: Summary,
    /// Pooled receiver packet counts, MAODV + gossip.
    pub gossip: Summary,
    /// Pooled per-member goodput observations (gossip runs).
    pub goodput: Summary,
}

/// Runs one sweep point over `seeds` seeds.
pub fn sweep_point(sc: &Scenario, x: f64, seeds: u64) -> SweepPoint {
    let mut maodv = Summary::new();
    let mut gossip = Summary::new();
    let mut goodput = Summary::new();
    let mut sent = 0;
    for seed in 0..seeds {
        let m = run_maodv(sc, seed);
        maodv.merge(&m.received_summary());
        let g = run_gossip(sc, seed);
        gossip.merge(&g.received_summary());
        for ms in g.receivers() {
            if let Some(gp) = ms.goodput_percent {
                goodput.record(gp);
            }
        }
        sent = g.sent;
    }
    SweepPoint {
        x,
        sent,
        maodv,
        gossip,
        goodput,
    }
}

/// Sweeps `xs`, applying `apply(scenario, x)` to a fresh copy of `base`
/// at each point.
pub fn sweep(
    base: &Scenario,
    xs: &[f64],
    apply: fn(&mut Scenario, f64),
    seeds: u64,
) -> Vec<SweepPoint> {
    xs.iter()
        .map(|&x| {
            let mut sc = base.clone();
            apply(&mut sc, x);
            sweep_point(&sc, x, seeds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_pools_across_seeds_and_members() {
        let sc = Scenario::paper(8, 100.0, 0.2).with_duration_secs(40);
        let p = sweep_point(&sc, 100.0, 2);
        // 8 nodes → 2 members min(8/3,2)=2 members → 1 receiver per run,
        // 2 seeds → 2 pooled observations per protocol.
        assert_eq!(p.maodv.count(), 2);
        assert_eq!(p.gossip.count(), 2);
        assert!(p.sent > 0);
        assert!(p.gossip.mean() >= 0.0);
    }

    #[test]
    fn sweep_applies_parameter() {
        let base = Scenario::paper(6, 50.0, 0.2).with_duration_secs(30);
        let pts = sweep(&base, &[60.0, 90.0], |sc, x| sc.range_m = x, 1);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].x, 60.0);
        assert_eq!(pts[1].x, 90.0);
    }
}
