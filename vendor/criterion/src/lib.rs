//! Offline API-compatible stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim (see `vendor/README.md`). It supports the
//! subset the `ag-bench` suite uses — [`Criterion::bench_function`],
//! the `sample_size`/`measurement_time`/`warm_up_time` builders and the
//! [`criterion_group!`]/[`criterion_main!`] macros — and measures with
//! a plain wall-clock sampling loop: warm up, then time up to
//! `sample_size` batches or until `measurement_time` elapses, and print
//! mean/min/max per-iteration time. No statistical analysis, HTML
//! reports or CLI filtering; swapping the real criterion back in is a
//! one-line change in the root manifest.

// Wall-clock measurement is this shim's entire purpose; the workspace
// clippy.toml disallows Instant::now in simulation code (wall-clock
// discipline), and this is the documented exception.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets the target total measuring time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time run before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark: warm-up, sampling loop, one summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };

        // Warm-up: at least one pass, then keep going until the budget
        // is spent. Also an estimate of the per-pass cost.
        let warm_start = Instant::now();
        loop {
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            b.iters = 0;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if run_start.elapsed() >= self.measurement_time {
                break;
            }
        }

        if samples.is_empty() {
            println!("{name:<40} (no iterations recorded)");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Per-benchmark timing handle (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`, discarding its output via
    /// [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a group of benchmark targets (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        assert!(calls >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn group_macro_compiles_in_both_forms() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 1u8));
        }
        criterion_group! {
            name = configured;
            config = Criterion::default()
                .sample_size(1)
                .measurement_time(Duration::from_millis(1))
                .warm_up_time(Duration::from_millis(1));
            targets = target
        }
        criterion_group!(defaults, target);
        let _ = (configured, defaults);
        configured();
    }
}
