//! Offline API-compatible stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim (see `vendor/README.md`). The workspace uses
//! serde purely as derive decoration today (no serializer is wired up),
//! so the traits are markers with blanket impls: every type satisfies
//! `Serialize`/`Deserialize` bounds, and the no-op derives from
//! `serde_derive` keep the annotation sites source-compatible with the
//! real crate. Swapping the real serde back in is a two-line change in
//! the root manifest's `[workspace.dependencies]`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of the real crate's `serde::de` module path.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of the real crate's `serde::ser` module path.
pub mod ser {
    pub use crate::Serialize;
}
