//! Multi-seed parallelism: farm independent simulation runs across OS
//! threads, merge results deterministically.
//!
//! Every figure pools statistics over many independent seeds, and each
//! seed's run is a pure function of `(scenario, seed)` — embarrassingly
//! parallel. [`run_seeds`] executes a per-seed job on a small worker
//! pool and returns the results **in seed order**, so any fold over them
//! is bit-for-bit identical to a serial loop no matter how the OS
//! schedules the workers. The kernel itself stays sequential (that is
//! what buys exact reproducibility); parallelism lives strictly at the
//! whole-run granularity.
//!
//! Thread count comes from [`Parallelism`]: explicit, or
//! [`Parallelism::auto`] honoring the `AG_THREADS` environment variable
//! and falling back to the machine's available parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many worker threads a sweep may use.
///
/// # Example
///
/// ```
/// use ag_harness::Parallelism;
/// assert_eq!(Parallelism::serial().threads(), 1);
/// assert!(Parallelism::auto().threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        Parallelism { threads }
    }

    /// One worker: the plain serial loop.
    pub fn serial() -> Self {
        Parallelism::new(1)
    }

    /// `AG_THREADS` if set to a positive integer, otherwise the
    /// machine's available parallelism (1 if unknown).
    pub fn auto() -> Self {
        if let Some(n) = std::env::var("AG_THREADS")
            .ok()
            .as_deref()
            .and_then(parse_threads)
        {
            return Parallelism::new(n);
        }
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Parses an `AG_THREADS` value; `None` for anything but a positive
/// integer.
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Runs `job(seed)` for every seed in `0..seeds` on up to
/// [`Parallelism::threads`] workers and returns the results **indexed
/// by seed**, regardless of completion order.
///
/// Seeds are handed out through a shared atomic counter (dynamic load
/// balancing — seeds vary a lot in wall-clock cost), but the output
/// order is fixed, so folds over the returned vector are deterministic.
///
/// # Example
///
/// ```
/// use ag_harness::{run_seeds, Parallelism};
///
/// // Four workers, results still indexed by seed.
/// let squares = run_seeds(8, Parallelism::new(4), |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
///
/// // Identical to the serial loop, whatever the pool size.
/// let serial = run_seeds(8, Parallelism::serial(), |seed| seed * seed);
/// assert_eq!(squares, serial);
/// ```
pub fn run_seeds<T, F>(seeds: u64, par: Parallelism, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let n = usize::try_from(seeds).expect("seed count overflows usize");
    let workers = par.threads().min(n.max(1));
    if workers <= 1 {
        return (0..seeds).map(job).collect();
    }
    let next = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= seeds {
                    break;
                }
                let out = job(seed);
                *slots[seed as usize].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a seed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = Parallelism::new(0);
    }

    #[test]
    fn results_come_back_in_seed_order() {
        for threads in [1, 2, 8] {
            let out = run_seeds(16, Parallelism::new(threads), |seed| {
                // Skew per-seed cost so completion order scrambles.
                #[allow(clippy::disallowed_methods)]
                // ag-lint: allow(wall-clock) -- deliberate skew; tests seed-order merge, not timing
                std::thread::sleep(std::time::Duration::from_micros((16 - seed) * 200));
                seed * 10
            });
            let expected: Vec<u64> = (0..16).map(|s| s * 10).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn more_workers_than_seeds_is_fine() {
        let out = run_seeds(2, Parallelism::new(16), |s| s);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn zero_seeds_yields_empty() {
        let out = run_seeds(0, Parallelism::new(4), |s| s);
        assert!(out.is_empty());
    }
}
