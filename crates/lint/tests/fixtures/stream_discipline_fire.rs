//! must-fire: ad-hoc RNG construction outside the StreamKind helpers.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn ad_hoc(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn entropy_and_thread_rng() {
    let _r = SmallRng::from_entropy();
    let _t = rand::thread_rng();
}
