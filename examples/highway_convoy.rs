//! Highway convoy: inter-vehicle communication, the paper's other
//! motivating application ("communication between automobiles on
//! highways").
//!
//! A convoy of 24 vehicles is spread along a 1 km × 30 m highway
//! segment. Eight of them (the lead, the tail and six trucks in
//! between) subscribe to a hazard-warning channel. Vehicles drift
//! relative to each other at up to 8 m/s of *relative* speed, so radio
//! links form and break constantly — the regime of the paper's
//! Figure 5, where bare MAODV loses 10–20 % of packets and gossip
//! recovery matters most.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example highway_convoy
//! ```

use ag_core::{AgConfig, AnonymousGossip};
use ag_maodv::{GroupId, MaodvConfig, TrafficSource};
use ag_mobility::{Field, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::{SimDuration, SimTime};

fn main() {
    let n = 24u32;
    // Every third vehicle subscribes to the hazard channel.
    let members: Vec<NodeId> = (0..n).filter(|i| i % 3 == 0).map(NodeId::new).collect();
    let source = members[0];
    // A highway segment, modelled in the convoy's frame of reference:
    // positions are relative to the convoy centre, so random-waypoint
    // motion inside the strip captures relative drift between vehicles.
    let field = Field::new(1000.0, 30.0);
    let seed = 2024;
    let splitter = SeedSplitter::new(seed);

    // The lead vehicle broadcasts a hazard report twice a second.
    let traffic = TrafficSource::compact(
        SimTime::from_secs(60),
        SimDuration::from_millis(500),
        480,
        64,
    );

    let nodes: Vec<NodeSetup<AnonymousGossip>> = (0..n)
        .map(|i| {
            let id = NodeId::new(i);
            let mut rng = splitter.stream(StreamKind::Placement, i as u64);
            NodeSetup {
                mobility: Box::new(RandomWaypoint::new(
                    field,
                    SpeedRange::new(0.0, 8.0),
                    PauseRange::uniform_secs(0.0, 10.0),
                    &mut rng,
                )),
                protocol: AnonymousGossip::new(
                    AgConfig::paper_default(),
                    MaodvConfig::paper_default(),
                    id,
                    GroupId(0),
                    members.contains(&id),
                    (id == source).then_some(traffic),
                ),
            }
        })
        .collect();

    // 150 m vehicle radios.
    let mut engine = Engine::new(PhyParams::paper_default(150.0), seed, nodes);
    engine.run_until(SimTime::from_secs(360));

    let sent = traffic.packet_count();
    println!(
        "convoy of {n} vehicles; {} hazard subscribers; {sent} warnings sent\n",
        members.len()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "vehicle", "received", "recovered", "delivery"
    );
    let mut worst = 100.0f64;
    for &m in &members {
        let p = engine.protocol(m);
        let pct = 100.0 * p.delivery().distinct() as f64 / sent as f64;
        if m != source {
            worst = worst.min(pct);
        }
        let tag = if m == source { " (lead)" } else { "" };
        println!(
            "{:>8} {:>10} {:>12} {:>13.1}%{tag}",
            m.to_string(),
            p.delivery().distinct(),
            p.delivery().via_gossip(),
            pct
        );
    }
    println!("\nworst subscriber still saw {worst:.1}% of hazard warnings");
    let breaks = engine.counters().get("maodv.tree_link_break");
    let repairs = engine.counters().get("maodv.repair_rreq");
    println!("tree links broke {breaks} times; {repairs} downstream repairs were issued");
}
