//! must-pass: deterministic replacements, waived oracle uses, exempt
//! test code, and mentions inside strings/comments.

use ag_sim::hash::{DetHashMap, DetHashSet};
use std::collections::BTreeMap;

pub struct Tables {
    routes: DetHashMap<u32, u32>,
    seen: DetHashSet<u32>,
    ordered: BTreeMap<u32, u32>,
}

pub fn build() -> DetHashMap<u32, u32> {
    // A doc mention of HashMap::new() in a comment is not a use.
    let _msg = "neither is HashMap::new() in a string";
    let mut m = DetHashMap::default();
    m.insert(1, 2);
    m
}

// ag-lint: allow(det-hash) -- fixture: the waived reference-oracle import shape
use std::collections::BinaryHeap;

// ag-lint: allow(det-hash) -- fixture: waived oracle type in a signature
pub fn heap() -> BinaryHeap<u32> {
    // ag-lint: allow(det-hash) -- fixture: waived oracle construction
    BinaryHeap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        let _ = std::collections::HashSet::<u32>::new();
    }
}
