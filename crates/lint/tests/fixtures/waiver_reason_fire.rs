//! must-fire: malformed waivers are findings of the waiver-reason
//! meta-rule — and never suppress anything.

// ag-lint: allow(det-hash)
pub fn missing_reason() {}

// ag-lint: allow(det-hash) --
pub fn empty_reason() {}

// ag-lint: allow(no-such-rule) -- a perfectly good reason
pub fn unknown_rule() {}

// ag-lint: allow(waiver-reason) -- trying to waive the meta-rule
pub fn meta_rule_is_unwaivable() {}

// ag-lint: deny(det-hash) -- not the allow(...) form
pub fn unrecognized_form() {}
