//! Offline API-compatible stand-in for `rand` 0.9.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim (see `vendor/README.md`) covering exactly the
//! surface the simulation uses:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`
//!   and `random_iter` (the rand 0.9 method names);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`], a real xoshiro256++ generator (the same
//!   algorithm family the real crate uses on 64-bit targets), seeded via
//!   SplitMix64 exactly as rand's `seed_from_u64` does.
//!
//! The streams are deterministic: a generator's output is a pure
//! function of its seed, which is all the reproduction's
//! "runs are a pure function of (scenario, seed)" guarantee needs. The
//! bit streams are *not* guaranteed identical to the real crate's, so
//! swapping the real rand back in would change individual run numbers
//! (not their statistics).

#![forbid(unsafe_code)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full value range (the shim's
/// analogue of sampling from rand's `StandardUniform` distribution;
/// floats sample from `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` for `span >= 1` via Lemire's widening
/// multiply; unbiased enough for simulation use (bias < 2^-64 · span).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!((1..=1 << 64).contains(&span));
    ((rng.next_u64() as u128) * span) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = <$t as Standard>::sample(rng);
                self.start + x * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let x = <$t as Standard>::sample(rng);
                x.mul_add(hi - lo, lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.9's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` over its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Consumes the generator into an infinite iterator of draws.
    fn random_iter<T: Standard>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _marker: PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator returned by [`Rng::random_iter`].
#[derive(Debug, Clone)]
pub struct RandomIter<R, T> {
    rng: R,
    _marker: PhantomData<T>,
}

impl<R: RngCore, T: Standard> Iterator for RandomIter<R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(T::sample(&mut self.rng))
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as rand's seed_from_u64 does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.random_range(3..=17u64);
            assert!((3..=17).contains(&y));
            let f = r.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let g = r.random_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
            let i = r.random_range(0..10_000);
            assert!((0..10_000).contains(&i));
        }
    }

    #[test]
    fn full_domain_ranges_do_not_overflow() {
        let mut r = SmallRng::seed_from_u64(9);
        let _ = r.random_range(u64::MIN..=u64::MAX);
        let _ = r.random_range(i64::MIN..=i64::MAX);
        let _ = r.random_range(i64::MIN..i64::MAX);
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
        assert_eq!((0..1000).filter(|_| r.random_bool(0.0)).count(), 0);
        assert_eq!((0..1000).filter(|_| r.random_bool(1.0)).count(), 1000);
    }

    #[test]
    fn uniformity_over_small_span() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.random_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_iter_streams() {
        let r = SmallRng::seed_from_u64(3);
        let v: Vec<u64> = r.random_iter().take(4).collect();
        let w: Vec<u64> = SmallRng::seed_from_u64(3).random_iter().take(4).collect();
        assert_eq!(v, w);
        assert_eq!(v.len(), 4);
    }
}
