//! The reference event queue: the seed `BinaryHeap` implementation.
//!
//! [`BinaryHeapQueue`] is the queue the kernel shipped with before the
//! calendar-queue scheduler ([`crate::EventQueue`]) replaced it on the
//! hot path. It is kept — unchanged — for two jobs:
//!
//! * **Differential oracle.** Both queues drain in exactly the same
//!   total order — ascending `(time, seq)` — so a property test can
//!   feed an arbitrary interleaving of schedules and pops to both and
//!   assert identical output (see the proptests in `event.rs`). Any
//!   divergence is a scheduler bug by construction.
//! * **Perf baseline.** The `perf_json` bench (`crates/bench`) replays
//!   the same timer workload through both implementations and reports
//!   the throughput ratio in `BENCH_<pr>.json`, so the calendar queue's
//!   advantage is a tracked artifact, not a claim.
//!
//! Do not use this queue in new engine code; it exists to keep the fast
//! path honest.

use std::cmp::Ordering;
// ag-lint: allow(det-hash) -- frozen seed-vintage reference oracle; the calendar queue is diffed against it
use std::collections::BinaryHeap;

use crate::{EventEntry, SimTime};

/// Wrapper giving [`EventEntry`] the reversed (earliest-first) ordering
/// the max-heap needs.
#[derive(Debug, Clone)]
struct HeapEntry<E>(EventEntry<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// The seed-vintage `BinaryHeap` min-priority queue of timestamped
/// events, with the same API and the same deterministic FIFO
/// tie-breaking as [`crate::EventQueue`].
///
/// # Example
///
/// ```
/// use ag_sim::reference::BinaryHeapQueue;
/// use ag_sim::SimTime;
///
/// let mut q = BinaryHeapQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c"); // same instant as "b": FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryHeapQueue<E> {
    // ag-lint: allow(det-hash) -- the reference queue IS the seed BinaryHeap, preserved on purpose
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            // ag-lint: allow(det-hash) -- constructing the frozen reference oracle
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(EventEntry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.0.time, entry.0.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever popped from this queue.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        BinaryHeapQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_orders_by_time_then_fifo() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(1), 11);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 11, 2, 3]);
        assert_eq!(q.scheduled_count(), 4);
        assert_eq!(q.popped_count(), 4);
    }

    #[test]
    fn reference_clear_and_default() {
        let mut q: BinaryHeapQueue<u8> = BinaryHeapQueue::default();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
