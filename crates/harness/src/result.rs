//! Reduced results of one simulation run.

use ag_net::NodeId;
use ag_sim::stats::Summary;
use serde::{Deserialize, Serialize};

use crate::ProtocolKind;

/// One member's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberStats {
    /// The member.
    pub node: NodeId,
    /// Distinct data packets received (the paper's y-axis).
    pub received: u64,
    /// Of those, first delivered along the multicast tree.
    pub via_tree: u64,
    /// Of those, first delivered by a gossip reply.
    pub via_gossip: u64,
    /// §5.5 goodput, if any reply traffic was received.
    pub goodput_percent: Option<f64>,
    /// Gossip rounds this member ran.
    pub gossip_rounds: u64,
}

/// The reduced outcome of one `(scenario, seed, protocol)` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Which stack ran.
    pub protocol: ProtocolKind,
    /// The master seed.
    pub seed: u64,
    /// The source member.
    pub source: NodeId,
    /// Packets the source emitted.
    pub sent: u64,
    /// Per-member outcomes (source included).
    pub members: Vec<MemberStats>,
    /// Engine counters at the end of the run.
    pub counters: Vec<(String, u64)>,
}

impl RunResult {
    /// Member stats excluding the source (which trivially has all its
    /// own packets); this is what the figures aggregate.
    pub fn receivers(&self) -> impl Iterator<Item = &MemberStats> {
        let source = self.source;
        self.members.iter().filter(move |m| m.node != source)
    }

    /// Summary of packets received across receivers (the paper's data
    /// point: mean plus min/max error bar).
    pub fn received_summary(&self) -> Summary {
        self.receivers().map(|m| m.received as f64).collect()
    }

    /// Mean delivery ratio across receivers, in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.received_summary().mean() / self.sent as f64
    }

    /// Value of an engine counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(node: u16, received: u64) -> MemberStats {
        MemberStats {
            node: NodeId::new(node),
            received,
            via_tree: received,
            via_gossip: 0,
            goodput_percent: None,
            gossip_rounds: 0,
        }
    }

    fn result() -> RunResult {
        RunResult {
            protocol: ProtocolKind::Maodv,
            seed: 0,
            source: NodeId::new(0),
            sent: 100,
            members: vec![stats(0, 100), stats(1, 80), stats(2, 60)],
            counters: vec![("x".into(), 5)],
        }
    }

    #[test]
    fn receivers_exclude_source() {
        let r = result();
        let ids: Vec<NodeId> = r.receivers().map(|m| m.node).collect();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn summary_and_ratio() {
        let r = result();
        let s = r.received_summary();
        assert_eq!(s.mean(), 70.0);
        assert_eq!(s.min(), 60.0);
        assert_eq!(s.max(), 80.0);
        assert!((r.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn counter_lookup() {
        let r = result();
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("missing"), 0);
    }
}
