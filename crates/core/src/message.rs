//! The gossip wire messages (paper §4.1's five-field gossip message plus
//! the reply).

use std::sync::Arc;

use ag_maodv::GroupId;
use ag_net::{Message, NodeId};

/// Identity of one multicast data packet: §4.4's two-tuple sequence
/// number (sender address, per-sender sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId {
    /// Originating member.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u32,
}

impl PacketId {
    /// Creates a packet id.
    pub fn new(origin: NodeId, seq: u32) -> Self {
        PacketId { origin, seq }
    }
}

/// A stored data packet (payload bytes are virtual; identity + length is
/// all the simulator carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// The packet's identity.
    pub id: PacketId,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// The gossip message (§4.1): group, source, lost buffer, its size
/// (implicit in the vec) and the expected sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipRequest {
    /// The multicast group gossiped about.
    pub group: GroupId,
    /// The node that started this gossip round (replies go here).
    pub initiator: NodeId,
    /// Sequence numbers the initiator believes it has lost (≤ the
    /// configured lost-buffer size).
    pub lost: Vec<PacketId>,
    /// Per-origin next expected sequence number at the initiator
    /// (detects tail loss the initiator cannot see).
    pub expected: Vec<(NodeId, u32)>,
    /// Hops travelled so far (lets relays install a reverse route to the
    /// initiator, which is why replies need no route discovery).
    pub hops: u8,
    /// Remaining walk budget.
    pub ttl: u8,
}

/// A gossip reply: the packets a member found in its history table for
/// the initiator (§4.4, pull mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipReply {
    /// The group.
    pub group: GroupId,
    /// The replying member (feeds the initiator's member cache).
    pub responder: NodeId,
    /// Recovered packets, payloads included.
    pub packets: Vec<PacketRecord>,
}

/// The extension payload Anonymous Gossip rides on MAODV frames.
///
/// The variants hold their bodies behind `Arc`: the engine clones every
/// payload once onto the air and once per broadcast receiver (the
/// [`Message`] cheap-clone contract), and the request/reply bodies carry
/// heap-backed `Vec`s that would otherwise be deep-copied each time.
/// Cloning an `AgMsg` is a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgMsg {
    /// A gossip request walking the tree or unicast to a cached member.
    Request(Arc<GossipRequest>),
    /// A gossip reply unicast back to the initiator.
    Reply(Arc<GossipReply>),
}

impl AgMsg {
    /// Wraps a request body for the wire.
    pub fn request(r: GossipRequest) -> Self {
        AgMsg::Request(Arc::new(r))
    }

    /// Wraps a reply body for the wire.
    pub fn reply(r: GossipReply) -> Self {
        AgMsg::Reply(Arc::new(r))
    }
}

impl Message for AgMsg {
    fn wire_size(&self) -> usize {
        match self {
            // group 2 + initiator 2 + counts 2 + hops/ttl 2, then 6 bytes
            // per lost id and per expected entry.
            AgMsg::Request(r) => 8 + 6 * r.lost.len() + 6 * r.expected.len(),
            // group 2 + responder 2 + count 2, then header + payload per
            // packet (the actual recovered data rides here).
            AgMsg::Reply(r) => {
                6 + r
                    .packets
                    .iter()
                    .map(|p| 8 + p.payload_len as usize)
                    .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn packet_id_orders() {
        assert!(PacketId::new(id(1), 5) < PacketId::new(id(1), 6));
        assert!(PacketId::new(id(1), 5) < PacketId::new(id(2), 0));
    }

    #[test]
    fn request_wire_size_scales_with_content() {
        let empty = AgMsg::request(GossipRequest {
            group: GroupId(0),
            initiator: id(0),
            lost: vec![],
            expected: vec![],
            hops: 0,
            ttl: 8,
        });
        let full = AgMsg::request(GossipRequest {
            group: GroupId(0),
            initiator: id(0),
            lost: (0..10).map(|s| PacketId::new(id(1), s)).collect(),
            expected: vec![(id(1), 10)],
            hops: 0,
            ttl: 8,
        });
        assert_eq!(empty.wire_size(), 8);
        assert_eq!(full.wire_size(), 8 + 60 + 6);
    }

    #[test]
    fn reply_carries_payload_bytes() {
        let reply = AgMsg::reply(GossipReply {
            group: GroupId(0),
            responder: id(3),
            packets: vec![
                PacketRecord {
                    id: PacketId::new(id(1), 1),
                    payload_len: 64,
                },
                PacketRecord {
                    id: PacketId::new(id(1), 2),
                    payload_len: 64,
                },
            ],
        });
        assert_eq!(reply.wire_size(), 6 + 2 * (8 + 64));
    }
}
