//! must-fire: host-clock reads — including inside test code, which is
//! exactly where timing nondeterminism usually sneaks into CI.

use std::time::{Duration, Instant, SystemTime};

pub fn elapsed() -> Duration {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_still_flagged() {
        let _t0 = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
