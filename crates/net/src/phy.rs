//! The physical layer: a unit-disk radio with 802.11b DSSS timing.
//!
//! The paper (§5.1) fixes the MAC to IEEE 802.11 and the channel to
//! 2 Mbps, and sweeps the *transmission range* from 45 m to 85 m. The PHY
//! here is therefore parameterized primarily by `range_m`; everything else
//! defaults to the 802.11b DSSS constants.

use ag_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Radio and MAC timing parameters.
///
/// # Example
///
/// ```
/// use ag_net::PhyParams;
/// let phy = PhyParams::paper_default(75.0);
/// assert_eq!(phy.range_m(), 75.0);
/// // A 64-byte payload at 2 Mbps: preamble + (header+payload)·8/2e6.
/// let t = phy.airtime(64);
/// assert!(t > ag_sim::SimDuration::from_micros(192));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyParams {
    /// Unit-disk transmission (and carrier-sense) range in metres.
    range_m: f64,
    /// Channel bitrate in bits/second.
    bitrate_bps: u64,
    /// PHY preamble + PLCP header time, µs.
    preamble_us: u64,
    /// MAC framing overhead added to every payload, bytes.
    mac_header_bytes: usize,
    /// Slot time, µs.
    slot_us: u64,
    /// DIFS, µs.
    difs_us: u64,
    /// SIFS, µs.
    sifs_us: u64,
    /// Minimum contention window (slots − 1, i.e. backoff drawn from 0..=cw).
    cw_min: u32,
    /// Maximum contention window.
    cw_max: u32,
    /// Unicast retransmission limit before the frame is dropped and the
    /// upper layer's `on_send_failure` fires.
    retry_limit: u32,
    /// MAC transmit-queue capacity (drop-tail beyond this).
    queue_capacity: usize,
    /// Use the uniform-grid spatial index for receiver and collision
    /// lookups (`true`, the default) or the brute-force linear scans
    /// (`false`, kept for differential testing). Both produce identical
    /// simulations; only the wall-clock cost differs.
    spatial_index: bool,
}

impl PhyParams {
    /// The paper's configuration: 2 Mbps 802.11 with the given transmission
    /// range in metres.
    ///
    /// # Panics
    ///
    /// Panics unless `range_m` is strictly positive and finite.
    pub fn paper_default(range_m: f64) -> Self {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "invalid range {range_m}"
        );
        PhyParams {
            range_m,
            bitrate_bps: 2_000_000,
            preamble_us: 192,     // 802.11b long preamble + PLCP
            mac_header_bytes: 28, // 24 B MAC header + 4 B FCS
            slot_us: 20,
            difs_us: 50,
            sifs_us: 10,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            queue_capacity: 128,
            spatial_index: true,
        }
    }

    /// Returns a copy with a different transmission range (the paper's
    /// sweep parameter).
    pub fn with_range(mut self, range_m: f64) -> Self {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "invalid range {range_m}"
        );
        self.range_m = range_m;
        self
    }

    /// Returns a copy with a different bitrate.
    pub fn with_bitrate(mut self, bitrate_bps: u64) -> Self {
        assert!(bitrate_bps > 0, "bitrate must be positive");
        self.bitrate_bps = bitrate_bps;
        self
    }

    /// Returns a copy with a different MAC queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Returns a copy with a different retry limit.
    pub fn with_retry_limit(mut self, limit: u32) -> Self {
        self.retry_limit = limit;
        self
    }

    /// Returns a copy selecting the grid-indexed (`true`) or brute-force
    /// (`false`) receiver/collision lookup path. Results are identical
    /// either way; the brute-force path exists for differential testing
    /// and as the baseline of the scaling benchmarks.
    pub fn with_spatial_index(mut self, enabled: bool) -> Self {
        self.spatial_index = enabled;
        self
    }

    /// Transmission range in metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Channel bitrate in bits per second.
    pub fn bitrate_bps(&self) -> u64 {
        self.bitrate_bps
    }

    /// Slot time.
    pub fn slot(&self) -> SimDuration {
        SimDuration::from_micros(self.slot_us)
    }

    /// DIFS (DCF inter-frame space).
    pub fn difs(&self) -> SimDuration {
        SimDuration::from_micros(self.difs_us)
    }

    /// SIFS (short inter-frame space).
    pub fn sifs(&self) -> SimDuration {
        SimDuration::from_micros(self.sifs_us)
    }

    /// Minimum contention window.
    pub fn cw_min(&self) -> u32 {
        self.cw_min
    }

    /// Maximum contention window.
    pub fn cw_max(&self) -> u32 {
        self.cw_max
    }

    /// Unicast retry limit.
    pub fn retry_limit(&self) -> u32 {
        self.retry_limit
    }

    /// MAC queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// `true` when receiver/collision lookups use the spatial index.
    pub fn spatial_index(&self) -> bool {
        self.spatial_index
    }

    /// Time the channel is occupied by a data frame with `payload_bytes` of
    /// upper-layer payload: preamble plus serialized bits at the bitrate.
    pub fn airtime(&self, payload_bytes: usize) -> SimDuration {
        let bits = ((self.mac_header_bytes + payload_bytes) * 8) as u64;
        let tx_ns = bits * 1_000_000_000 / self.bitrate_bps;
        SimDuration::from_micros(self.preamble_us) + SimDuration::from_nanos(tx_ns)
    }

    /// Extra channel time consumed by the ACK exchange after a unicast
    /// frame: SIFS + ACK preamble + 14-byte ACK frame.
    pub fn ack_overhead(&self) -> SimDuration {
        let ack_bits = 14 * 8;
        let tx_ns = ack_bits * 1_000_000_000 / self.bitrate_bps;
        self.sifs() + SimDuration::from_micros(self.preamble_us) + SimDuration::from_nanos(tx_ns)
    }

    /// The next contention window after a failed attempt (binary
    /// exponential backoff, capped at `cw_max`).
    pub fn next_cw(&self, cw: u32) -> u32 {
        ((cw + 1) * 2 - 1).min(self.cw_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_constants() {
        let p = PhyParams::paper_default(75.0);
        assert_eq!(p.bitrate_bps(), 2_000_000);
        assert_eq!(p.range_m(), 75.0);
        assert_eq!(p.cw_min(), 31);
        assert_eq!(p.retry_limit(), 7);
    }

    #[test]
    fn airtime_scales_with_payload() {
        let p = PhyParams::paper_default(75.0);
        let small = p.airtime(0);
        let big = p.airtime(1000);
        assert!(big > small);
        // 64-byte paper payload: 192 µs preamble + (28+64)·8 bits / 2 Mbps = 192 + 368 µs.
        assert_eq!(p.airtime(64), SimDuration::from_micros(192 + 368));
    }

    #[test]
    fn ack_overhead_is_positive_and_small() {
        let p = PhyParams::paper_default(75.0);
        assert!(p.ack_overhead() > SimDuration::ZERO);
        assert!(p.ack_overhead() < p.airtime(64));
    }

    #[test]
    fn bexp_backoff_caps() {
        let p = PhyParams::paper_default(75.0);
        assert_eq!(p.next_cw(31), 63);
        assert_eq!(p.next_cw(63), 127);
        assert_eq!(p.next_cw(1023), 1023);
        let mut cw = p.cw_min();
        for _ in 0..20 {
            cw = p.next_cw(cw);
        }
        assert_eq!(cw, p.cw_max());
    }

    #[test]
    fn builder_style_overrides() {
        let p = PhyParams::paper_default(55.0)
            .with_range(85.0)
            .with_bitrate(1_000_000)
            .with_queue_capacity(4)
            .with_retry_limit(3);
        assert_eq!(p.range_m(), 85.0);
        assert_eq!(p.bitrate_bps(), 1_000_000);
        assert_eq!(p.queue_capacity(), 4);
        assert_eq!(p.retry_limit(), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_range() {
        let _ = PhyParams::paper_default(0.0);
    }
}
