//! The `ag-lint` binary: scan the workspace, print findings, exit
//! non-zero if any rule fired.
//!
//! ```text
//! cargo run -p ag-lint [--release] [-- [--root <dir>] [--report <file>]]
//! ```
//!
//! * `--root <dir>` — workspace checkout to scan; defaults to walking
//!   up from the current directory (so it works from any crate dir).
//! * `--report <file>` — also write the rendered report there (CI
//!   uploads it as an artifact, pass or fail).

use std::path::PathBuf;
use std::process::ExitCode;

use ag_lint::config::Config;
use ag_lint::{find_workspace_root, run_workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            other => {
                eprintln!("ag-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ag-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match run_workspace(&root, &Config::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ag-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let text = report.render();
    print!("{text}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("ag-lint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
