//! Gossip-layer configuration.

use ag_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Anonymous Gossip parameters.
///
/// Defaults are the paper's §5.1 settings: one gossip message per member
/// per second, at most 10 requested packets per message, a 10-entry
/// member cache, a 200-entry lost table and a 100-entry history table.
/// The paper does not publish `p_anon` (anonymous vs. cached) or the
/// member-relay accept probability; both default to 0.5 and are swept by
/// the ablation benchmarks.
///
/// # Example
///
/// ```
/// use ag_core::AgConfig;
/// let cfg = AgConfig::paper_default();
/// assert_eq!(cfg.lost_buffer_max, 10);
/// assert_eq!(cfg.history_capacity, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgConfig {
    /// Interval between gossip rounds at each member (paper: 1 s).
    pub gossip_interval: SimDuration,
    /// Probability a round uses anonymous gossip rather than cached
    /// gossip (§4.3).
    pub p_anon: f64,
    /// Probability a *member* relay accepts a walking request instead of
    /// propagating it further (§4.1).
    pub p_accept: f64,
    /// Maximum lost-packet ids carried per gossip message (paper: 10).
    pub lost_buffer_max: usize,
    /// Member cache capacity (paper: 10).
    pub member_cache_capacity: usize,
    /// Lost table capacity (paper: 200).
    pub lost_table_capacity: usize,
    /// History table capacity (paper: 100).
    pub history_capacity: usize,
    /// TTL of the anonymous random walk (hops along the tree).
    pub gossip_ttl: u8,
    /// Maximum packets returned in one gossip reply.
    pub reply_max_packets: usize,
    /// How many packets past a member's expected sequence number a
    /// replier will volunteer when the initiator reports no explicit
    /// losses (tail-loss recovery).
    pub tail_recovery_max: usize,
    /// Weight walk steps toward next hops with smaller `nearest_member`
    /// distances (§4.2). Disable for the locality ablation benchmark.
    pub locality_weighting: bool,
}

impl AgConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        AgConfig {
            gossip_interval: SimDuration::from_secs(1),
            p_anon: 0.5,
            p_accept: 0.5,
            lost_buffer_max: 10,
            member_cache_capacity: 10,
            lost_table_capacity: 200,
            history_capacity: 100,
            gossip_ttl: 16,
            reply_max_packets: 10,
            tail_recovery_max: 5,
            locality_weighting: true,
        }
    }

    /// Validates probability fields.
    ///
    /// # Panics
    ///
    /// Panics if `p_anon` or `p_accept` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.p_anon), "p_anon out of range");
        assert!(
            (0.0..=1.0).contains(&self.p_accept),
            "p_accept out of range"
        );
        assert!(self.lost_buffer_max > 0, "lost buffer must be positive");
        assert!(self.reply_max_packets > 0, "reply budget must be positive");
    }
}

impl Default for AgConfig {
    fn default() -> Self {
        AgConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = AgConfig::paper_default();
        assert_eq!(c.gossip_interval, SimDuration::from_secs(1));
        assert_eq!(c.lost_buffer_max, 10);
        assert_eq!(c.member_cache_capacity, 10);
        assert_eq!(c.lost_table_capacity, 200);
        assert_eq!(c.history_capacity, 100);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_bad_probability() {
        let c = AgConfig {
            p_anon: 1.5,
            ..AgConfig::paper_default()
        };
        c.validate();
    }
}
