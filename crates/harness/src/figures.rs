//! One spec per paper figure (2–8), mapping §5's sweeps onto
//! [`crate::experiment::sweep`].

use ag_mobility::density;
use ag_sim::stats::Histogram;
use serde::Serialize;

use crate::experiment::{sweep, SweepPoint};
use crate::parallel::{run_seeds, Parallelism};
use crate::{run_gossip, Scenario};

/// A regenerable figure: base scenario, swept values and the knob they
/// set.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// "fig2" … "fig7".
    pub id: &'static str,
    /// The paper's caption.
    pub title: &'static str,
    /// X-axis label.
    pub xlabel: &'static str,
    /// Swept values.
    pub xs: Vec<f64>,
    /// How a swept value configures the scenario.
    pub apply: fn(&mut Scenario, f64),
    /// The fixed-parameter base scenario.
    pub base: Scenario,
}

impl FigureSpec {
    /// Runs the figure's sweep with `seeds` seeds per point.
    pub fn run(&self, seeds: u64) -> Vec<SweepPoint> {
        sweep(&self.base, &self.xs, self.apply, seeds)
    }

    /// [`FigureSpec::run`] with an explicit worker-thread count. Output
    /// is identical for every `par` (seeds merge in seed order).
    pub fn run_par(&self, seeds: u64, par: Parallelism) -> Vec<SweepPoint> {
        crate::experiment::sweep_par(&self.base, &self.xs, self.apply, seeds, par)
    }

    /// Rescales the base scenario (for tests/benches).
    pub fn with_duration_secs(mut self, secs: u64) -> Self {
        self.base = self.base.with_duration_secs(secs);
        self
    }
}

fn range_steps() -> Vec<f64> {
    (0..=8).map(|i| 45.0 + 5.0 * i as f64).collect()
}

/// Figure 2: packet delivery vs. transmission range (45–85 m), 40
/// nodes, max speed 0.2 m/s.
pub fn fig2() -> FigureSpec {
    FigureSpec {
        id: "fig2",
        title: "Packet Delivery vs Transmission Range (max speed 0.2 m/s)",
        xlabel: "transmission range (m)",
        xs: range_steps(),
        apply: |sc, x| sc.range_m = x,
        base: Scenario::paper(40, 45.0, 0.2),
    }
}

/// Figure 3: packet delivery vs. transmission range (45–85 m), 40
/// nodes, max speed 2 m/s.
pub fn fig3() -> FigureSpec {
    FigureSpec {
        id: "fig3",
        title: "Packet Delivery vs Transmission Range (max speed 2 m/s)",
        xlabel: "transmission range (m)",
        xs: range_steps(),
        apply: |sc, x| sc.range_m = x,
        base: Scenario::paper(40, 45.0, 2.0),
    }
}

/// Figure 4: packet delivery vs. maximum speed (0.1–1.0 m/s), 40 nodes,
/// range 75 m.
pub fn fig4() -> FigureSpec {
    FigureSpec {
        id: "fig4",
        title: "Packet Delivery vs Maximum Speed, slow phase (range 75 m)",
        xlabel: "max speed (m/s)",
        xs: (1..=10).map(|i| i as f64 / 10.0).collect(),
        apply: |sc, x| sc.max_speed = x,
        base: Scenario::paper(40, 75.0, 0.1),
    }
}

/// Figure 5: packet delivery vs. maximum speed (1–10 m/s), 40 nodes,
/// range 75 m.
pub fn fig5() -> FigureSpec {
    FigureSpec {
        id: "fig5",
        title: "Packet Delivery vs Maximum Speed, fast phase (range 75 m)",
        xlabel: "max speed (m/s)",
        xs: (1..=10).map(|i| i as f64).collect(),
        apply: |sc, x| sc.max_speed = x,
        base: Scenario::paper(40, 75.0, 1.0),
    }
}

/// Figure 6: packet delivery vs. node count (40–100) with the
/// transmission range scaled to keep the expected neighbour count
/// constant (baseline 55 m at 40 nodes); max speed 0.2 m/s.
pub fn fig6() -> FigureSpec {
    FigureSpec {
        id: "fig6",
        title: "Packet Delivery vs Number of Nodes (constant mean degree)",
        xlabel: "# nodes in network",
        xs: (4..=10).map(|i| (i * 10) as f64).collect(),
        apply: |sc, x| {
            sc.nodes = x as usize;
            sc.member_count = (sc.nodes / 3).max(2);
            sc.range_m = density::range_for_constant_degree(40, 55.0, sc.nodes);
        },
        base: Scenario::paper(40, 55.0, 0.2),
    }
}

/// Figure 7: packet delivery vs. node count (40–100) at a constant
/// 55 m transmission range; max speed 0.2 m/s.
pub fn fig7() -> FigureSpec {
    FigureSpec {
        id: "fig7",
        title: "Packet Delivery vs Number of Nodes (range 55 m)",
        xlabel: "# nodes in network",
        xs: (4..=10).map(|i| (i * 10) as f64).collect(),
        apply: |sc, x| {
            sc.nodes = x as usize;
            sc.member_count = (sc.nodes / 3).max(2);
        },
        base: Scenario::paper(40, 55.0, 0.2),
    }
}

/// All line figures, in paper order.
pub fn all_line_figures() -> Vec<FigureSpec> {
    vec![fig2(), fig3(), fig4(), fig5(), fig6(), fig7()]
}

/// One Figure 8 series: per-member goodput for a (range, speed)
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct GoodputSeries {
    /// Legend label, e.g. `"45m, 0.2m/s"`.
    pub label: String,
    /// Transmission range (m).
    pub range_m: f64,
    /// Maximum speed (m/s).
    pub max_speed: f64,
    /// Per-member goodput observations pooled over seeds, sorted by
    /// member index within each run.
    pub member_goodput: Vec<f64>,
    /// The same observations binned 0–100 % in 5 % bins: per-seed
    /// histograms merged associatively in seed order.
    pub goodput_hist: Histogram,
}

/// Figure 8: goodput at the group members for
/// {45 m, 75 m} × {0.2 m/s, 2 m/s} (gossip runs only). Seeds of each
/// configuration run on the [`Parallelism::auto`] worker pool; pooled
/// observations keep seed order, so output is thread-count independent.
pub fn fig8(seeds: u64, duration_secs: u64) -> Vec<GoodputSeries> {
    fig8_par(seeds, duration_secs, Parallelism::auto())
}

/// [`fig8`] with an explicit worker-thread count.
pub fn fig8_par(seeds: u64, duration_secs: u64, par: Parallelism) -> Vec<GoodputSeries> {
    let configs = [(45.0, 0.2), (75.0, 0.2), (45.0, 2.0), (75.0, 2.0)];
    configs
        .iter()
        .map(|&(range, speed)| {
            let sc = Scenario::paper(40, range, speed).with_duration_secs(duration_secs);
            let per_seed = run_seeds(seeds, par, |seed| {
                let goodputs: Vec<f64> = run_gossip(&sc, seed)
                    .receivers()
                    .filter_map(|m| m.goodput_percent)
                    .collect();
                let mut hist = Histogram::new(0.0, 100.0, 20);
                for &g in &goodputs {
                    hist.record(g);
                }
                (goodputs, hist)
            });
            let mut goodput_hist = Histogram::new(0.0, 100.0, 20);
            for (_, h) in &per_seed {
                goodput_hist.merge(h);
            }
            GoodputSeries {
                label: format!("{range}m, {speed}m/s"),
                range_m: range,
                max_speed: speed,
                member_goodput: per_seed.into_iter().flat_map(|(g, _)| g).collect(),
                goodput_hist,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_axes_match_the_paper() {
        let f2 = fig2();
        assert_eq!(f2.xs.first(), Some(&45.0));
        assert_eq!(f2.xs.last(), Some(&85.0));
        assert_eq!(f2.xs.len(), 9);
        let f4 = fig4();
        assert_eq!(f4.xs.first(), Some(&0.1));
        assert_eq!(f4.xs.last(), Some(&1.0));
        let f5 = fig5();
        assert_eq!(f5.xs.last(), Some(&10.0));
        let f6 = fig6();
        assert_eq!(f6.xs, vec![40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]);
    }

    #[test]
    fn fig6_scales_range_with_node_count() {
        let f6 = fig6();
        let mut sc = f6.base.clone();
        (f6.apply)(&mut sc, 100.0);
        assert_eq!(sc.nodes, 100);
        assert!(sc.range_m < 55.0);
        assert_eq!(sc.member_count, 33);
        // Degree is preserved vs. the 40-node baseline.
        let d40 = ag_mobility::density::expected_degree(40, 55.0, sc.field);
        let d100 = ag_mobility::density::expected_degree(100, sc.range_m, sc.field);
        assert!((d40 - d100).abs() < 1e-9);
    }

    #[test]
    fn fig7_keeps_range_fixed() {
        let f7 = fig7();
        let mut sc = f7.base.clone();
        (f7.apply)(&mut sc, 80.0);
        assert_eq!(sc.range_m, 55.0);
        assert_eq!(sc.nodes, 80);
    }

    #[test]
    fn all_line_figures_enumerates_six() {
        let ids: Vec<&str> = all_line_figures().iter().map(|f| f.id).collect();
        assert_eq!(ids, vec!["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]);
    }
}
