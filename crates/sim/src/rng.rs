//! Reproducible random-number streams.
//!
//! Every run of the simulator must be a pure function of `(scenario, seed)`.
//! A single shared RNG would make node A's randomness depend on how many
//! draws node B happened to make, so instead a 64-bit master seed is split
//! into *independent streams*, one per (component, index) pair, using
//! SplitMix64 as a mixing function. Each stream is a [`rand::rngs::SmallRng`]
//! seeded from the mixed value.
//!
//! # Example
//!
//! ```
//! use ag_sim::rng::SeedSplitter;
//! use rand::Rng;
//!
//! let splitter = SeedSplitter::new(42);
//! let mut node3 = splitter.stream(ag_sim::rng::StreamKind::Node, 3);
//! let mut node4 = splitter.stream(ag_sim::rng::StreamKind::Node, 4);
//! // Independent streams: different sequences…
//! let a: u64 = node3.random();
//! let b: u64 = node4.random();
//! assert_ne!(a, b);
//! // …but reproducible ones.
//! let mut again = splitter.stream(ag_sim::rng::StreamKind::Node, 3);
//! assert_eq!(a, again.random::<u64>());
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The component families that draw randomness in this workspace.
///
/// Adding a new variant never disturbs existing streams because the variant
/// tag is mixed into the seed, not drawn from a shared sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StreamKind {
    /// Per-node protocol randomness (gossip coin flips, jitter…).
    Node,
    /// Per-node mobility (waypoints, speeds, pauses).
    Mobility,
    /// Per-node MAC backoff.
    Mac,
    /// Initial placement of nodes in the field.
    Placement,
    /// Traffic generation (source jitter, payload fill).
    Traffic,
    /// Anything scenario-level (member selection etc.).
    Scenario,
    /// Channel realism: the keyed hash lattice behind the non-ideal
    /// reception models (per-packet error draws, per-link shadowing).
    Channel,
    /// Per-node radio churn (fail/recover interval draws).
    Churn,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Node => 0x01,
            StreamKind::Mobility => 0x02,
            StreamKind::Mac => 0x03,
            StreamKind::Placement => 0x04,
            StreamKind::Traffic => 0x05,
            StreamKind::Scenario => 0x06,
            StreamKind::Channel => 0x07,
            StreamKind::Churn => 0x08,
        }
    }
}

/// SplitMix64 step: a strong 64-bit mixing function (Steele et al., 2014).
///
/// Used to derive independent stream seeds from `(master, tag, index)`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Splits one master seed into arbitrarily many independent named streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Creates a splitter for `master` seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed for stream `(kind, index)`.
    pub fn derive(&self, kind: StreamKind, index: u64) -> u64 {
        // Two rounds of splitmix over a combination that keeps
        // (master, tag, index) injective enough for our stream counts.
        let mixed = splitmix64(
            self.master ^ splitmix64(kind.tag().wrapping_mul(0xA076_1D64_78BD_642F) ^ index),
        );
        splitmix64(mixed)
    }

    /// Creates the RNG for stream `(kind, index)`.
    pub fn stream(&self, kind: StreamKind, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(kind, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::DetHashSet;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let s = SeedSplitter::new(7);
        let a: Vec<u64> = s
            .stream(StreamKind::Mac, 9)
            .random_iter()
            .take(16)
            .collect();
        let b: Vec<u64> = s
            .stream(StreamKind::Mac, 9)
            .random_iter()
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_index_and_kind() {
        let s = SeedSplitter::new(7);
        let mut seeds = DetHashSet::default();
        for kind in [
            StreamKind::Node,
            StreamKind::Mobility,
            StreamKind::Mac,
            StreamKind::Placement,
            StreamKind::Traffic,
            StreamKind::Scenario,
            StreamKind::Channel,
            StreamKind::Churn,
        ] {
            for idx in 0..200 {
                assert!(
                    seeds.insert(s.derive(kind, idx)),
                    "collision at {kind:?}/{idx}"
                );
            }
        }
    }

    #[test]
    fn master_seed_changes_everything() {
        let a = SeedSplitter::new(1).derive(StreamKind::Node, 0);
        let b = SeedSplitter::new(2).derive(StreamKind::Node, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value for seed 0 from the SplitMix64 paper/implementations.
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn stream_output_in_range() {
        let s = SeedSplitter::new(99);
        let mut r = s.stream(StreamKind::Traffic, 0);
        for _ in 0..1000 {
            let x: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
