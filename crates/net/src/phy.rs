//! The physical layer: a unit-disk radio with 802.11b DSSS timing.
//!
//! The paper (§5.1) fixes the MAC to IEEE 802.11 and the channel to
//! 2 Mbps, and sweeps the *transmission range* from 45 m to 85 m. The PHY
//! here is therefore parameterized primarily by `range_m`; everything else
//! defaults to the 802.11b DSSS constants.
//!
//! ## Stress knobs (strictly opt-in)
//!
//! The paper's channel is ideal: every uncollided frame within range is
//! received. Two additional knob families make the network hostile on
//! demand, both defaulting *off* so the paper's figures are bit-for-bit
//! unaffected:
//!
//! * [`ReceptionModel`] — pluggable per-reception loss on top of the
//!   unit disk (distance-graded packet-error rate, log-normal
//!   shadowing). Decisions are *pure functions* of a keyed hash, so
//!   results are independent of receiver iteration order and identical
//!   between the grid-indexed and brute-force engine paths.
//! * [`ChurnParams`] — per-node radio fail/recover churn; the engine
//!   schedules the fail and recover events from dedicated per-node RNG
//!   streams.

use ag_sim::rng::splitmix64;
use ag_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Maps a 64-bit hash to a uniform draw in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How a frame that arrived within radio range, uncorrupted by any
/// collision, is finally accepted or lost by the receiver's radio.
///
/// All models are **deterministic**: loss decisions come from a keyed
/// hash of `(channel seed, transmission id, receiver)` — never from a
/// stateful RNG — so a simulation stays a pure function of
/// `(scenario, seed)` no matter in which order receivers are examined.
/// Models only ever *remove* receptions inside the unit disk; carrier
/// sense and collision geometry stay unit-disk, and the spatial index's
/// candidate sets remain conservative.
///
/// # Example
///
/// ```
/// use ag_net::{PhyParams, ReceptionModel};
/// let phy = PhyParams::paper_default(75.0)
///     .with_reception(ReceptionModel::DistanceGraded { edge_per: 0.4 });
/// assert_ne!(phy.reception(), ReceptionModel::Ideal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReceptionModel {
    /// The paper's channel: every in-range, uncollided frame is
    /// received. The default.
    Ideal,
    /// Distance-graded packet-error rate: a reception at distance `d`
    /// is dropped with probability `edge_per · (d / range)²`, so links
    /// degrade smoothly toward the edge of the disk. Each reception
    /// draws independently (fast fading).
    DistanceGraded {
        /// Packet-error rate at the edge of the transmission range,
        /// in `[0, 1]`.
        edge_per: f64,
    },
    /// Log-normal shadowing: each (unordered) node pair owns a static
    /// shadowing gain `X ~ Normal(0, sigma_db²)` dB drawn from a
    /// deterministic per-link stream, shrinking that link's effective
    /// range to `range · 10^(X / (10 · path_loss_exp))`. Gains above
    /// 0 dB are clamped to the nominal range (the unit disk is the
    /// best case), so obstructed links go short while clear links stay
    /// ideal — a static obstacle field, reciprocal in both directions.
    Shadowing {
        /// Standard deviation of the shadowing gain, dB. Typical
        /// outdoor measurements run 4–12 dB.
        sigma_db: f64,
        /// Path-loss exponent converting dB of gain into metres of
        /// range (2 = free space, 3–4 = urban).
        path_loss_exp: f64,
    },
}

impl ReceptionModel {
    /// Panics unless the model's parameters are sane.
    fn validate(&self) {
        match *self {
            ReceptionModel::Ideal => {}
            ReceptionModel::DistanceGraded { edge_per } => {
                assert!(
                    (0.0..=1.0).contains(&edge_per),
                    "edge_per {edge_per} outside [0, 1]"
                );
            }
            ReceptionModel::Shadowing {
                sigma_db,
                path_loss_exp,
            } => {
                assert!(
                    sigma_db >= 0.0 && sigma_db.is_finite(),
                    "invalid sigma_db {sigma_db}"
                );
                assert!(
                    path_loss_exp > 0.0 && path_loss_exp.is_finite(),
                    "invalid path_loss_exp {path_loss_exp}"
                );
            }
        }
    }

    /// `true` when this model can never drop a reception (the engine
    /// skips hashing entirely).
    pub fn is_ideal(&self) -> bool {
        matches!(self, ReceptionModel::Ideal)
    }

    /// Pure reception decision for one `(transmission, receiver)` pair:
    /// `true` if the frame survives the channel. `dist_sq` is the
    /// squared sender→receiver distance (already known to be within
    /// `range_m`); `tx_id` is the engine's unique transmission id.
    pub fn receives(
        &self,
        channel_seed: u64,
        tx_id: u64,
        sender: u32,
        receiver: u32,
        dist_sq: f64,
        range_m: f64,
    ) -> bool {
        match *self {
            ReceptionModel::Ideal => true,
            ReceptionModel::DistanceGraded { edge_per } => {
                let per = edge_per * dist_sq / (range_m * range_m);
                let h = splitmix64(
                    splitmix64(channel_seed ^ tx_id)
                        ^ (receiver as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                unit_uniform(h) >= per
            }
            ReceptionModel::Shadowing {
                sigma_db,
                path_loss_exp,
            } => {
                let eff_sq = shadow_eff_range_sq(
                    channel_seed,
                    sender,
                    receiver,
                    sigma_db,
                    path_loss_exp,
                    range_m,
                );
                dist_sq <= eff_sq
            }
        }
    }
}

/// The squared effective range of the shadowing model for one link.
///
/// Static and reciprocal: keyed on the unordered node pair only, never
/// on the transmission — which is what lets the engine memoize the
/// result per link instead of redoing the Box–Muller transform (`ln`,
/// `sqrt`, `cos`, `powf`) on every reception.
pub(crate) fn shadow_eff_range_sq(
    channel_seed: u64,
    sender: u32,
    receiver: u32,
    sigma_db: f64,
    path_loss_exp: f64,
    range_m: f64,
) -> f64 {
    let (a, b) = if sender <= receiver {
        (sender, receiver)
    } else {
        (receiver, sender)
    };
    let key = splitmix64(
        channel_seed ^ (((a as u64) << 32) | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    // Box–Muller from two hash-derived uniforms (u1 kept strictly
    // positive for the log).
    let u1 = unit_uniform(splitmix64(key)).max(f64::MIN_POSITIVE);
    let u2 = unit_uniform(splitmix64(key ^ 0x6C62_272E_07BB_0142));
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let gain_db = (sigma_db * z).min(0.0);
    let eff_range = range_m * 10f64.powf(gain_db / (10.0 * path_loss_exp));
    eff_range * eff_range
}

/// Per-node radio churn: alternating up/down periods with exponentially
/// distributed durations.
///
/// While a node is down its radio is off: it is detached from the
/// spatial index, hears nothing (including frames that started while it
/// was down, even if it recovers mid-frame), any in-flight MAC state is
/// dropped — queued *unicast* frames are reported through
/// `Protocol::on_send_failure` at the moment of failure, a frame
/// mid-air is truncated — and frames its protocol tries to send while
/// down are discarded without a callback (the hardware is off, there is
/// no carrier feedback; counted as `mac.down_drop`). Protocol timers
/// keep firing — the process runs, the radio doesn't — so protocols
/// resume naturally at recovery.
///
/// # Example
///
/// ```
/// use ag_net::ChurnParams;
/// let churn = ChurnParams::new(120.0, 15.0);
/// assert_eq!(churn.mean_up_secs(), 120.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnParams {
    mean_up_secs: f64,
    mean_down_secs: f64,
}

impl ChurnParams {
    /// Creates a churn model with the given mean up and down durations
    /// in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless both means are strictly positive and finite.
    pub fn new(mean_up_secs: f64, mean_down_secs: f64) -> Self {
        assert!(
            mean_up_secs > 0.0 && mean_up_secs.is_finite(),
            "invalid mean_up_secs {mean_up_secs}"
        );
        assert!(
            mean_down_secs > 0.0 && mean_down_secs.is_finite(),
            "invalid mean_down_secs {mean_down_secs}"
        );
        ChurnParams {
            mean_up_secs,
            mean_down_secs,
        }
    }

    /// Mean duration of an up (radio on) period, seconds.
    pub fn mean_up_secs(&self) -> f64 {
        self.mean_up_secs
    }

    /// Mean duration of a down (radio off) period, seconds.
    pub fn mean_down_secs(&self) -> f64 {
        self.mean_down_secs
    }

    /// Draws the next up-period duration from `rng` (exponential,
    /// floored at 1 ns so zero-length periods cannot stall the event
    /// loop).
    pub fn sample_up<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        sample_exp(self.mean_up_secs, rng)
    }

    /// Draws the next down-period duration from `rng`.
    pub fn sample_down<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        sample_exp(self.mean_down_secs, rng)
    }
}

/// Exponential draw with mean `mean_secs`, floored at 1 ns.
fn sample_exp<R: Rng + ?Sized>(mean_secs: f64, rng: &mut R) -> SimDuration {
    let u: f64 = rng.random_range(0.0..1.0);
    SimDuration::from_secs_f64((-mean_secs * (1.0 - u).ln()).max(1e-9))
}

/// Radio and MAC timing parameters.
///
/// # Example
///
/// ```
/// use ag_net::PhyParams;
/// let phy = PhyParams::paper_default(75.0);
/// assert_eq!(phy.range_m(), 75.0);
/// // A 64-byte payload at 2 Mbps: preamble + (header+payload)·8/2e6.
/// let t = phy.airtime(64);
/// assert!(t > ag_sim::SimDuration::from_micros(192));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyParams {
    /// Unit-disk transmission (and carrier-sense) range in metres.
    range_m: f64,
    /// Channel bitrate in bits/second.
    bitrate_bps: u64,
    /// PHY preamble + PLCP header time, µs.
    preamble_us: u64,
    /// MAC framing overhead added to every payload, bytes.
    mac_header_bytes: usize,
    /// Slot time, µs.
    slot_us: u64,
    /// DIFS, µs.
    difs_us: u64,
    /// SIFS, µs.
    sifs_us: u64,
    /// Minimum contention window (slots − 1, i.e. backoff drawn from 0..=cw).
    cw_min: u32,
    /// Maximum contention window.
    cw_max: u32,
    /// Unicast retransmission limit before the frame is dropped and the
    /// upper layer's `on_send_failure` fires.
    retry_limit: u32,
    /// MAC transmit-queue capacity (drop-tail beyond this).
    queue_capacity: usize,
    /// Use the uniform-grid spatial index for receiver and collision
    /// lookups (`true`, the default) or the brute-force linear scans
    /// (`false`, kept for differential testing). Both produce identical
    /// simulations; only the wall-clock cost differs.
    spatial_index: bool,
    /// How in-range, uncollided frames are accepted or lost
    /// ([`ReceptionModel::Ideal`] — the paper's channel — by default).
    reception: ReceptionModel,
    /// Optional per-node radio fail/recover churn (off by default).
    churn: Option<ChurnParams>,
}

impl PhyParams {
    /// The paper's configuration: 2 Mbps 802.11 with the given transmission
    /// range in metres.
    ///
    /// # Panics
    ///
    /// Panics unless `range_m` is strictly positive and finite.
    pub fn paper_default(range_m: f64) -> Self {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "invalid range {range_m}"
        );
        PhyParams {
            range_m,
            bitrate_bps: 2_000_000,
            preamble_us: 192,     // 802.11b long preamble + PLCP
            mac_header_bytes: 28, // 24 B MAC header + 4 B FCS
            slot_us: 20,
            difs_us: 50,
            sifs_us: 10,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            queue_capacity: 128,
            spatial_index: true,
            reception: ReceptionModel::Ideal,
            churn: None,
        }
    }

    /// Returns a copy with a different transmission range (the paper's
    /// sweep parameter).
    pub fn with_range(mut self, range_m: f64) -> Self {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "invalid range {range_m}"
        );
        self.range_m = range_m;
        self
    }

    /// Returns a copy with a different bitrate.
    pub fn with_bitrate(mut self, bitrate_bps: u64) -> Self {
        assert!(bitrate_bps > 0, "bitrate must be positive");
        self.bitrate_bps = bitrate_bps;
        self
    }

    /// Returns a copy with a different MAC queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Returns a copy with a different retry limit.
    pub fn with_retry_limit(mut self, limit: u32) -> Self {
        self.retry_limit = limit;
        self
    }

    /// Returns a copy selecting the grid-indexed (`true`) or brute-force
    /// (`false`) receiver/collision lookup path. Results are identical
    /// either way; the brute-force path exists for differential testing
    /// and as the baseline of the scaling benchmarks.
    pub fn with_spatial_index(mut self, enabled: bool) -> Self {
        self.spatial_index = enabled;
        self
    }

    /// Transmission range in metres.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Channel bitrate in bits per second.
    pub fn bitrate_bps(&self) -> u64 {
        self.bitrate_bps
    }

    /// Slot time.
    pub fn slot(&self) -> SimDuration {
        SimDuration::from_micros(self.slot_us)
    }

    /// DIFS (DCF inter-frame space).
    pub fn difs(&self) -> SimDuration {
        SimDuration::from_micros(self.difs_us)
    }

    /// SIFS (short inter-frame space).
    pub fn sifs(&self) -> SimDuration {
        SimDuration::from_micros(self.sifs_us)
    }

    /// Minimum contention window.
    pub fn cw_min(&self) -> u32 {
        self.cw_min
    }

    /// Maximum contention window.
    pub fn cw_max(&self) -> u32 {
        self.cw_max
    }

    /// Unicast retry limit.
    pub fn retry_limit(&self) -> u32 {
        self.retry_limit
    }

    /// MAC queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Returns a copy with a different reception model (the default,
    /// [`ReceptionModel::Ideal`], reproduces the paper's channel
    /// exactly).
    ///
    /// # Panics
    ///
    /// Panics if the model's parameters are out of range.
    pub fn with_reception(mut self, model: ReceptionModel) -> Self {
        model.validate();
        self.reception = model;
        self
    }

    /// Returns a copy with per-node radio churn enabled.
    pub fn with_churn(mut self, churn: ChurnParams) -> Self {
        self.churn = Some(churn);
        self
    }

    /// `true` when receiver/collision lookups use the spatial index.
    pub fn spatial_index(&self) -> bool {
        self.spatial_index
    }

    /// The reception model in force.
    pub fn reception(&self) -> ReceptionModel {
        self.reception
    }

    /// The churn model, if churn is enabled.
    pub fn churn(&self) -> Option<ChurnParams> {
        self.churn
    }

    /// Time the channel is occupied by a data frame with `payload_bytes` of
    /// upper-layer payload: preamble plus serialized bits at the bitrate.
    pub fn airtime(&self, payload_bytes: usize) -> SimDuration {
        let bits = ((self.mac_header_bytes + payload_bytes) * 8) as u64;
        let tx_ns = bits * 1_000_000_000 / self.bitrate_bps;
        SimDuration::from_micros(self.preamble_us) + SimDuration::from_nanos(tx_ns)
    }

    /// Extra channel time consumed by the ACK exchange after a unicast
    /// frame: SIFS + ACK preamble + 14-byte ACK frame.
    pub fn ack_overhead(&self) -> SimDuration {
        let ack_bits = 14 * 8;
        let tx_ns = ack_bits * 1_000_000_000 / self.bitrate_bps;
        self.sifs() + SimDuration::from_micros(self.preamble_us) + SimDuration::from_nanos(tx_ns)
    }

    /// The next contention window after a failed attempt (binary
    /// exponential backoff, capped at `cw_max`).
    pub fn next_cw(&self, cw: u32) -> u32 {
        ((cw + 1) * 2 - 1).min(self.cw_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_constants() {
        let p = PhyParams::paper_default(75.0);
        assert_eq!(p.bitrate_bps(), 2_000_000);
        assert_eq!(p.range_m(), 75.0);
        assert_eq!(p.cw_min(), 31);
        assert_eq!(p.retry_limit(), 7);
    }

    #[test]
    fn airtime_scales_with_payload() {
        let p = PhyParams::paper_default(75.0);
        let small = p.airtime(0);
        let big = p.airtime(1000);
        assert!(big > small);
        // 64-byte paper payload: 192 µs preamble + (28+64)·8 bits / 2 Mbps = 192 + 368 µs.
        assert_eq!(p.airtime(64), SimDuration::from_micros(192 + 368));
    }

    #[test]
    fn ack_overhead_is_positive_and_small() {
        let p = PhyParams::paper_default(75.0);
        assert!(p.ack_overhead() > SimDuration::ZERO);
        assert!(p.ack_overhead() < p.airtime(64));
    }

    #[test]
    fn bexp_backoff_caps() {
        let p = PhyParams::paper_default(75.0);
        assert_eq!(p.next_cw(31), 63);
        assert_eq!(p.next_cw(63), 127);
        assert_eq!(p.next_cw(1023), 1023);
        let mut cw = p.cw_min();
        for _ in 0..20 {
            cw = p.next_cw(cw);
        }
        assert_eq!(cw, p.cw_max());
    }

    #[test]
    fn builder_style_overrides() {
        let p = PhyParams::paper_default(55.0)
            .with_range(85.0)
            .with_bitrate(1_000_000)
            .with_queue_capacity(4)
            .with_retry_limit(3);
        assert_eq!(p.range_m(), 85.0);
        assert_eq!(p.bitrate_bps(), 1_000_000);
        assert_eq!(p.queue_capacity(), 4);
        assert_eq!(p.retry_limit(), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_range() {
        let _ = PhyParams::paper_default(0.0);
    }

    #[test]
    fn default_phy_is_ideal_and_churn_free() {
        let p = PhyParams::paper_default(75.0);
        assert!(p.reception().is_ideal());
        assert!(p.churn().is_none());
    }

    #[test]
    fn ideal_model_never_drops() {
        let m = ReceptionModel::Ideal;
        for tx in 0..50 {
            assert!(m.receives(99, tx, 0, 1, 74.0 * 74.0, 75.0));
        }
    }

    #[test]
    fn graded_model_loses_more_at_the_edge() {
        let m = ReceptionModel::DistanceGraded { edge_per: 0.8 };
        let (mut near, mut far) = (0u32, 0u32);
        for tx in 0..2000u64 {
            if m.receives(7, tx, 0, 1, 10.0 * 10.0, 75.0) {
                near += 1;
            }
            if m.receives(7, tx, 0, 1, 74.0 * 74.0, 75.0) {
                far += 1;
            }
        }
        // Near the sender PER ≈ 0.8·(10/75)² ≈ 1.4 %; at the edge ≈ 78 %.
        assert!(near > 1900, "near deliveries {near}");
        assert!(far < 600, "edge deliveries {far}");
        assert!(near > far);
    }

    #[test]
    fn graded_decision_is_deterministic_and_per_reception() {
        let m = ReceptionModel::DistanceGraded { edge_per: 0.9 };
        let d = 70.0 * 70.0;
        let a = m.receives(1, 42, 0, 3, d, 75.0);
        assert_eq!(a, m.receives(1, 42, 0, 3, d, 75.0));
        // Different tx ids decide independently: both outcomes occur.
        let outcomes: Vec<bool> = (0..64).map(|tx| m.receives(1, tx, 0, 3, d, 75.0)).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    #[test]
    fn shadowing_is_static_reciprocal_and_sometimes_short() {
        let m = ReceptionModel::Shadowing {
            sigma_db: 8.0,
            path_loss_exp: 3.0,
        };
        let d = 70.0 * 70.0;
        let mut shortened = 0;
        for b in 1..200u32 {
            let ab = m.receives(11, 0, 0, b, d, 75.0);
            // Reciprocal and independent of the transmission id.
            assert_eq!(ab, m.receives(11, 5, b, 0, d, 75.0));
            assert_eq!(ab, m.receives(11, 9, 0, b, d, 75.0));
            if !ab {
                shortened += 1;
            }
        }
        assert!(shortened > 10, "expected some obstructed links");
        assert!(shortened < 190, "expected some clear links");
        // Very short links always get through (gain is clamped at 0 dB
        // only from above; a 1 m link needs ~37 dB of fade at n=3).
        for b in 1..200u32 {
            assert!(m.receives(11, 0, 0, b, 1.0, 75.0));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_edge_per() {
        let _ = PhyParams::paper_default(75.0)
            .with_reception(ReceptionModel::DistanceGraded { edge_per: 1.5 });
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_churn_mean() {
        let _ = ChurnParams::new(0.0, 5.0);
    }

    #[test]
    fn churn_samples_are_positive_with_roughly_right_mean() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let c = ChurnParams::new(100.0, 10.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 2000;
        let mean_up: f64 = (0..n)
            .map(|_| c.sample_up(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let mean_down: f64 = (0..n)
            .map(|_| c.sample_down(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean_up - 100.0).abs() < 10.0, "mean up {mean_up}");
        assert!((mean_down - 10.0).abs() < 1.0, "mean down {mean_down}");
    }
}
