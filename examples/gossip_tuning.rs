//! Gossip tuning: exploring the knobs the paper leaves open.
//!
//! §5.5 notes that "the effectiveness of anonymous gossip depends on
//! the values chosen for the size of the history table and the lost
//! table, besides the gossip interval" and that the authors were still
//! studying those parameters. This example runs that study on one
//! scenario: it sweeps the anonymous/cached mix (`p_anon`), the gossip
//! interval and the history capacity, and prints the resulting delivery
//! and goodput so the trade-offs are visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example gossip_tuning
//! ```

use ag_harness::{run_gossip, Scenario};
use ag_sim::SimDuration;

fn show(label: &str, sc: &Scenario, seeds: u64) {
    let mut recv = ag_sim::stats::Summary::new();
    let mut goodput = ag_sim::stats::Summary::new();
    let mut recovered = 0u64;
    for seed in 0..seeds {
        let r = run_gossip(sc, seed);
        recv.merge(&r.received_summary());
        for m in r.receivers() {
            recovered += m.via_gossip;
            if let Some(g) = m.goodput_percent {
                goodput.record(g);
            }
        }
    }
    println!(
        "{label:>26}: recv {:>6.0} [{:>4.0},{:>4.0}]  recovered {:>5}  goodput {:>5.1}%",
        recv.mean(),
        recv.min(),
        recv.max(),
        recovered,
        goodput.mean()
    );
}

fn main() {
    let seeds = 3;
    // A stressed configuration (short range, mobile) so recovery matters.
    let base = Scenario::paper(40, 50.0, 2.0).with_duration_secs(300);
    println!(
        "base scenario: {} nodes, {} members, range {} m, {} packets, {} seeds\n",
        base.nodes,
        base.member_count,
        base.range_m,
        base.packets_sent(),
        seeds
    );

    println!("-- anonymous/cached mix (p_anon) --");
    for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut sc = base.clone();
        sc.ag.p_anon = p;
        show(&format!("p_anon = {p}"), &sc, seeds);
    }

    println!("\n-- gossip interval --");
    for ms in [500, 1000, 2000, 4000] {
        let mut sc = base.clone();
        sc.ag.gossip_interval = SimDuration::from_millis(ms);
        show(&format!("interval = {ms} ms"), &sc, seeds);
    }

    println!("\n-- history table capacity --");
    for cap in [25, 50, 100, 200, 400] {
        let mut sc = base.clone();
        sc.ag.history_capacity = cap;
        show(&format!("history = {cap} packets"), &sc, seeds);
    }

    println!("\n-- locality weighting (§4.2) --");
    for loc in [true, false] {
        let mut sc = base.clone();
        sc.ag.locality_weighting = loc;
        show(&format!("locality = {loc}"), &sc, seeds);
    }
}
