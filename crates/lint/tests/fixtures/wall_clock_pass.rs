//! must-pass: simulation time arithmetic, a waived driver-side read,
//! and clock mentions in strings/comments.

pub fn sim_time_only(now_ns: u64, delta_ns: u64) -> u64 {
    // Instant::now() in a comment is not a clock read.
    let _msg = "SystemTime::now() in a string is not a clock read";
    now_ns + delta_ns
}

pub fn waived_driver_timing() {
    // ag-lint: allow(wall-clock) -- fixture: driver-side progress timing
    let _t0 = std::time::Instant::now();
}
