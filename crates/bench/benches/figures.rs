//! One benchmark per paper figure: measures the cost of regenerating a
//! representative slice of each figure's sweep (scaled down; see the
//! crate docs). `fig<N>_*` names map one-to-one onto the paper's
//! Figures 2–8 and the `ag-harness` binaries of the same name.

use std::time::Duration;

use ag_bench::BENCH_SECS;
use ag_harness::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Runs the first and last sweep point of a line figure with one seed.
fn bench_line_figure(c: &mut Criterion, name: &str, spec: figures::FigureSpec) {
    let mut spec = spec.with_duration_secs(BENCH_SECS);
    spec.xs = vec![spec.xs[0], *spec.xs.last().expect("non-empty sweep")];
    c.bench_function(name, |b| {
        b.iter(|| black_box(spec.run(1)));
    });
}

fn figure_benches(c: &mut Criterion) {
    bench_line_figure(c, "fig2_range_sweep", figures::fig2());
    bench_line_figure(c, "fig3_range_sweep", figures::fig3());
    bench_line_figure(c, "fig4_speed_sweep", figures::fig4());
    bench_line_figure(c, "fig5_speed_sweep", figures::fig5());
    bench_line_figure(c, "fig6_node_sweep", figures::fig6());
    bench_line_figure(c, "fig7_node_sweep", figures::fig7());
    c.bench_function("fig8_goodput", |b| {
        b.iter(|| black_box(figures::fig8(1, BENCH_SECS)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(20))
        .warm_up_time(Duration::from_secs(2));
    targets = figure_benches
}
criterion_main!(benches);
