//! Rendering regenerated figures as ASCII tables and CSV.

use std::fmt::Write as _;

use crate::experiment::SweepPoint;
use crate::figures::GoodputSeries;

/// Environment knob: seeds per sweep point (`AG_SEEDS`, default 10 —
/// the paper's count).
pub fn env_seeds() -> u64 {
    std::env::var("AG_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Environment knob: run length in seconds (`AG_SIM_SECS`, default 600
/// — the paper's). Scaled runs keep the paper's warm-up proportions.
pub fn env_sim_secs() -> u64 {
    std::env::var("AG_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// Renders a line figure as a fixed-width table mirroring the paper's
/// series: per x-value, mean packets received with the min–max error
/// bar, for both protocols.
pub fn render_table(title: &str, xlabel: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    if let Some(p) = points.first() {
        let _ = writeln!(out, "# packets multicast by the source: {}", p.sent);
    }
    let _ = writeln!(
        out,
        "{:>18} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7}",
        xlabel, "maodv", "min", "max", "gossip", "min", "max", "gain"
    );
    let _ = writeln!(out, "{}", "-".repeat(93));
    for p in points {
        let gain = if p.maodv.mean() > 0.0 {
            p.gossip.mean() / p.maodv.mean()
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "{:>18.2} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} | {:>6.2}x",
            p.x,
            p.maodv.mean(),
            p.maodv.min(),
            p.maodv.max(),
            p.gossip.mean(),
            p.gossip.min(),
            p.gossip.max(),
            gain
        );
    }
    out
}

/// Renders a line figure as CSV (one row per x-value).
pub fn render_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("x,sent,maodv_mean,maodv_min,maodv_max,maodv_sd,gossip_mean,gossip_min,gossip_max,gossip_sd,goodput_mean\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            p.x,
            p.sent,
            p.maodv.mean(),
            p.maodv.min(),
            p.maodv.max(),
            p.maodv.stddev(),
            p.gossip.mean(),
            p.gossip.min(),
            p.gossip.max(),
            p.gossip.stddev(),
            p.goodput.mean(),
        );
    }
    out
}

/// Renders Figure 8's per-member goodput series.
pub fn render_goodput(series: &[GoodputSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Goodput at group members (percent, per member, pooled over seeds)"
    );
    for s in series {
        let summary: ag_sim::stats::Summary = s.member_goodput.iter().copied().collect();
        let _ = writeln!(
            out,
            "{:>12}: n={:<4} mean={:>6.2}% min={:>6.2}% max={:>6.2}%",
            s.label,
            summary.count(),
            summary.mean(),
            summary.min(),
            summary.max()
        );
        let values: Vec<String> = s.member_goodput.iter().map(|g| format!("{g:.1}")).collect();
        let _ = writeln!(out, "              [{}]", values.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::stats::Summary;

    fn point(x: f64) -> SweepPoint {
        SweepPoint {
            x,
            sent: 100,
            maodv: [50.0, 70.0].into_iter().collect(),
            gossip: [80.0, 90.0].into_iter().collect(),
            goodput: Summary::new(),
        }
    }

    #[test]
    fn table_contains_series() {
        let t = render_table("Fig X", "range (m)", &[point(45.0), point(50.0)]);
        assert!(t.contains("Fig X"));
        assert!(t.contains("45.00"));
        assert!(t.contains("60.0")); // maodv mean
        assert!(t.contains("85.0")); // gossip mean
        assert!(t.contains("1.42x")); // gain
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = render_csv(&[point(45.0)]);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("x,sent,"));
        assert!(lines[1].starts_with("45,100,"));
    }

    #[test]
    fn goodput_rendering() {
        let mut hist = ag_sim::stats::Histogram::new(0.0, 100.0, 20);
        hist.record(99.0);
        hist.record(100.0);
        let s = GoodputSeries {
            label: "45m, 0.2m/s".into(),
            range_m: 45.0,
            max_speed: 0.2,
            member_goodput: vec![99.0, 100.0],
            goodput_hist: hist,
        };
        let r = render_goodput(&[s]);
        assert!(r.contains("45m, 0.2m/s"));
        assert!(r.contains("99.5"));
    }

    #[test]
    fn env_defaults() {
        // No env vars set in tests: paper defaults.
        assert_eq!(env_seeds(), 10);
        assert_eq!(env_sim_secs(), 600);
    }
}
