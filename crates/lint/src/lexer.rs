//! A minimal Rust lexer for the lint pass.
//!
//! The rules in this crate are token-pattern matchers, not AST walkers,
//! so the lexer's only job is to present the *significant* tokens of a
//! source file — identifiers and punctuation, each tagged with its
//! 1-based line — with everything that could cause false positives
//! stripped out:
//!
//! * line comments, doc comments and (nested) block comments,
//! * string literals, including raw (`r#"…"#`) and byte (`b"…"`) forms,
//! * character literals (disambiguated from lifetimes),
//! * numeric literals (they carry no lint signal).
//!
//! Stripping strings and comments is what makes the rules trustworthy:
//! `"Instant::now"` inside a test assertion message or a doc example
//! mentioning `BinaryHeap` must never fire a rule. The flip side is
//! that waivers *live* in comments, so the lexer collects every comment
//! containing the `ag-lint:` marker as a [`WaiverComment`] for the rule
//! layer to parse.

/// One significant token: an identifier-like word or a single
/// punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `fn`, `use`, …).
    Ident(String),
    /// A single punctuation character (`:`, `.`, `{`, `!`, …).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A comment that contains the `ag-lint:` waiver marker, kept verbatim
/// for the rule layer to parse and validate.
#[derive(Debug, Clone)]
pub struct WaiverComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment text from the `ag-lint:` marker onward.
    pub body: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Every `ag-lint:` comment, in source order.
    pub waivers: Vec<WaiverComment>,
}

/// Marker that introduces a waiver inside a comment. The colon is
/// deliberately not part of the marker so `// ag-lint allow(…)` (a
/// typo) is still collected — and then rejected by the format check —
/// instead of silently ignored.
const WAIVER_MARKER: &str = "ag-lint";

/// Lexes `src`, stripping comments, strings and literals.
pub fn lex(src: &str) -> Lexed {
    let c: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < c.len() {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if ch == '/' && c.get(i + 1) == Some(&'/') {
            let start = i;
            while i < c.len() && c[i] != '\n' {
                i += 1;
            }
            record_waiver(&c[start..i], line, &mut out.waivers);
            continue;
        }
        // Block comment, nested per Rust's rules.
        if ch == '/' && c.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            while i < c.len() && depth > 0 {
                if c[i] == '/' && c.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if c[i] == '*' && c.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if c[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            record_waiver(&c[start..i.min(c.len())], start_line, &mut out.waivers);
            continue;
        }
        // Raw / byte string literals: r"…", r#"…"#, b"…", br#"…"#.
        if (ch == 'r' || ch == 'b') && string_prefix_len(&c, i).is_some() {
            i = skip_prefixed_string(&c, i, &mut line);
            continue;
        }
        if ch == '"' {
            i = skip_plain_string(&c, i, &mut line);
            continue;
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            if c.get(i + 1) == Some(&'\\') {
                // Escaped char literal: '\n', '\u{…}', …
                i += 2;
                while i < c.len() && c[i] != '\'' {
                    i += 1;
                }
                i += 1;
            } else if c.get(i + 2) == Some(&'\'') {
                // Plain char literal: 'x'.
                i += 3;
            } else {
                // Lifetime: consume the quote; the name lexes as an
                // identifier, which no rule pattern matches.
                i += 1;
            }
            continue;
        }
        if ch.is_alphabetic() || ch == '_' {
            let start = i;
            while i < c.len() && (c[i].is_alphanumeric() || c[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(c[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if ch.is_ascii_digit() {
            // Numeric literal (including suffixed forms like `10u64`);
            // `.` stays a separate punct so ranges lex sanely.
            while i < c.len() && (c[i].is_alphanumeric() || c[i] == '_') {
                i += 1;
            }
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(ch),
            line,
        });
        i += 1;
    }
    out
}

/// Records a [`WaiverComment`] if the comment *begins* with the marker
/// (after its `//`/`///`/`//!`/`/*` opener). Anchoring to the start is
/// what lets prose and doc examples *mention* `ag-lint:` without being
/// parsed as waivers — a doc example shows the comment syntax itself
/// (`// ag-lint: …`), so after the doc opener it starts with `//`, not
/// with the marker.
fn record_waiver(comment: &[char], line: u32, waivers: &mut Vec<WaiverComment>) {
    let text: String = comment.iter().collect();
    let body = text.trim_start_matches(['/', '*', '!']).trim_start();
    if body.starts_with(WAIVER_MARKER) {
        // Cut at the next newline so only the marker's own line counts
        // inside a multi-line block comment.
        let body = body.split('\n').next().unwrap_or(body);
        waivers.push(WaiverComment {
            line,
            body: body.trim_end().to_string(),
        });
    }
}

/// Returns the length of a raw/byte string prefix starting at `i`
/// (`r"`, `r#`, `b"`, `br"`, `br#`), or `None` if `c[i]` starts an
/// ordinary identifier.
fn string_prefix_len(c: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if c.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = c.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    while c.get(j) == Some(&'#') {
        if !raw {
            return None; // `b#` is not a string prefix
        }
        j += 1;
    }
    (c.get(j) == Some(&'"') && j > i).then_some(j - i)
}

/// Skips a raw or byte string starting at `i`; returns the index past
/// its closing delimiter.
fn skip_prefixed_string(c: &[char], mut i: usize, line: &mut u32) -> usize {
    if c.get(i) == Some(&'b') {
        i += 1;
    }
    let raw = c.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while c.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(c.get(i), Some(&'"'), "prefix scan promised a quote");
    i += 1;
    if raw {
        // No escapes: the string ends at `"` followed by `hashes` #s.
        while i < c.len() {
            if c[i] == '\n' {
                *line += 1;
            }
            if c[i] == '"'
                && c[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == '#')
                    .count()
                    == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        i
    } else {
        skip_plain_string(c, i, line)
    }
}

/// Skips a plain (escapable) string whose opening quote is at `i`;
/// returns the index past the closing quote.
fn skip_plain_string(c: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < c.len() {
        match c[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// True if token `i` is the identifier `name`.
pub fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

/// True if token `i` is the punctuation character `p`.
pub fn is_punct(tokens: &[Token], i: usize, p: char) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(q), .. }) if *q == p)
}

/// Matches a token-pattern starting at `i`. Each pattern element is an
/// identifier string, or a single punctuation character written as a
/// one-char string (`":"`, `"."`, `"!"`). Write `::` as two `":"`s.
pub fn match_seq(tokens: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        let mut chars = want.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) if !c.is_alphanumeric() && c != '_' => is_punct(tokens, i + k, c),
            _ => is_ident(tokens, i + k, want),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap::new in /* a nested */ block */
            let msg = "Instant::now in a string";
            let raw = r#"HashMap "quoted" inside raw"#;
            let byte = b"SystemTime";
            let tick = 'x';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "Instant" || s == "HashMap" || s == "SystemTime"));
        assert!(ids.iter().any(|s| s == "real"));
    }

    #[test]
    fn lifetimes_do_not_eat_following_tokens() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids.iter().filter(|s| *s == "str").count(), 2);
    }

    #[test]
    fn waiver_comments_are_collected_with_lines() {
        let src = "fn a() {}\n// ag-lint: allow(det-hash) -- reason here\nfn b() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].line, 2);
        assert!(lexed.waivers[0].body.starts_with("ag-lint:"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"one\ntwo\nthree\";\nfn after() {}\n";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "after"))
            .expect("token present");
        assert_eq!(after.line, 4);
    }

    #[test]
    fn match_seq_spells_paths() {
        let lexed = lex("let t = Instant::now();");
        let hit = (0..lexed.tokens.len())
            .any(|i| match_seq(&lexed.tokens, i, &["Instant", ":", ":", "now"]));
        assert!(hit);
    }
}
