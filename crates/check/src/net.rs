//! The small-N abstract network the protocol cores are checked inside.
//!
//! A [`NetModel`] wraps real, unmodified protocol state machines (any
//! [`ag_net::Protocol`]) in an abstract world: a static topology whose
//! directed links are FIFO channels, a sorted timer list, per-node
//! alive flags, and adversary budgets for message drops and radio
//! churn. The nondeterminism the engine resolves with its RNG and PHY
//! — delivery order, loss, timer ties, named random choices inside
//! handlers — becomes explicit branching:
//!
//! * `Deliver(link)` — dispatch the head frame of a channel into the
//!   receiver (`on_packet`), or into the *sender's* `on_send_failure`
//!   if the target is down and the frame was unicast (the abstract MAC
//!   discovering the peer is gone).
//! * `Drop(link)` — adversarially destroy the head frame (budgeted);
//!   unicast drops surface as `on_send_failure` at the sender, exactly
//!   like MAC retry exhaustion under the engine.
//! * `Fire(node, key)` — run a timer due *now* (`on_timer`). Ties in
//!   the same instant fire in canonical `(node, key)` order (the
//!   engine's own calendar-queue order — a partial-order reduction);
//!   fires still interleave freely with deliveries, drops and churn.
//! * `Churn(node)` — toggle a radio down/up (budgeted).
//! * `Advance` — only when every channel is drained and nothing is due
//!   does time jump to the next timer. This bounded-delay discipline
//!   keeps the state space finite without losing any delivery order.
//! * `Park` — when no timers remain (periodic timers whose next firing
//!   would land beyond the *active horizon* are discarded at
//!   `set_timer` time), jump to `end_time` and stop. Parked states are
//!   the quiescent worlds where soft-state expiry is observed.
//!
//! Named random choices ([`ProtoCtx::chance`], `pick_index`,
//! `pick_weighted`) are enumerated via a *choice tape*: a handler runs
//! once per distinct outcome vector, depth-first over the choice tree.
//! [`ProtoCtx::jitter`] resolves to 0 — jitter only perturbs timing,
//! and the checker explores fire/delivery interleavings instead.

use std::collections::VecDeque;

use ag_net::{Message, NodeId, ProtoCtx, Protocol, RxKind, TimerKey};
use ag_sim::{SimDuration, SimTime};

use crate::machine::Machine;

/// Safety bound on the send-failure cascade inside one dispatch.
const MAX_CASCADE: usize = 10_000;

/// A checkable world: real protocol instances on an abstract network.
#[derive(Debug, Clone)]
pub struct NetModel<P: Protocol + Clone> {
    protocols: Vec<P>,
    /// Directed links `(from, to)`, two per adjacency pair.
    links: Vec<(u32, u32)>,
    horizon: SimTime,
    end_time: SimTime,
    drop_budget: u8,
    churn_budget: u8,
    /// Overrides [`Machine::initial`] (see [`NetModel::with_root`]).
    root: Option<Box<NetState<P>>>,
}

impl<P: Protocol + Clone> NetModel<P> {
    /// Builds a model over `protocols` (index = node id) with the given
    /// undirected `adjacency` pairs. Timers scheduled past `horizon`
    /// are parked (discarded); once quiescent, time jumps to `end_time`
    /// (the soft-state observation point). `end_time` must be at or
    /// after `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `end_time < horizon` or an adjacency endpoint is out
    /// of range.
    pub fn new(
        protocols: Vec<P>,
        adjacency: &[(u32, u32)],
        horizon: SimTime,
        end_time: SimTime,
    ) -> Self {
        assert!(end_time >= horizon, "end_time must be >= horizon");
        let n = protocols.len() as u32;
        let mut links = Vec::with_capacity(adjacency.len() * 2);
        for &(a, b) in adjacency {
            assert!(a < n && b < n && a != b, "bad adjacency ({a},{b})");
            links.push((a, b));
            links.push((b, a));
        }
        NetModel {
            protocols,
            links,
            horizon,
            end_time,
            drop_budget: 0,
            churn_budget: 0,
            root: None,
        }
    }

    /// Grants the adversary `n` message drops.
    #[must_use]
    pub fn with_drop_budget(mut self, n: u8) -> Self {
        self.drop_budget = n;
        self
    }

    /// Grants the adversary `n` radio up/down toggles.
    #[must_use]
    pub fn with_churn_budget(mut self, n: u8) -> Self {
        self.churn_budget = n;
        self
    }

    /// The active horizon (timers beyond it are parked).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Re-roots the model at `state`: [`Machine::initial`] returns it
    /// instead of running `Protocol::start` at t = 0. Pair with
    /// [`NetModel::warm_up`] to explore exhaustively from a warmed
    /// configuration.
    #[must_use]
    pub fn with_root(mut self, state: NetState<P>) -> Self {
        self.root = Some(Box::new(state));
        self
    }

    fn link_index(&self, from: u32, to: u32) -> Option<usize> {
        self.links.iter().position(|&l| l == (from, to))
    }

    /// Runs the world forward deterministically (first enabled
    /// non-adversarial action) until `now >= until`, starting from
    /// `state`. Used to warm a scenario up to an interesting
    /// configuration (e.g. a formed multicast tree) before handing the
    /// state to the exhaustive search; the warm-up path itself is a
    /// real, reachable behavior of the model with no drops or churn.
    ///
    /// # Panics
    ///
    /// Panics if the world parks before reaching `until`.
    pub fn warm_up(&self, mut state: NetState<P>, until: SimTime) -> NetState<P> {
        while state.now < until {
            let succ = self.successors(&state);
            let (_, next) = succ
                .into_iter()
                .find(|(a, _)| !matches!(a, NetAction::Drop { .. } | NetAction::Churn { .. }))
                .expect("world parked before warm-up target");
            state = next;
        }
        state
    }
}

/// One world state: real protocol states plus the abstract network.
#[derive(Debug, Clone)]
pub struct NetState<P: Protocol + Clone> {
    /// Current simulated time.
    pub now: SimTime,
    /// Protocol instance per node.
    pub nodes: Vec<P>,
    /// Radio up/down per node (churn toggles these).
    pub alive: Vec<bool>,
    /// FIFO frame channels, parallel to the model's directed links.
    pub channels: Vec<VecDeque<(P::Msg, RxKind)>>,
    /// Pending timers `(at, node, key)`, sorted.
    pub timers: Vec<(SimTime, u32, TimerKey)>,
    /// Remaining adversarial drops.
    pub drops_left: u8,
    /// Remaining adversarial churn toggles.
    pub churns_left: u8,
    /// Quiescent terminal marker (time already jumped to `end_time`).
    pub parked: bool,
}

impl<P: Protocol + Clone> NetState<P> {
    /// Drops used so far (relative to the model's budget).
    pub fn drops_used(&self, model: &NetModel<P>) -> u8 {
        model.drop_budget - self.drops_left
    }
}

/// One resolved transition of a [`NetModel`]. The `tape` pins every
/// named-choice outcome drawn during the dispatch, making the action
/// deterministic (see [`Machine::step`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAction {
    /// Deliver the head frame of the `from → to` channel.
    Deliver {
        /// Directed link `(from, to)`.
        link: (u32, u32),
        /// Named-choice outcomes of the triggered handler(s).
        tape: Vec<usize>,
    },
    /// Adversarially destroy the head frame of `from → to`.
    Drop {
        /// Directed link `(from, to)`.
        link: (u32, u32),
        /// Named-choice outcomes (unicast drops run the sender's
        /// `on_send_failure`).
        tape: Vec<usize>,
    },
    /// Fire a timer due at the current instant.
    Fire {
        /// The node whose timer fires.
        node: u32,
        /// The timer key.
        key: TimerKey,
        /// Named-choice outcomes of `on_timer`.
        tape: Vec<usize>,
    },
    /// Toggle a node's radio.
    Churn {
        /// The toggled node.
        node: u32,
    },
    /// Jump to the next timer instant (channels drained, nothing due).
    Advance {
        /// The new `now`.
        to: SimTime,
    },
    /// Quiesce: no timers remain; jump to `end_time` and stop.
    Park {
        /// The new (final) `now`.
        to: SimTime,
    },
}

/// What gets dispatched into a protocol instance (the checker-side
/// mirror of [`ag_net::Dispatch`], without trace metadata).
#[derive(Debug, Clone)]
enum LocalDispatch<M> {
    Start,
    Packet { from: NodeId, msg: M, rx: RxKind },
    Timer { key: TimerKey },
    SendFailure { to: NodeId, msg: M },
}

enum Effect<M> {
    Send(NodeId, M),
    Broadcast(M),
}

/// A choice tape: the prefix (`values[..pos]`) replays fixed outcomes;
/// past the prefix, the first outcome (0) is taken and recorded so the
/// enumerator can bump to sibling branches. `arities` is rebuilt per
/// run and aligned with the positions actually consumed.
struct Tape {
    values: Vec<usize>,
    arities: Vec<usize>,
    pos: usize,
    strict: bool,
}

impl Tape {
    fn exploring(prefix: Vec<usize>) -> Self {
        Tape {
            values: prefix,
            arities: Vec::new(),
            pos: 0,
            strict: false,
        }
    }

    fn replaying(values: Vec<usize>) -> Self {
        Tape {
            values,
            arities: Vec::new(),
            pos: 0,
            strict: true,
        }
    }

    fn next(&mut self, arity: usize) -> usize {
        if self.pos == self.values.len() {
            assert!(
                !self.strict,
                "action tape too short: handler drew more choices than recorded"
            );
            self.values.push(0);
        }
        self.arities.push(arity);
        let v = self.values[self.pos];
        self.pos += 1;
        assert!(v < arity, "tape value {v} out of range 0..{arity}");
        v
    }
}

/// Advances `values` to the lexicographically next outcome vector
/// under `arities`; `false` when exhausted.
fn bump(values: &mut Vec<usize>, arities: &[usize]) -> bool {
    while let Some(v) = values.pop() {
        let i = values.len();
        if v + 1 < arities[i] {
            values.push(v + 1);
            return true;
        }
    }
    false
}

/// The enumerating [`ProtoCtx`]: sends and timers are captured as
/// effects, named choices come off the [`Tape`].
struct CheckCtx<'a, M: Message> {
    now: SimTime,
    id: NodeId,
    node_count: usize,
    tape: &'a mut Tape,
    effects: Vec<Effect<M>>,
    timers: Vec<(SimDuration, TimerKey)>,
}

impl<M: Message> ProtoCtx<M> for CheckCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn id(&self) -> NodeId {
        self.id
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn send(&mut self, dest: NodeId, msg: M) {
        self.effects.push(Effect::Send(dest, msg));
    }

    fn broadcast(&mut self, msg: M) {
        self.effects.push(Effect::Broadcast(msg));
    }

    fn set_timer(&mut self, delay: SimDuration, key: TimerKey) {
        self.timers.push((delay, key));
    }

    fn count(&mut self, _name: &'static str) {}

    fn count_n(&mut self, _name: &'static str, _n: u64) {}

    fn jitter(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "jitter bound must be positive");
        0
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.tape.next(2) == 1
    }

    fn pick_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick_index needs candidates");
        if n == 1 {
            return 0;
        }
        self.tape.next(n)
    }

    fn pick_weighted<F: Fn(usize) -> f64>(&mut self, n: usize, _weight: F) -> usize {
        // Strictly positive weights mean every candidate has non-zero
        // probability, so the checker enumerates them all uniformly.
        self.pick_index(n)
    }
}

impl<P: Protocol + Clone> NetModel<P> {
    /// Runs `disp` (plus the send-failure cascade it provokes) against
    /// `st`, drawing choices from `tape`.
    fn apply_dispatch(
        &self,
        st: &mut NetState<P>,
        node: usize,
        disp: LocalDispatch<P::Msg>,
        tape: &mut Tape,
    ) {
        let mut work: VecDeque<(usize, LocalDispatch<P::Msg>)> = VecDeque::new();
        work.push_back((node, disp));
        let mut steps = 0;
        while let Some((n, d)) = work.pop_front() {
            steps += 1;
            assert!(
                steps <= MAX_CASCADE,
                "send-failure cascade did not terminate"
            );
            let mut ctx = CheckCtx {
                now: st.now,
                id: NodeId::new(n as u32),
                node_count: st.nodes.len(),
                tape,
                effects: Vec::new(),
                timers: Vec::new(),
            };
            match d {
                LocalDispatch::Start => st.nodes[n].start(&mut ctx),
                LocalDispatch::Packet { from, msg, rx } => {
                    st.nodes[n].on_packet(&mut ctx, from, msg, rx);
                }
                LocalDispatch::Timer { key } => st.nodes[n].on_timer(&mut ctx, key),
                LocalDispatch::SendFailure { to, msg } => {
                    st.nodes[n].on_send_failure(&mut ctx, to, msg);
                }
            }
            let CheckCtx {
                effects, timers, ..
            } = ctx;
            for (delay, key) in timers {
                let at = st.now + delay;
                // Parked timer: its firing would land beyond the active
                // horizon, so it can never be observed.
                if at <= self.horizon {
                    st.timers.push((at, n as u32, key));
                }
            }
            for eff in effects {
                match eff {
                    Effect::Send(dest, msg) => {
                        // A down radio's unicasts die in its MAC queue;
                        // so do unicasts to nodes that were never in
                        // range. Both surface as send failures.
                        let li = self.link_index(n as u32, dest.raw());
                        match li {
                            Some(li) if st.alive[n] => {
                                st.channels[li].push_back((msg, RxKind::Unicast));
                            }
                            _ => work.push_back((n, LocalDispatch::SendFailure { to: dest, msg })),
                        }
                    }
                    Effect::Broadcast(msg) => {
                        if !st.alive[n] {
                            continue;
                        }
                        for (li, &(from, _)) in self.links.iter().enumerate() {
                            if from == n as u32 {
                                st.channels[li].push_back((msg.clone(), RxKind::Broadcast));
                            }
                        }
                    }
                }
            }
        }
        st.timers.sort_by_key(|&(at, n, k)| (at, n, k));
    }

    /// Runs `disp` on (a clone of) `prepped` once per distinct
    /// choice-outcome vector; returns `(tape, successor)` pairs.
    fn enumerate_dispatch(
        &self,
        prepped: &NetState<P>,
        node: usize,
        disp: &LocalDispatch<P::Msg>,
    ) -> Vec<(Vec<usize>, NetState<P>)> {
        let mut out = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let mut tape = Tape::exploring(prefix.clone());
            let mut st = prepped.clone();
            self.apply_dispatch(&mut st, node, disp.clone(), &mut tape);
            let consumed = tape.pos;
            let mut values = tape.values;
            values.truncate(consumed);
            out.push((values.clone(), st));
            prefix = values;
            if !bump(&mut prefix, &tape.arities) {
                return out;
            }
        }
    }

    /// Deterministic re-application of one dispatch with a pinned tape.
    fn replay_dispatch(
        &self,
        prepped: &NetState<P>,
        node: usize,
        disp: LocalDispatch<P::Msg>,
        tape_values: &[usize],
    ) -> NetState<P> {
        let mut tape = Tape::replaying(tape_values.to_vec());
        let mut st = prepped.clone();
        self.apply_dispatch(&mut st, node, disp, &mut tape);
        assert_eq!(
            tape.pos,
            tape_values.len(),
            "action tape not fully consumed: state/action mismatch"
        );
        st
    }

    /// The popped-head channel state plus how the head must be
    /// dispatched (receiver packet, sender failure, or vanish).
    #[allow(clippy::type_complexity)]
    fn prep_head(
        &self,
        st: &NetState<P>,
        li: usize,
        consume_drop: bool,
    ) -> (NetState<P>, Option<(usize, LocalDispatch<P::Msg>)>) {
        let (from, to) = self.links[li];
        let mut prepped = st.clone();
        let (msg, rx) = prepped.channels[li].pop_front().expect("head exists");
        if consume_drop {
            prepped.drops_left -= 1;
        }
        let dispatch = if !consume_drop && st.alive[to as usize] {
            Some((
                to as usize,
                LocalDispatch::Packet {
                    from: NodeId::new(from),
                    msg,
                    rx,
                },
            ))
        } else if rx == RxKind::Unicast {
            // Dropped or undeliverable unicast: the sender's MAC gives
            // up and reports the failure.
            Some((
                from as usize,
                LocalDispatch::SendFailure {
                    to: NodeId::new(to),
                    msg,
                },
            ))
        } else {
            None
        };
        (prepped, dispatch)
    }
}

impl<P: Protocol + Clone> Machine for NetModel<P> {
    type State = NetState<P>;
    type Action = NetAction;

    fn initial(&self) -> NetState<P> {
        if let Some(root) = &self.root {
            return (**root).clone();
        }
        let n = self.protocols.len();
        let mut st = NetState {
            now: SimTime::ZERO,
            nodes: self.protocols.clone(),
            alive: vec![true; n],
            channels: vec![VecDeque::new(); self.links.len()],
            timers: Vec::new(),
            drops_left: self.drop_budget,
            churns_left: self.churn_budget,
            parked: false,
        };
        for node in 0..n {
            let outs = self.enumerate_dispatch(&st, node, &LocalDispatch::Start);
            assert_eq!(
                outs.len(),
                1,
                "Protocol::start must not draw branching choices"
            );
            st = outs.into_iter().next().expect("one start outcome").1;
        }
        st
    }

    fn successors(&self, st: &NetState<P>) -> Vec<(NetAction, NetState<P>)> {
        if st.parked {
            return Vec::new();
        }
        let mut out = Vec::new();
        // 1. Channel heads: deliver, and (budget allowing) drop.
        for li in 0..self.links.len() {
            if st.channels[li].is_empty() {
                continue;
            }
            let link = self.links[li];
            for consume_drop in [false, true] {
                if consume_drop && st.drops_left == 0 {
                    continue;
                }
                let (prepped, dispatch) = self.prep_head(st, li, consume_drop);
                let mk = |tape| {
                    if consume_drop {
                        NetAction::Drop { link, tape }
                    } else {
                        NetAction::Deliver { link, tape }
                    }
                };
                match dispatch {
                    Some((node, disp)) => {
                        for (tape, next) in self.enumerate_dispatch(&prepped, node, &disp) {
                            out.push((mk(tape), next));
                        }
                    }
                    None => out.push((mk(Vec::new()), prepped)),
                }
            }
        }
        // 2. Timers due now. Partial-order reduction: simultaneous
        // timers fire in canonical (node, key) order — the same
        // deterministic order the engine's calendar queue uses — so
        // only the first due timer yields a `Fire` action. Timer
        // nondeterminism survives where it matters: fires interleave
        // freely with deliveries, drops and churn. Exploring all k!
        // orders of k same-instant fires was the dominant blow-up and
        // adds no engine-reachable behavior.
        if let Some(&(at, node, key)) = st.timers.first() {
            if at == st.now {
                let mut prepped = st.clone();
                prepped.timers.remove(0);
                for (tape, next) in
                    self.enumerate_dispatch(&prepped, node as usize, &LocalDispatch::Timer { key })
                {
                    out.push((NetAction::Fire { node, key, tape }, next));
                }
            }
        }
        // 3. Churn.
        if st.churns_left > 0 && st.now <= self.horizon {
            for node in 0..st.nodes.len() {
                let mut next = st.clone();
                next.alive[node] = !next.alive[node];
                next.churns_left -= 1;
                out.push((NetAction::Churn { node: node as u32 }, next));
            }
        }
        // 4. Time: only once everything in flight has resolved.
        let drained = st.channels.iter().all(VecDeque::is_empty);
        let nothing_due = st.timers.first().is_none_or(|&(at, _, _)| at > st.now);
        if drained && nothing_due {
            if let Some(&(at, _, _)) = st.timers.first() {
                let mut next = st.clone();
                next.now = at;
                out.push((NetAction::Advance { to: at }, next));
            } else {
                let mut next = st.clone();
                next.now = next.now.max(self.end_time);
                next.parked = true;
                let to = next.now;
                out.push((NetAction::Park { to }, next));
            }
        }
        out
    }

    fn step(&self, st: &NetState<P>, action: &NetAction) -> NetState<P> {
        match action {
            NetAction::Deliver { link, tape } | NetAction::Drop { link, tape } => {
                let li = self.link_index(link.0, link.1).expect("action link exists");
                let consume_drop = matches!(action, NetAction::Drop { .. });
                let (prepped, dispatch) = self.prep_head(st, li, consume_drop);
                match dispatch {
                    Some((node, disp)) => self.replay_dispatch(&prepped, node, disp, tape),
                    None => prepped,
                }
            }
            NetAction::Fire { node, key, tape } => {
                let mut prepped = st.clone();
                let idx = prepped
                    .timers
                    .iter()
                    .position(|&t| t == (st.now, *node, *key))
                    .expect("due timer present");
                prepped.timers.remove(idx);
                self.replay_dispatch(
                    &prepped,
                    *node as usize,
                    LocalDispatch::Timer { key: *key },
                    tape,
                )
            }
            NetAction::Churn { node } => {
                let mut next = st.clone();
                next.alive[*node as usize] = !next.alive[*node as usize];
                next.churns_left -= 1;
                next
            }
            NetAction::Advance { to } => {
                let mut next = st.clone();
                next.now = *to;
                next
            }
            NetAction::Park { to } => {
                let mut next = st.clone();
                next.now = *to;
                next.parked = true;
                next
            }
        }
    }
}
