//! A counting global allocator for the allocation-regression benches.
//!
//! Only compiled under the `alloc-count` feature. The bench and test
//! binaries that want allocation numbers install [`CountingAllocator`]
//! as their `#[global_allocator]` and read [`CountingAllocator::count`]
//! deltas around the measured region. Allocation counts — unlike
//! nanoseconds — are deterministic for this workspace's deterministic
//! simulations, so `BENCH_<pr>.json` records them exactly and the CI
//! gate compares them with no tolerance.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts every allocation and
/// reallocation (frees are not counted: the diet target is "no new
/// heap traffic per event", and every steady-state free implies a
/// matching alloc).
pub struct CountingAllocator {
    allocs: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter at zero (`const`, so it can initialise a
    /// `static`).
    pub const fn new() -> Self {
        CountingAllocator {
            allocs: AtomicU64::new(0),
        }
    }

    /// Total allocations + reallocations observed since program start.
    pub fn count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation unchanged to `System`; the only
// addition is a relaxed atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
