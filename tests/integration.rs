//! Cross-crate integration tests: the full stack (DES kernel → mobility
//! → PHY/MAC → MAODV → Anonymous Gossip → harness) exercised together
//! on mid-sized scenarios.

use ag_core::{AgConfig, AnonymousGossip};
use ag_harness::{run_gossip, run_maodv, ProtocolKind, Scenario, GROUP};
use ag_maodv::{MaodvConfig, TrafficSource};
use ag_mobility::{Stationary, Vec2};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_sim::{SimDuration, SimTime};

fn small_scenario() -> Scenario {
    Scenario::paper(20, 80.0, 1.0).with_duration_secs(120)
}

#[test]
fn full_stack_delivers_most_packets() {
    let sc = small_scenario();
    let r = run_gossip(&sc, 1);
    assert_eq!(r.protocol, ProtocolKind::Gossip);
    let ratio = r.delivery_ratio();
    assert!(
        ratio > 0.8,
        "gossip stack should deliver most packets in a benign scenario, got {ratio:.2}"
    );
}

#[test]
fn gossip_never_loses_to_maodv_on_matched_seeds() {
    // Gossip strictly adds a recovery channel on the same phase-one
    // substrate; pooled over members and a few seeds it must not be
    // worse than the baseline.
    let sc = Scenario::paper(24, 60.0, 2.0).with_duration_secs(120);
    let mut gossip_total = 0.0;
    let mut maodv_total = 0.0;
    for seed in 0..3 {
        gossip_total += run_gossip(&sc, seed).received_summary().mean();
        maodv_total += run_maodv(&sc, seed).received_summary().mean();
    }
    assert!(
        gossip_total >= maodv_total,
        "gossip {gossip_total:.0} vs maodv {maodv_total:.0}"
    );
}

#[test]
fn delivery_split_is_consistent() {
    let sc = small_scenario();
    let r = run_gossip(&sc, 2);
    for m in &r.members {
        assert_eq!(
            m.received,
            m.via_tree + m.via_gossip,
            "every distinct packet came from exactly one path"
        );
        assert!(m.received <= r.sent);
    }
}

#[test]
fn source_always_has_everything() {
    let sc = small_scenario();
    for seed in 0..3 {
        let r = run_gossip(&sc, seed);
        let src = r.members.iter().find(|m| m.node == r.source).unwrap();
        assert_eq!(src.received, r.sent);
    }
}

#[test]
fn counters_are_populated_by_real_traffic() {
    let sc = small_scenario();
    let r = run_gossip(&sc, 3);
    assert!(
        r.counter("mac.broadcast_tx") > 1000,
        "hellos + data + floods"
    );
    assert!(r.counter("maodv.data_originated") > 0);
    assert!(r.counter("maodv.join_rrep_sent") > 0);
    assert!(r.counter("maodv.grph_originated") > 0);
}

#[test]
fn member_caches_fill_without_membership_protocol() {
    // §4.3: membership information is collected "at no extra cost".
    let sc = small_scenario();
    let members = sc.members_for_seed(4);
    let source = members[0];
    let nodes: Vec<NodeSetup<AnonymousGossip>> = (0..sc.nodes)
        .map(|i| {
            let id = NodeId::new(i as u32);
            let mut rng = ag_sim::rng::SeedSplitter::new(4)
                .stream(ag_sim::rng::StreamKind::Placement, i as u64);
            NodeSetup {
                mobility: Box::new(ag_mobility::RandomWaypoint::new(
                    sc.field,
                    ag_mobility::SpeedRange::new(0.0, 1.0),
                    ag_mobility::PauseRange::paper(),
                    &mut rng,
                )),
                protocol: AnonymousGossip::new(
                    sc.ag,
                    sc.maodv,
                    id,
                    GROUP,
                    members.contains(&id),
                    (id == source).then_some(sc.traffic),
                ),
            }
        })
        .collect();
    let mut e = Engine::new(PhyParams::paper_default(sc.range_m), 4, nodes);
    e.run_until(sc.sim_time);
    let caches_filled = members
        .iter()
        .filter(|&&m| !e.protocol(m).member_cache().is_empty())
        .count();
    assert!(
        caches_filled >= members.len() - 1,
        "almost every member should have discovered members passively ({caches_filled}/{})",
        members.len()
    );
}

#[test]
fn static_grid_has_perfect_tree_delivery() {
    // A 4×4 static grid with generous range: no mobility, no repairs —
    // the tree alone should deliver everything to every member.
    let spacing = 50.0;
    let members: Vec<NodeId> = vec![
        NodeId::new(0),
        NodeId::new(5),
        NodeId::new(10),
        NodeId::new(15),
    ];
    let traffic = TrafficSource::compact(
        SimTime::from_secs(40),
        SimDuration::from_millis(200),
        100,
        64,
    );
    let nodes: Vec<NodeSetup<AnonymousGossip>> = (0..16u32)
        .map(|i| {
            let id = NodeId::new(i);
            let (x, y) = ((i % 4) as f64 * spacing, (i / 4) as f64 * spacing);
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(x, y)))
                    as Box<dyn ag_mobility::Mobility>,
                protocol: AnonymousGossip::new(
                    AgConfig::paper_default(),
                    MaodvConfig::paper_default(),
                    id,
                    GROUP,
                    members.contains(&id),
                    (id == NodeId::new(0)).then_some(traffic),
                ),
            }
        })
        .collect();
    let mut e = Engine::new(PhyParams::paper_default(80.0), 9, nodes);
    e.run_until(SimTime::from_secs(90));
    for &m in &members {
        assert_eq!(
            e.protocol(m).delivery().distinct(),
            100,
            "member {m} missed packets on a static grid"
        );
    }
}

#[test]
fn scaled_duration_preserves_proportions() {
    let sc = Scenario::paper(40, 75.0, 0.2);
    assert_eq!(sc.traffic.start, SimTime::from_secs(120));
    let scaled = sc.with_duration_secs(60);
    // 20% warm-up, source stops at 14/15 of the run.
    assert_eq!(scaled.traffic.start, SimTime::from_secs(12));
    assert_eq!(scaled.traffic.end, SimTime::from_secs(56));
}

#[test]
fn runs_are_bit_deterministic_across_protocol_kinds() {
    let sc = Scenario::paper(16, 70.0, 1.5).with_duration_secs(90);
    for kind in [ProtocolKind::Maodv, ProtocolKind::Gossip] {
        let a = ag_harness::run(&sc, 5, kind);
        let b = ag_harness::run(&sc, 5, kind);
        assert_eq!(
            a.members.iter().map(|m| m.received).collect::<Vec<_>>(),
            b.members.iter().map(|m| m.received).collect::<Vec<_>>()
        );
        assert_eq!(a.counters, b.counters);
    }
}

#[test]
fn goodput_stays_in_range_across_seeds() {
    let sc = Scenario::paper(20, 55.0, 2.0).with_duration_secs(120);
    for seed in 0..3 {
        let r = run_gossip(&sc, seed);
        for m in r.receivers() {
            if let Some(g) = m.goodput_percent {
                assert!((0.0..=100.0).contains(&g), "goodput {g} out of range");
            }
        }
    }
}
