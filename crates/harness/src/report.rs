//! Rendering regenerated figures, stress matrices and goldens as ASCII
//! tables, CSV and exact-bits JSON.

use std::fmt::Write as _;

use crate::experiment::SweepPoint;
use crate::figures::GoodputSeries;
use crate::matrix::MatrixReport;

/// Environment knob: seeds per sweep point (`AG_SEEDS`, default 10 —
/// the paper's count).
pub fn env_seeds() -> u64 {
    std::env::var("AG_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Environment knob: run length in seconds (`AG_SIM_SECS`, default 600
/// — the paper's). Scaled runs keep the paper's warm-up proportions.
pub fn env_sim_secs() -> u64 {
    env_sim_secs_or(600)
}

/// [`env_sim_secs`] with a caller-chosen default, for workloads whose
/// natural length is not the paper's 600 s (the city-scale example
/// defaults to 60 s).
pub fn env_sim_secs_or(default: u64) -> u64 {
    std::env::var("AG_SIM_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Environment knob: node count for the scale examples (`AG_NODES`;
/// the caller supplies its default — 500 for `city_scale`).
pub fn env_nodes(default: usize) -> usize {
    std::env::var("AG_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders a line figure as a fixed-width table mirroring the paper's
/// series: per x-value, mean packets received with the min–max error
/// bar, for both protocols.
pub fn render_table(title: &str, xlabel: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    if let Some(p) = points.first() {
        let _ = writeln!(out, "# packets multicast by the source: {}", p.sent);
    }
    let _ = writeln!(
        out,
        "{:>18} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7}",
        xlabel, "maodv", "min", "max", "gossip", "min", "max", "gain"
    );
    let _ = writeln!(out, "{}", "-".repeat(93));
    for p in points {
        let gain = if p.maodv.mean() > 0.0 {
            p.gossip.mean() / p.maodv.mean()
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "{:>18.2} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} | {:>6.2}x",
            p.x,
            p.maodv.mean(),
            p.maodv.min(),
            p.maodv.max(),
            p.gossip.mean(),
            p.gossip.min(),
            p.gossip.max(),
            gain
        );
    }
    out
}

/// Renders a line figure as JSON with **exact float bits**: every float
/// is written with Rust's shortest-roundtrip formatting, so two point
/// sets render identically iff they are bit-for-bit equal. This is the
/// format of the committed golden-figure snapshots
/// (`tests/golden/*.json`), which pin the paper figures against silent
/// drift from engine refactors.
pub fn render_json(points: &[SweepPoint]) -> String {
    fn summary(s: &ag_sim::stats::Summary) -> String {
        format!(
            "{{\"count\":{},\"mean\":{:?},\"min\":{:?},\"max\":{:?},\"variance\":{:?}}}",
            s.count(),
            s.mean(),
            s.min(),
            s.max(),
            s.variance()
        )
    }
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"x\":{:?},\"sent\":{},\"maodv\":{},\"gossip\":{},\"goodput\":{}}}{}",
            p.x,
            p.sent,
            summary(&p.maodv),
            summary(&p.gossip),
            summary(&p.goodput),
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("]\n");
    out
}

/// Renders a line figure as CSV (one row per x-value).
pub fn render_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("x,sent,maodv_mean,maodv_min,maodv_max,maodv_sd,gossip_mean,gossip_min,gossip_max,gossip_sd,goodput_mean\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            p.x,
            p.sent,
            p.maodv.mean(),
            p.maodv.min(),
            p.maodv.max(),
            p.maodv.stddev(),
            p.gossip.mean(),
            p.gossip.min(),
            p.gossip.max(),
            p.gossip.stddev(),
            p.goodput.mean(),
        );
    }
    out
}

/// Renders a stress-matrix report as a fixed-width comparison table:
/// one row per (loss, churn, speed) configuration, one column group per
/// protocol with its mean delivery percentage and min–max packet range
/// across receivers.
pub fn render_matrix(report: &MatrixReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Cross-protocol stress matrix (mean delivery % across receivers; [min-max] packets)"
    );
    if let Some(c) = report.cells.first() {
        let _ = writeln!(out, "# packets multicast by the source: {}", c.sent);
    }
    let _ = write!(out, "{:>11} {:>11} {:>6}", "loss", "churn", "speed");
    for p in &report.protocols {
        let _ = write!(out, " | {:>20}", format!("{p:?}").to_lowercase());
    }
    let _ = writeln!(out);
    let width = 30 + 23 * report.protocols.len();
    let _ = writeln!(out, "{}", "-".repeat(width));
    for row in report.cells.chunks(report.protocols.len()) {
        let first = &row[0];
        let _ = write!(
            out,
            "{:>11} {:>11} {:>6.1}",
            first.loss, first.churn, first.max_speed
        );
        for c in row {
            let _ = write!(
                out,
                " | {:>7.1}% [{:>4.0}-{:>4.0}]",
                c.delivery_percent(),
                c.received.min(),
                c.received.max()
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Figure 8's per-member goodput series.
pub fn render_goodput(series: &[GoodputSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Goodput at group members (percent, per member, pooled over seeds)"
    );
    for s in series {
        let summary: ag_sim::stats::Summary = s.member_goodput.iter().copied().collect();
        let _ = writeln!(
            out,
            "{:>12}: n={:<4} mean={:>6.2}% min={:>6.2}% max={:>6.2}%",
            s.label,
            summary.count(),
            summary.mean(),
            summary.min(),
            summary.max()
        );
        let values: Vec<String> = s.member_goodput.iter().map(|g| format!("{g:.1}")).collect();
        let _ = writeln!(out, "              [{}]", values.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::stats::Summary;

    fn point(x: f64) -> SweepPoint {
        SweepPoint {
            x,
            sent: 100,
            maodv: [50.0, 70.0].into_iter().collect(),
            gossip: [80.0, 90.0].into_iter().collect(),
            goodput: Summary::new(),
        }
    }

    #[test]
    fn table_contains_series() {
        let t = render_table("Fig X", "range (m)", &[point(45.0), point(50.0)]);
        assert!(t.contains("Fig X"));
        assert!(t.contains("45.00"));
        assert!(t.contains("60.0")); // maodv mean
        assert!(t.contains("85.0")); // gossip mean
        assert!(t.contains("1.42x")); // gain
    }

    #[test]
    fn json_is_exact_and_well_formed() {
        let j = render_json(&[point(45.0), point(50.0)]);
        assert!(j.starts_with("[\n"));
        assert!(j.ends_with("]\n"));
        assert!(j.contains("\"x\":45.0"));
        assert!(j.contains("\"mean\":60.0")); // maodv mean, exact bits
        assert_eq!(j.matches("\"sent\":100").count(), 2);
        // Identical inputs must render byte-identically.
        assert_eq!(j, render_json(&[point(45.0), point(50.0)]));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = render_csv(&[point(45.0)]);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("x,sent,"));
        assert!(lines[1].starts_with("45,100,"));
    }

    #[test]
    fn matrix_rendering_groups_rows_by_configuration() {
        use crate::matrix::{MatrixCell, MatrixReport};
        use crate::ProtocolKind;
        let cell = |protocol, loss: &str, received: Summary| MatrixCell {
            protocol,
            loss: loss.into(),
            churn: "none".into(),
            max_speed: 0.2,
            sent: 100,
            received,
        };
        let report = MatrixReport {
            protocols: vec![ProtocolKind::Gossip, ProtocolKind::Maodv],
            cells: vec![
                cell(
                    ProtocolKind::Gossip,
                    "ideal",
                    [90.0, 100.0].into_iter().collect(),
                ),
                cell(
                    ProtocolKind::Maodv,
                    "ideal",
                    [50.0, 70.0].into_iter().collect(),
                ),
            ],
        };
        let t = render_matrix(&report);
        assert!(t.contains("gossip"));
        assert!(t.contains("maodv"));
        assert!(t.contains("ideal"));
        assert!(t.contains("95.0%"), "{t}");
        assert!(t.contains("60.0%"), "{t}");
        assert_eq!(t.lines().count(), 5, "{t}");
    }

    #[test]
    fn goodput_rendering() {
        let mut hist = ag_sim::stats::Histogram::new(0.0, 100.0, 20);
        hist.record(99.0);
        hist.record(100.0);
        let s = GoodputSeries {
            label: "45m, 0.2m/s".into(),
            range_m: 45.0,
            max_speed: 0.2,
            member_goodput: vec![99.0, 100.0],
            goodput_hist: hist,
        };
        let r = render_goodput(&[s]);
        assert!(r.contains("45m, 0.2m/s"));
        assert!(r.contains("99.5"));
    }

    #[test]
    fn env_defaults() {
        // No env vars set in tests: paper defaults.
        assert_eq!(env_seeds(), 10);
        assert_eq!(env_sim_secs(), 600);
    }
}
