//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. The paper's scenarios run for 600 simulated seconds with MAC
//! events at microsecond granularity; integer nanoseconds give us exact
//! arithmetic (no drift) with room for ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is ordered, hashable and cheap to copy. Construct instants by
/// adding a [`SimDuration`] to [`SimTime::ZERO`] or to another instant.
///
/// # Example
///
/// ```
/// use ag_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use ag_sim::SimDuration;
/// let d = SimDuration::from_millis(200);
/// assert_eq!(d * 5, SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for timers that are currently disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition: `SimTime::MAX` is sticky.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float second count, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(200).as_nanos(), 200_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(t - SimDuration::from_millis(500), SimTime::from_secs(1));
        assert_eq!(SimDuration::from_millis(200) * 5, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a.duration_since(b), SimDuration::from_secs(6));
    }

    #[test]
    fn saturating_add_is_sticky() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn ordering_matches_nanos() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_secs(1)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(5)).is_empty());
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
