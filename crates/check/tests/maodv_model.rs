//! Exhaustive check of the MAODV core: multicast-tree loop freedom.
//!
//! Two configurations:
//!
//! * A 3-node line `0 — 1 — 2` with members at both ends, explored to
//!   fixpoint from t = 0 with one adversarial drop anywhere. Both
//!   members first become singleton leaders, then merge through the
//!   group-hello protocol; the upstream-pointer graph must stay
//!   acyclic in **every** reachable state.
//! * A 4-node chain `L — A — B — C` (members at both ends) warmed up
//!   deterministically to a formed tree, then one adversarial radio
//!   churn (any node, any instant). The healthy protocol repairs the
//!   leader loss without ever forming a loop; with the
//!   accept-stale-sequence-number canary armed, a repair reply from
//!   the requester's own orphaned subtree is accepted and the checker
//!   must hand back the loop counterexample.
//!
//! Timing is compressed relative to the paper's configuration (the
//! checker explores every interleaving, so wall-clock-scale intervals
//! only pad the state space): hellos are pushed out of the healthy
//! window entirely, RREQ retries are disabled (members declare
//! themselves leader after one silent round), and the horizon cuts
//! each scenario right after the interesting phase.

use ag_check::{
    always, exists, explore, render_counterexample, Limits, Machine, NetModel, NetState,
};
use ag_maodv::{GroupId, MaodvConfig, MaodvProtocol};
use ag_net::NodeId;
use ag_sim::{SimDuration, SimTime};

fn cfg(hello_ms: u64, flood_ttl: u8) -> MaodvConfig {
    MaodvConfig {
        hello_interval: SimDuration::from_millis(hello_ms),
        allowed_hello_loss: 1,
        group_hello_interval: SimDuration::from_secs(2),
        tick_interval: SimDuration::from_secs(1),
        rrep_wait: SimDuration::from_secs(1),
        rreq_retries: 0,
        flood_ttl,
        active_route_timeout: SimDuration::from_secs(20),
        join_jitter: SimDuration::from_secs(1),
        data_seen_capacity: 64,
        rreq_seen_capacity: 64,
        discovery_buffer: 4,
        nearest_member_infinity: 32,
    }
}

fn line_protocols(n: u32, members: &[u32], c: MaodvConfig, arm_canary: bool) -> Vec<MaodvProtocol> {
    (0..n)
        .map(|i| {
            let mut p =
                MaodvProtocol::new(c, NodeId::new(i), GroupId(0), members.contains(&i), None);
            if arm_canary {
                p.node_mut().canary_accept_stale_seq();
            }
            p
        })
        .collect()
}

/// The property-relevant projection: upstream pointers + tree shape.
#[derive(Debug, Clone)]
struct Obs {
    upstream: Vec<Option<u32>>,
    on_tree: Vec<bool>,
    leader: Vec<bool>,
}

fn observe(st: &NetState<MaodvProtocol>) -> Obs {
    Obs {
        upstream: st
            .nodes
            .iter()
            .map(|p| p.node().mrt().upstream().map(|u| u.raw()))
            .collect(),
        on_tree: st.nodes.iter().map(|p| p.node().on_tree()).collect(),
        leader: st.nodes.iter().map(|p| p.node().is_leader()).collect(),
    }
}

/// `true` iff following upstream pointers never revisits a node.
fn upstream_acyclic(upstream: &[Option<u32>]) -> bool {
    let n = upstream.len();
    for start in 0..n {
        let mut cur = start;
        for _ in 0..=n {
            match upstream[cur] {
                Some(next) => cur = next as usize,
                None => break,
            }
            if cur == start {
                return false;
            }
        }
    }
    true
}

#[test]
fn maodv_line_merge_is_loop_free() {
    // Hellos pushed past the horizon: neighbour liveness inside the
    // window is carried by the join/merge control traffic itself.
    let model = NetModel::new(
        line_protocols(3, &[0, 2], cfg(10_000, 2), false),
        &[(0, 1), (1, 2)],
        SimTime::from_millis(3500),
        SimTime::from_millis(3500),
    )
    .with_drop_budget(1);
    let ex = explore(
        &model,
        Limits {
            max_states: 200_000,
        },
        observe,
    );
    assert!(ex.complete, "state space must be explored to fixpoint");
    println!(
        "maodv healthy line: {} states, {} terminal",
        ex.len(),
        ex.terminals().count()
    );

    // The tentpole property: the upstream graph is acyclic everywhere.
    let v = always(&ex, |o: &Obs| upstream_acyclic(&o.upstream));
    assert!(v.holds(), "route loop reachable in healthy MAODV");

    // Non-vacuity: the merged tree 2 -> 1 -> 0 with 0 as leader is
    // actually reached on some path.
    assert!(
        exists(&ex, |o: &Obs| {
            o.leader[0]
                && !o.leader[2]
                && o.upstream[1] == Some(0)
                && o.upstream[2] == Some(1)
                && o.on_tree.iter().all(|&t| t)
        })
        .is_some(),
        "the fully merged tree is unreachable — scenario is broken"
    );
    // Non-vacuity: the pre-merge world with two singleton leaders.
    assert!(
        exists(&ex, |o: &Obs| o.leader[0] && o.leader[2]).is_some(),
        "the two-leader partition phase never occurs"
    );
}

/// 4-node chain model re-rooted at a warmed-up formed tree
/// `C -> B -> A -> L`, with one churn in the adversary's budget.
/// Hellos every 1.9 s (off the tick grid, so a live neighbour is
/// always refreshed before its timeout is inspected) detect the break.
fn warmed_chain(arm_canary: bool) -> NetModel<MaodvProtocol> {
    let model = NetModel::new(
        line_protocols(4, &[0, 3], cfg(1_900, 4), arm_canary),
        &[(0, 1), (1, 2), (2, 3)],
        SimTime::from_secs(6),
        SimTime::from_secs(6),
    )
    .with_churn_budget(1);
    let warm = model.warm_up(model.initial(), SimTime::from_millis(3500));
    let o = observe(&warm);
    assert_eq!(
        (o.leader[0], o.upstream[1], o.upstream[2], o.upstream[3]),
        (true, Some(0), Some(1), Some(2)),
        "warm-up did not form the expected chain tree: {o:?}"
    );
    model.with_root(warm)
}

#[test]
fn maodv_canary_accept_stale_seq_is_caught() {
    // Healthy twin: kill any node (including the leader) after the
    // tree has formed; repair never creates a loop.
    let model = warmed_chain(false);
    let ex = explore(
        &model,
        Limits {
            max_states: 400_000,
        },
        observe,
    );
    assert!(ex.complete, "healthy 4-node chain must reach fixpoint");
    println!("maodv healthy chain(4): {} states", ex.len());
    let v = always(&ex, |o: &Obs| upstream_acyclic(&o.upstream));
    assert!(v.holds(), "healthy repair formed a loop");

    // Armed: a stale-sequence answer lets the repairing node graft
    // onto its own orphaned subtree — the checker must find the loop.
    let model = warmed_chain(true);
    let ex = explore(
        &model,
        Limits {
            max_states: 400_000,
        },
        observe,
    );
    println!(
        "maodv canary chain(4): {} states (complete: {})",
        ex.len(),
        ex.complete
    );
    let v = always(&ex, |o: &Obs| upstream_acyclic(&o.upstream));
    let cex = v
        .counterexample()
        .expect("canary must produce a route loop");
    let rendered = render_counterexample(&model, &ex, cex, |st| {
        let o = observe(st);
        format!(
            "t={:?} upstream={:?} leader={:?}",
            st.now, o.upstream, o.leader
        )
    });
    println!("minimal counterexample (accept-stale-seq):\n{rendered}");
    assert!(
        rendered.contains("Churn"),
        "loop should require the leader churn"
    );
}
