//! # ag-mobility: node mobility models
//!
//! Replaces GloMoSim's mobility module for the Anonymous Gossip
//! reproduction. The paper (§5.1) uses the **random-waypoint** model: each
//! node picks a uniformly random destination in the field, travels at a
//! speed drawn uniformly from `[min, max]`, then pauses for a time drawn
//! uniformly from `[0, 80] s` before repeating.
//!
//! Models here are *event-driven and analytic*: a node's trajectory is a
//! sequence of legs (move / pause), its position at any instant inside a leg
//! is computed exactly by linear interpolation, and the model reports the
//! time of its next leg transition so the simulation kernel can schedule it.
//! There is no per-tick position integration and therefore no drift.
//!
//! # Example
//!
//! ```
//! use ag_mobility::{Field, RandomWaypoint, Mobility, SpeedRange, PauseRange};
//! use ag_sim::{SimTime, SimDuration};
//! use ag_sim::rng::{SeedSplitter, StreamKind};
//!
//! let field = Field::new(200.0, 200.0);
//! let splitter = SeedSplitter::new(1);
//! let mut rng = splitter.stream(StreamKind::Mobility, 0);
//! let mut m = RandomWaypoint::new(
//!     field,
//!     SpeedRange::new(0.0, 2.0),
//!     PauseRange::uniform_secs(0.0, 80.0),
//!     &mut rng,
//! );
//! let p0 = m.position(SimTime::ZERO);
//! assert!(field.contains(p0));
//! // Drive the model forward through a few transitions.
//! for _ in 0..5 {
//!     let t = m.next_transition();
//!     m.transition(t, &mut rng);
//!     assert!(field.contains(m.position(t)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod models;
mod vec2;

pub mod density;

pub use field::Field;
pub use models::{
    LegSample, Mobility, PauseRange, RandomWalk, RandomWaypoint, SpeedRange, Stationary,
    MIN_EFFECTIVE_SPEED,
};
pub use vec2::Vec2;
