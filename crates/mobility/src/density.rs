//! Node-density helpers for the paper's Figure 6.
//!
//! Figure 6 varies the node count from 40 to 100 while "the transmission
//! range was adjusted in such a way that the average number of neighbors of
//! a node remained approximately the same". For nodes placed uniformly in a
//! field of area `A`, ignoring border effects, the expected neighbour count
//! of a node with range `r` is `(n − 1) · πr² / A`; holding that constant
//! gives `r(n) = r₀ · √((n₀ − 1) / (n − 1))`.

use crate::{Field, Vec2};

/// Expected neighbour count for `n` uniform nodes with transmission range
/// `range_m` in `field`, ignoring border effects.
///
/// # Example
///
/// ```
/// use ag_mobility::{Field, density};
/// let d = density::expected_degree(40, 55.0, Field::paper());
/// assert!(d > 8.0 && d < 10.0);
/// ```
pub fn expected_degree(n: usize, range_m: f64, field: Field) -> f64 {
    if n < 2 {
        return 0.0;
    }
    (n as f64 - 1.0) * std::f64::consts::PI * range_m * range_m / field.area()
}

/// The transmission range that keeps the expected neighbour count equal to
/// that of a baseline `(n0, r0)` configuration when the node count is `n`.
///
/// This is the range-scaling rule used to regenerate the paper's Figure 6.
///
/// # Example
///
/// ```
/// use ag_mobility::density;
/// let r = density::range_for_constant_degree(40, 55.0, 40);
/// assert_eq!(r, 55.0);
/// let r100 = density::range_for_constant_degree(40, 55.0, 100);
/// assert!(r100 < 55.0);
/// ```
///
/// # Panics
///
/// Panics if either node count is less than 2.
pub fn range_for_constant_degree(n0: usize, r0: f64, n: usize) -> f64 {
    assert!(n0 >= 2 && n >= 2, "node counts must be at least 2");
    r0 * ((n0 as f64 - 1.0) / (n as f64 - 1.0)).sqrt()
}

/// Measures the *actual* mean neighbour count of a set of positions, where
/// two nodes are neighbours iff their distance is at most `range_m`.
///
/// Used by tests to validate [`expected_degree`] and by the harness to
/// report realized densities.
pub fn mean_degree(positions: &[Vec2], range_m: f64) -> f64 {
    let n = positions.len();
    if n < 2 {
        return 0.0;
    }
    let r2 = range_m * range_m;
    let mut links = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i].distance_sq(positions[j]) <= r2 {
                links += 1;
            }
        }
    }
    // Each link contributes one neighbour to each endpoint.
    2.0 * links as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::rng::{SeedSplitter, StreamKind};

    #[test]
    fn degree_formula_monotone() {
        let f = Field::paper();
        assert!(expected_degree(40, 55.0, f) < expected_degree(40, 75.0, f));
        assert!(expected_degree(40, 55.0, f) < expected_degree(100, 55.0, f));
        assert_eq!(expected_degree(1, 55.0, f), 0.0);
    }

    #[test]
    fn constant_degree_inversion() {
        let f = Field::paper();
        let d0 = expected_degree(40, 55.0, f);
        for n in [40, 60, 80, 100] {
            let r = range_for_constant_degree(40, 55.0, n);
            let d = expected_degree(n, r, f);
            assert!(
                (d - d0).abs() < 1e-9,
                "degree drifted at n={n}: {d} vs {d0}"
            );
        }
    }

    #[test]
    fn mean_degree_empirically_matches_expectation() {
        // Interior-dominated check: big field relative to range keeps border
        // effects small, so the unbounded formula should be within ~20 %.
        let f = Field::new(1000.0, 1000.0);
        let mut rng = SeedSplitter::new(11).stream(StreamKind::Placement, 0);
        let n = 500;
        let positions: Vec<Vec2> = (0..n).map(|_| f.sample_uniform(&mut rng)).collect();
        let r = 100.0;
        let measured = mean_degree(&positions, r);
        let expected = expected_degree(n, r, f);
        assert!(
            (measured - expected).abs() / expected < 0.2,
            "measured {measured} vs expected {expected}"
        );
    }

    #[test]
    fn mean_degree_edge_cases() {
        assert_eq!(mean_degree(&[], 10.0), 0.0);
        assert_eq!(mean_degree(&[Vec2::ZERO], 10.0), 0.0);
        let pair = [Vec2::ZERO, Vec2::new(5.0, 0.0)];
        assert_eq!(mean_degree(&pair, 10.0), 1.0);
        assert_eq!(mean_degree(&pair, 1.0), 0.0);
    }
}
