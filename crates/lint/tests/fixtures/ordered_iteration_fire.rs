//! must-fire: hash-order iteration feeding rendered output.

use ag_sim::hash::DetHashMap;

pub fn render(per_node: &DetHashMap<u32, u64>) -> String {
    let mut out = String::new();
    for (node, goodput) in per_node.iter() {
        out.push_str(&format!("{node} {goodput}\n"));
    }
    for node in per_node.keys() {
        out.push_str(&format!("{node}\n"));
    }
    out
}
