//! Minimal 2-D vector used for node positions and velocities.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point or displacement in the plane, in metres.
///
/// # Example
///
/// ```
/// use ag_mobility::Vec2;
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.length(), 5.0);
/// assert_eq!(a.distance_to(Vec2::ZERO), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal coordinate (m).
    pub x: f64,
    /// Vertical coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length (avoids the square root for comparisons).
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Squared distance to `other`.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).length_sq()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in this direction, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len == 0.0 {
            None
        } else {
            Some(Vec2::new(self.x / len, self.y / len))
        }
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn length_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance_to(v), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(v), 25.0);
    }

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
    }

    #[test]
    fn normalize() {
        assert_eq!(Vec2::ZERO.normalized(), None);
        let n = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(n, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Vec2::new(1.5, 2.5).to_string().is_empty());
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                    bx in -1e3f64..1e3, by in -1e3f64..1e3,
                                    cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Vec2::new(ax, ay);
            let b = Vec2::new(bx, by);
            let c = Vec2::new(cx, cy);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        }

        #[test]
        fn prop_lerp_stays_on_segment(t in 0.0f64..1.0,
                                      ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                      bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Vec2::new(ax, ay);
            let b = Vec2::new(bx, by);
            let p = a.lerp(b, t);
            // Distance from a to p plus p to b equals a to b (collinearity).
            prop_assert!((a.distance_to(p) + p.distance_to(b) - a.distance_to(b)).abs() < 1e-6);
        }
    }
}
