//! The unicast AODV Route Table (paper §3).
//!
//! Each entry records the next hop toward a destination, the freshest
//! destination sequence number seen, the hop count, and a lifetime that
//! is refreshed every time the route is used or re-learned.

use ag_sim::hash::DetHashMap as HashMap;

use ag_net::NodeId;
use ag_sim::SimTime;

/// One route table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Next hop toward the destination.
    pub next_hop: NodeId,
    /// Freshest known destination sequence number.
    pub seq: u32,
    /// Hop count to the destination.
    pub hops: u8,
    /// Entry expires (becomes invalid) at this instant.
    pub expires: SimTime,
}

/// The route table: destination → entry.
///
/// # Example
///
/// ```
/// use ag_maodv::route_table::RouteTable;
/// use ag_net::NodeId;
/// use ag_sim::{SimTime, SimDuration};
///
/// let mut rt = RouteTable::new();
/// let now = SimTime::ZERO;
/// rt.update(NodeId::new(5), NodeId::new(2), 10, 3, now + SimDuration::from_secs(3));
/// assert_eq!(rt.lookup(NodeId::new(5), now).unwrap().next_hop, NodeId::new(2));
/// assert!(rt.lookup(NodeId::new(5), now + SimDuration::from_secs(4)).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: HashMap<NodeId, RouteEntry>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the live route to `dest`, if any.
    pub fn lookup(&self, dest: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.routes.get(&dest).filter(|e| e.expires > now)
    }

    /// Installs or refreshes a route following the AODV freshness rule:
    /// accept if the new sequence number is strictly fresher, or equally
    /// fresh with a shorter hop count, or the existing entry has expired.
    ///
    /// Returns `true` if the table changed.
    pub fn update(
        &mut self,
        dest: NodeId,
        next_hop: NodeId,
        seq: u32,
        hops: u8,
        expires: SimTime,
    ) -> bool {
        match self.routes.get_mut(&dest) {
            Some(e) => {
                let fresher = seq > e.seq || (seq == e.seq && hops < e.hops);
                if fresher {
                    *e = RouteEntry {
                        next_hop,
                        seq,
                        hops,
                        expires,
                    };
                    true
                } else if seq == e.seq && next_hop == e.next_hop {
                    // Same route re-confirmed: refresh lifetime.
                    e.expires = e.expires.max(expires);
                    false
                } else {
                    false
                }
            }
            None => {
                self.routes.insert(
                    dest,
                    RouteEntry {
                        next_hop,
                        seq,
                        hops,
                        expires,
                    },
                );
                true
            }
        }
    }

    /// Installs or refreshes a route, overriding the freshness rule when
    /// the existing entry has already expired.
    pub fn update_allow_stale(
        &mut self,
        dest: NodeId,
        next_hop: NodeId,
        seq: u32,
        hops: u8,
        expires: SimTime,
        now: SimTime,
    ) -> bool {
        if let Some(e) = self.routes.get(&dest) {
            if e.expires <= now {
                self.routes.insert(
                    dest,
                    RouteEntry {
                        next_hop,
                        seq,
                        hops,
                        expires,
                    },
                );
                return true;
            }
        }
        self.update(dest, next_hop, seq, hops, expires)
    }

    /// Extends the lifetime of the route to `dest` (route-in-use rule).
    pub fn refresh(&mut self, dest: NodeId, until: SimTime) {
        if let Some(e) = self.routes.get_mut(&dest) {
            e.expires = e.expires.max(until);
        }
    }

    /// Drops the route to `dest` (e.g. after a send failure through it).
    pub fn invalidate(&mut self, dest: NodeId) {
        self.routes.remove(&dest);
    }

    /// Drops every route whose next hop is `via` (broken-link sweep).
    /// Returns the affected destinations in id order.
    pub fn invalidate_via(&mut self, via: NodeId) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .routes
            .iter()
            .filter(|(_, e)| e.next_hop == via)
            .map(|(d, _)| *d)
            .collect();
        dead.sort_unstable();
        for d in &dead {
            self.routes.remove(d);
        }
        dead
    }

    /// Number of entries (live or expired; expired entries are lazily
    /// ignored by [`RouteTable::lookup`]).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if the table has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The freshest sequence number known for `dest`, expired or not.
    pub fn known_seq(&self, dest: NodeId) -> Option<u32> {
        self.routes.get(&dest).map(|e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lookup_respects_expiry() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 1, 1, t(3));
        assert!(rt.lookup(NodeId::new(1), t(2)).is_some());
        assert!(rt.lookup(NodeId::new(1), t(3)).is_none());
        assert!(rt.lookup(NodeId::new(9), t(0)).is_none());
    }

    #[test]
    fn fresher_seq_wins() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 5, 3, t(3));
        // Older seq rejected.
        assert!(!rt.update(NodeId::new(1), NodeId::new(7), 4, 1, t(3)));
        assert_eq!(
            rt.lookup(NodeId::new(1), t(0)).unwrap().next_hop,
            NodeId::new(2)
        );
        // Fresher seq accepted.
        assert!(rt.update(NodeId::new(1), NodeId::new(7), 6, 4, t(4)));
        assert_eq!(
            rt.lookup(NodeId::new(1), t(0)).unwrap().next_hop,
            NodeId::new(7)
        );
    }

    #[test]
    fn equal_seq_shorter_hops_wins() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 5, 3, t(3));
        assert!(rt.update(NodeId::new(1), NodeId::new(3), 5, 2, t(3)));
        assert_eq!(rt.lookup(NodeId::new(1), t(0)).unwrap().hops, 2);
        assert!(!rt.update(NodeId::new(1), NodeId::new(4), 5, 2, t(3)));
    }

    #[test]
    fn reconfirmation_refreshes_lifetime() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 5, 3, t(3));
        rt.update(NodeId::new(1), NodeId::new(2), 5, 3, t(9));
        assert!(rt.lookup(NodeId::new(1), t(8)).is_some());
    }

    #[test]
    fn update_allow_stale_replaces_expired() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 9, 3, t(3));
        // At t=5 entry is expired; an older-seq update must be allowed in.
        assert!(rt.update_allow_stale(NodeId::new(1), NodeId::new(4), 2, 1, t(8), t(5)));
        assert_eq!(
            rt.lookup(NodeId::new(1), t(5)).unwrap().next_hop,
            NodeId::new(4)
        );
    }

    #[test]
    fn refresh_extends() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 1, 1, t(3));
        rt.refresh(NodeId::new(1), t(10));
        assert!(rt.lookup(NodeId::new(1), t(9)).is_some());
        // Refreshing a missing route is a no-op.
        rt.refresh(NodeId::new(9), t(10));
        assert!(rt.lookup(NodeId::new(9), t(0)).is_none());
    }

    #[test]
    fn invalidate_via_sweeps_all_dependents() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 1, 1, t(30));
        rt.update(NodeId::new(3), NodeId::new(2), 1, 2, t(30));
        rt.update(NodeId::new(4), NodeId::new(5), 1, 2, t(30));
        let mut dead = rt.invalidate_via(NodeId::new(2));
        dead.sort();
        assert_eq!(dead, vec![NodeId::new(1), NodeId::new(3)]);
        assert!(rt.lookup(NodeId::new(1), t(0)).is_none());
        assert!(rt.lookup(NodeId::new(4), t(0)).is_some());
        assert_eq!(rt.len(), 1);
        assert!(!rt.is_empty());
    }

    #[test]
    fn known_seq_survives_expiry() {
        let mut rt = RouteTable::new();
        rt.update(NodeId::new(1), NodeId::new(2), 42, 1, t(3));
        assert_eq!(rt.known_seq(NodeId::new(1)), Some(42));
        assert_eq!(rt.known_seq(NodeId::new(2)), None);
    }
}
