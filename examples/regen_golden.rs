//! Regenerates the golden-figure snapshots under `tests/golden/`.
//!
//! The snapshots pin a small-seed slice of the paper's evaluation with
//! exact float bits; `tests/golden_figures.rs` asserts byte-identical
//! output on every `cargo test`, so an engine refactor cannot silently
//! shift paper results. If a change *intentionally* alters results
//! (and EXPERIMENTS.md explains why), refresh the snapshots with:
//!
//! ```text
//! cargo run --release --example regen_golden
//! ```

use std::fs;
use std::path::Path;

use ag_harness::figures::{fig2, fig8_par};
use ag_harness::{report, Parallelism};

/// Seeds per sweep point. Small on purpose: the snapshot is a tripwire,
/// not a reproduction (the figure binaries do that at full scale).
pub const GOLDEN_SEEDS: u64 = 1;
/// Simulated seconds per run (the paper's 600 s scaled down so the
/// check fits a normal `cargo test` budget).
pub const GOLDEN_SECS: u64 = 30;

fn main() {
    let dir = Path::new("tests/golden");
    fs::create_dir_all(dir).expect("create tests/golden");

    eprintln!("regenerating fig2 snapshot ({GOLDEN_SEEDS} seed x {GOLDEN_SECS} s)...");
    let points = fig2()
        .with_duration_secs(GOLDEN_SECS)
        .run_par(GOLDEN_SEEDS, Parallelism::auto());
    let fig2_json = report::render_json(&points);
    fs::write(dir.join("fig2_small.json"), &fig2_json).expect("write fig2 snapshot");

    eprintln!("regenerating fig8 snapshot...");
    let series = fig8_par(GOLDEN_SEEDS, GOLDEN_SECS, Parallelism::auto());
    let fig8_txt = format!("{series:#?}\n");
    fs::write(dir.join("fig8_small.txt"), &fig8_txt).expect("write fig8 snapshot");

    eprintln!("done; review the diff before committing.");
}
