//! The lost table (§4.4): sequence numbers this member believes it is
//! missing, discovered when a packet arrives with a sequence number past
//! the expected one.

use std::collections::{BTreeMap, VecDeque};

use ag_sim::hash::DetHashSet as HashSet;

use ag_net::NodeId;

use crate::message::PacketId;

/// Bounded table of believed-lost packets plus per-origin expected
/// sequence numbers.
///
/// Insertion order is tracked so the gossip message can carry "the most
/// recent entries of the lost table" (§4.4); capacity eviction drops the
/// *oldest* entries, which are the least likely to still be in anyone's
/// history table.
///
/// # Example
///
/// ```
/// use ag_core::LostTable;
/// use ag_net::NodeId;
///
/// let origin = NodeId::new(7);
/// let mut lt = LostTable::new(200);
/// lt.observe(origin, 1); // expected becomes 2
/// lt.observe(origin, 4); // 2 and 3 are now believed lost
/// assert_eq!(lt.len(), 2);
/// assert!(lt.is_lost(&ag_core::PacketId::new(origin, 2)));
/// lt.recover(ag_core::PacketId::new(origin, 2));
/// assert_eq!(lt.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LostTable {
    lost: HashSet<PacketId>,
    order: VecDeque<PacketId>,
    expected: BTreeMap<NodeId, u32>,
    capacity: usize,
    overflow_drops: u64,
}

impl LostTable {
    /// Creates a table holding at most `capacity` lost entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lost table needs capacity");
        LostTable {
            lost: HashSet::default(),
            order: VecDeque::new(),
            expected: BTreeMap::new(),
            capacity,
            overflow_drops: 0,
        }
    }

    /// Records that packet `(origin, seq)` was received (via tree or
    /// gossip). Packets between the old expected sequence number and
    /// `seq` become lost entries; a received packet that was in the
    /// table is removed.
    pub fn observe(&mut self, origin: NodeId, seq: u32) {
        let id = PacketId::new(origin, seq);
        if self.lost.remove(&id) {
            self.order.retain(|x| *x != id);
        }
        let expected = *self.expected.entry(origin).or_insert(1);
        if seq >= expected {
            for missing in expected..seq {
                self.insert_lost(PacketId::new(origin, missing));
            }
            self.expected.insert(origin, seq + 1);
        }
    }

    /// Marks a believed-lost packet as recovered.
    pub fn recover(&mut self, id: PacketId) {
        if self.lost.remove(&id) {
            self.order.retain(|x| *x != id);
        }
    }

    fn insert_lost(&mut self, id: PacketId) {
        if !self.lost.insert(id) {
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.lost.remove(&old);
                self.overflow_drops += 1;
            }
        }
        self.order.push_back(id);
    }

    /// `true` if `id` is currently believed lost.
    pub fn is_lost(&self, id: &PacketId) -> bool {
        self.lost.contains(id)
    }

    /// The most recently added lost entries, newest first, up to `max` —
    /// the gossip message's lost buffer (§4.1, §4.4).
    pub fn lost_buffer(&self, max: usize) -> Vec<PacketId> {
        self.order.iter().rev().take(max).copied().collect()
    }

    /// The per-origin next expected sequence numbers.
    pub fn expected_vec(&self) -> Vec<(NodeId, u32)> {
        self.expected.iter().map(|(n, s)| (*n, *s)).collect()
    }

    /// Next expected sequence number for `origin` (1 if never heard).
    pub fn expected_for(&self, origin: NodeId) -> u32 {
        self.expected.get(&origin).copied().unwrap_or(1)
    }

    /// Number of believed-lost packets.
    pub fn len(&self) -> usize {
        self.lost.len()
    }

    /// `true` if nothing is believed lost.
    pub fn is_empty(&self) -> bool {
        self.lost.is_empty()
    }

    /// Entries evicted because the table was full.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn o() -> NodeId {
        NodeId::new(9)
    }

    #[test]
    fn in_order_arrivals_create_no_losses() {
        let mut lt = LostTable::new(10);
        for s in 1..=5 {
            lt.observe(o(), s);
        }
        assert!(lt.is_empty());
        assert_eq!(lt.expected_for(o()), 6);
    }

    #[test]
    fn gap_creates_lost_entries() {
        let mut lt = LostTable::new(10);
        lt.observe(o(), 3);
        assert_eq!(lt.len(), 2);
        assert!(lt.is_lost(&PacketId::new(o(), 1)));
        assert!(lt.is_lost(&PacketId::new(o(), 2)));
        assert_eq!(lt.expected_for(o()), 4);
    }

    #[test]
    fn late_arrival_clears_entry() {
        let mut lt = LostTable::new(10);
        lt.observe(o(), 3);
        lt.observe(o(), 1);
        assert_eq!(lt.len(), 1);
        assert!(!lt.is_lost(&PacketId::new(o(), 1)));
        // Expected does not regress.
        assert_eq!(lt.expected_for(o()), 4);
    }

    #[test]
    fn recover_removes() {
        let mut lt = LostTable::new(10);
        lt.observe(o(), 4);
        lt.recover(PacketId::new(o(), 2));
        assert_eq!(lt.len(), 2);
        assert!(!lt.is_lost(&PacketId::new(o(), 2)));
        // Recovering twice is harmless.
        lt.recover(PacketId::new(o(), 2));
        assert_eq!(lt.len(), 2);
    }

    #[test]
    fn lost_buffer_is_newest_first() {
        let mut lt = LostTable::new(10);
        lt.observe(o(), 3); // lost 1, 2
        lt.observe(o(), 6); // lost 4, 5
        let buf = lt.lost_buffer(3);
        assert_eq!(
            buf,
            vec![
                PacketId::new(o(), 5),
                PacketId::new(o(), 4),
                PacketId::new(o(), 2)
            ]
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut lt = LostTable::new(3);
        lt.observe(o(), 6); // lost 1..5, capacity 3 keeps {3,4,5}
        assert_eq!(lt.len(), 3);
        assert!(!lt.is_lost(&PacketId::new(o(), 1)));
        assert!(!lt.is_lost(&PacketId::new(o(), 2)));
        assert!(lt.is_lost(&PacketId::new(o(), 5)));
        assert_eq!(lt.overflow_drops(), 2);
    }

    #[test]
    fn multiple_origins_tracked_independently() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut lt = LostTable::new(10);
        lt.observe(a, 2);
        lt.observe(b, 3);
        assert_eq!(lt.expected_for(a), 3);
        assert_eq!(lt.expected_for(b), 4);
        assert_eq!(lt.expected_for(NodeId::new(5)), 1);
        let mut exp = lt.expected_vec();
        exp.sort();
        assert_eq!(exp, vec![(a, 3), (b, 4)]);
        assert_eq!(lt.len(), 3);
    }

    #[test]
    fn duplicate_observe_is_stable() {
        let mut lt = LostTable::new(10);
        lt.observe(o(), 3);
        let before = lt.len();
        lt.observe(o(), 3);
        assert_eq!(lt.len(), before);
        assert_eq!(lt.expected_for(o()), 4);
    }

    proptest! {
        /// Invariant: a packet is never simultaneously "received" (seq <
        /// expected and not in lost) and in the lost set; and the lost
        /// set plus received set exactly covers 1..expected.
        #[test]
        fn prop_lost_set_is_exactly_the_gaps(seqs in prop::collection::vec(1u32..60, 1..60)) {
            let mut lt = LostTable::new(1000);
            let mut received = ag_sim::hash::DetHashSet::default();
            for &s in &seqs {
                lt.observe(o(), s);
                received.insert(s);
            }
            let expected = lt.expected_for(o());
            prop_assert_eq!(expected, seqs.iter().max().unwrap() + 1);
            for s in 1..expected {
                let lost = lt.is_lost(&PacketId::new(o(), s));
                prop_assert_eq!(lost, !received.contains(&s), "seq {}", s);
            }
        }

        /// The table never exceeds its capacity.
        #[test]
        fn prop_capacity_respected(seqs in prop::collection::vec(1u32..500, 1..50), cap in 1usize..20) {
            let mut lt = LostTable::new(cap);
            for &s in &seqs {
                lt.observe(o(), s);
                prop_assert!(lt.len() <= cap);
            }
        }
    }
}
