//! Wire messages.
//!
//! Sizes approximate the draft-05 packet formats; the simulator only uses
//! them for airtime, never for real serialization. The enum is generic
//! over an extension payload `X` so the Anonymous Gossip layer can ride
//! the same channel without MAODV knowing its packet formats.

use ag_net::{Message, NodeId};

use crate::GroupId;

/// RREQ: route request, broadcast-flooded.
///
/// Serves three roles distinguished by flags: unicast route discovery
/// (`join == false`), group join (`join == true`,
/// `repair_hops == None`), and tree repair (`join == true`,
/// `repair_hops == Some(d)` where `d` is the requester's old distance to
/// the group leader — only tree nodes strictly closer may answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RreqPayload {
    /// The requesting node.
    pub origin: NodeId,
    /// Requester's own sequence number.
    pub origin_seq: u32,
    /// Per-origin RREQ identifier (dedupes the flood).
    pub rreq_id: u32,
    /// Unicast target (route discovery) or the group's notional address.
    pub dest: NodeId,
    /// Multicast group being joined, if this is a join/repair RREQ.
    pub group: Option<GroupId>,
    /// Last group/destination sequence number the origin knows.
    pub known_seq: u32,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Remaining TTL.
    pub ttl: u8,
    /// Join flag (multicast).
    pub join: bool,
    /// Repair extension: requester's previous hop-count to the leader.
    pub repair_hops: Option<u8>,
}

/// RREP: route reply, unicast hop-by-hop along the reverse path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrepPayload {
    /// The RREQ origin this reply answers.
    pub origin: NodeId,
    /// Echo of the RREQ id (matches replies to join attempts).
    pub rreq_id: u32,
    /// The replying node.
    pub responder: NodeId,
    /// Unicast destination the reply is about (== responder for joins).
    pub dest: NodeId,
    /// Group, for join replies.
    pub group: Option<GroupId>,
    /// Destination/group sequence number at the responder.
    pub seq: u32,
    /// Hops from the responder (grows as the RREP travels).
    pub hop_count: u8,
    /// Responder's distance to the group leader (join replies).
    pub leader_hops: u8,
    /// Whether the responder is itself a group member (feeds the AG
    /// member cache for free, §4.3).
    pub responder_is_member: bool,
}

/// MACT variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MactKind {
    /// Activate the tree branch toward the sender.
    Join,
    /// Remove the sender from the receiver's next hops.
    Prune,
}

/// MACT: multicast activation, unicast to the chosen next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MactPayload {
    /// The group.
    pub group: GroupId,
    /// Join or prune.
    pub kind: MactKind,
    /// The node whose join attempt this MACT finalizes (keys the pending
    /// state at intermediate nodes as the activation cascades upstream).
    pub origin: NodeId,
    /// Join attempt this MACT finalizes.
    pub rreq_id: u32,
    /// Whether the MACT sender is a group member (initializes the
    /// receiver's `nearest_member` field for this next hop).
    pub sender_is_member: bool,
}

/// GRPH: group hello, originated by the leader every group-hello
/// interval in two forms.
///
/// The **flood** copy (`tree == false`) is rebroadcast network-wide and
/// serves partition/merge detection. The **tree** copy (`tree == true`)
/// is relayed only from a node's upstream tree edge downward; receiving
/// one is proof of a live tree path to the leader, and its absence is
/// how an orphaned subtree learns it must repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrphPayload {
    /// The group.
    pub group: GroupId,
    /// Current leader.
    pub leader: NodeId,
    /// Group sequence number (increments every GRPH).
    pub group_seq: u32,
    /// Hops from the leader so far.
    pub hop_count: u8,
    /// Remaining TTL.
    pub ttl: u8,
    /// `true` for the tree-scoped copy (see above).
    pub tree: bool,
}

/// Multicast data header (payload bytes are virtual — only identity and
/// length exist in the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataHeader {
    /// The group.
    pub group: GroupId,
    /// Originating member.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u32,
    /// Payload length in bytes (the paper uses 64).
    pub payload_len: u16,
    /// Tree hops travelled so far.
    pub hops: u8,
}

/// A unicast extension payload routed hop-by-hop via the AODV route
/// table (gossip replies and cached gossip take this path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedExt<X> {
    /// Original sender.
    pub src: NodeId,
    /// Final destination.
    pub dest: NodeId,
    /// Remaining TTL.
    pub ttl: u8,
    /// Hops travelled so far (feeds the AG member cache's `numhops`).
    pub hops: u8,
    /// The extension payload.
    pub payload: X,
}

/// The MAODV frame set, generic over the extension payload `X`.
#[derive(Debug, Clone, PartialEq)]
pub enum MaodvMsg<X> {
    /// 1-hop neighbour beacon.
    Hello,
    /// Route request flood.
    Rreq(RreqPayload),
    /// Route reply.
    Rrep(RrepPayload),
    /// Multicast tree (de)activation.
    Mact(MactPayload),
    /// Leader's group hello flood.
    Grph(GrphPayload),
    /// Multicast data.
    Data(DataHeader),
    /// `nearest_member` update to a tree neighbour (AG §4.2): distance
    /// from the sender to its nearest member avoiding the receiver.
    NmUpdate {
        /// The group.
        group: GroupId,
        /// The saturating hop distance.
        value: u8,
    },
    /// One-hop extension frame (anonymous gossip propagation step).
    Ext(X),
    /// Routed extension frame (gossip replies, cached gossip).
    Routed(RoutedExt<X>),
}

/// Extension type for bare-MAODV stacks: uninhabited, zero-sized on the
/// wire, never constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoExt {}

impl Message for NoExt {
    fn wire_size(&self) -> usize {
        match *self {}
    }
}

impl<X: Message> Message for MaodvMsg<X> {
    fn wire_size(&self) -> usize {
        match self {
            MaodvMsg::Hello => 12,
            MaodvMsg::Rreq(r) => {
                24 + if r.join { 4 } else { 0 } + if r.repair_hops.is_some() { 4 } else { 0 }
            }
            MaodvMsg::Rrep(_) => 20,
            MaodvMsg::Mact(_) => 16,
            MaodvMsg::Grph(_) => 16,
            MaodvMsg::Data(d) => 12 + d.payload_len as usize,
            MaodvMsg::NmUpdate { .. } => 8,
            MaodvMsg::Ext(x) => 4 + x.wire_size(),
            MaodvMsg::Routed(r) => 16 + r.payload.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Fake(usize);
    impl Message for Fake {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn wire_sizes_are_sane() {
        let hello: MaodvMsg<Fake> = MaodvMsg::Hello;
        assert_eq!(hello.wire_size(), 12);
        let data: MaodvMsg<Fake> = MaodvMsg::Data(DataHeader {
            group: GroupId(0),
            origin: NodeId::new(1),
            seq: 5,
            payload_len: 64,
            hops: 0,
        });
        assert_eq!(data.wire_size(), 76);
        let ext: MaodvMsg<Fake> = MaodvMsg::Ext(Fake(30));
        assert_eq!(ext.wire_size(), 34);
        let routed: MaodvMsg<Fake> = MaodvMsg::Routed(RoutedExt {
            src: NodeId::new(0),
            dest: NodeId::new(1),
            ttl: 8,
            hops: 0,
            payload: Fake(30),
        });
        assert_eq!(routed.wire_size(), 46);
    }

    #[test]
    fn rreq_extensions_add_bytes() {
        let base = RreqPayload {
            origin: NodeId::new(0),
            origin_seq: 1,
            rreq_id: 1,
            dest: NodeId::new(5),
            group: None,
            known_seq: 0,
            hop_count: 0,
            ttl: 10,
            join: false,
            repair_hops: None,
        };
        let plain: MaodvMsg<Fake> = MaodvMsg::Rreq(base);
        let join: MaodvMsg<Fake> = MaodvMsg::Rreq(RreqPayload { join: true, ..base });
        let repair: MaodvMsg<Fake> = MaodvMsg::Rreq(RreqPayload {
            join: true,
            repair_hops: Some(3),
            ..base
        });
        assert!(plain.wire_size() < join.wire_size());
        assert!(join.wire_size() < repair.wire_size());
    }
}
