//! Offline API-compatible stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim (see `vendor/README.md`) covering the subset
//! the unit tests use: the [`proptest!`] macro over `arg in strategy`
//! parameters, integer/float range strategies,
//! [`collection::vec`] and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike the real proptest there is **no shrinking and no persistent
//! failure file**: each property runs [`num_cases`] cases ([`NUM_CASES`]
//! unless the `AG_PROPTEST_CASES` environment variable overrides it)
//! drawn from a generator seeded by the test's name, so failures
//! reproduce exactly on re-run but are reported with the raw
//! (unshrunk) inputs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Default number of generated cases per property.
pub const NUM_CASES: u32 = 256;

/// Number of cases each property runs: [`NUM_CASES`] unless the
/// `AG_PROPTEST_CASES` environment variable overrides it (the real
/// crate's `PROPTEST_CASES`, namespaced to this workspace). CI's
/// nightly depth job sets it to a multiple of the default; a developer
/// can set it to something small for a quick smoke pass. Invalid or
/// zero values fall back to the default.
pub fn num_cases() -> u32 {
    match std::env::var("AG_PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => NUM_CASES,
        },
        Err(_) => NUM_CASES,
    }
}

/// Deterministic case generator, seeded from the property's name so
/// every run of a given test replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an arbitrary seed string.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, as a stable cross-run seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span >= 1);
        ((self.next_u64() as u128) * span) >> 64
    }
}

/// A source of random values of one type (mirrors `proptest::strategy::Strategy`,
/// minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.next_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open, like
    /// the real API's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident | $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (S0 | 0)
    (S0 | 0, S1 | 1)
    (S0 | 0, S1 | 1, S2 | 2)
    (S0 | 0, S1 | 1, S2 | 2, S3 | 3)
}

/// Option strategies (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` half the time and `Some` of the inner
    /// strategy's value otherwise (the real API's default weighting).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option`s of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Mirror of the real crate's `proptest::prelude::prop` re-export path.
pub mod prop {
    pub use crate::{collection, option};
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a property condition (panics instead of the real crate's
/// error-return, which makes no observable difference without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two property values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`num_cases`] generated cases
/// ([`NUM_CASES`] by default, `AG_PROPTEST_CASES` to override).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut case_rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..$crate::num_cases() {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut case_rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Integer range strategies respect their bounds.
        #[test]
        fn int_ranges_in_bounds(x in 3u32..17, y in 0usize..5, z in -4i64..=4) {
            assert!((3..17).contains(&x));
            assert!(y < 5);
            prop_assert!((-4..=4).contains(&z));
        }

        /// Float ranges respect their bounds.
        #[test]
        fn float_ranges_in_bounds(f in -1e3f64..1e3) {
            prop_assert!((-1e3..1e3).contains(&f));
        }

        /// Vec strategy honours element and size ranges.
        #[test]
        fn vecs_in_bounds(xs in prop::collection::vec(0u16..50, 1..200)) {
            prop_assert!(!xs.is_empty() && xs.len() < 200);
            prop_assert_eq!(xs.iter().filter(|&&v| v >= 50).count(), 0);
        }

        /// Tuple strategies generate each component from its own
        /// strategy.
        #[test]
        fn tuples_in_bounds(pair in (1u32..5, 10.0f64..20.0)) {
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((10.0..20.0).contains(&pair.1));
        }

        /// Option strategies produce both variants, `Some` in bounds.
        #[test]
        fn options_in_bounds(o in prop::option::of(3u8..9)) {
            if let Some(v) = o {
                prop_assert!((3..9).contains(&v));
            }
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = crate::TestRng::from_name("option_mix");
        let strat = crate::option::of(0u8..2);
        let draws: Vec<Option<u8>> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn case_count_defaults_and_rejects_garbage() {
        // The suite does not set the env var, so the default applies;
        // parse failures and zero must also fall back rather than
        // silently running zero cases.
        if std::env::var_os("AG_PROPTEST_CASES").is_none() {
            assert_eq!(crate::num_cases(), crate::NUM_CASES);
        } else {
            assert!(crate::num_cases() > 0);
        }
    }
}
