//! must-pass: StreamKind-keyed construction, and test-local seeding
//! (unit tests probe components with throwaway fixed seeds).

use ag_sim::rng::{SeedSplitter, StreamKind};

pub fn keyed(seed: u64, node: u64) -> impl Sized {
    SeedSplitter::new(seed).stream(StreamKind::Node, node)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_seed_directly() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let _rng = SmallRng::seed_from_u64(1);
    }
}
