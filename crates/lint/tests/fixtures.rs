//! The fixture corpus: every rule has a must-fire case (proving the
//! rule still detects the bug shape it was built for — delete or
//! weaken a rule and these tests fail) and a must-pass case (proving
//! the compliant idiom, waivers, string/comment mentions and test-code
//! exemptions do not fire).
//!
//! Fixtures are plain `.rs` files under `tests/fixtures/`; they are
//! scanner *input*, never compiled, and the workspace walker skips the
//! directory so their deliberate violations cannot fail the self-run.

use std::path::Path;

use ag_lint::config::Config;
use ag_lint::rules::{scan_file, FileScan, Rule};

/// Scans one fixture under the wide-open fixture config.
fn scan(name: &str) -> FileScan {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    scan_file(name, &src, &Config::for_fixtures())
}

/// Lines at which `rule` fired, sorted.
fn lines_of(scan: &FileScan, rule: Rule) -> Vec<u32> {
    let mut lines: Vec<u32> = scan
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    lines.sort_unstable();
    lines
}

/// Asserts the fixture fired `rule` at exactly `expected` lines and
/// fired nothing else.
fn assert_fires(name: &str, rule: Rule, expected: &[u32]) {
    let scan = scan(name);
    assert_eq!(
        lines_of(&scan, rule),
        expected,
        "{name}: wrong {} findings; all findings: {:#?}",
        rule.name(),
        scan.findings
    );
    let other: Vec<_> = scan.findings.iter().filter(|f| f.rule != rule).collect();
    assert!(
        other.is_empty(),
        "{name}: unexpected extra findings: {other:#?}"
    );
}

/// Asserts the fixture is completely clean.
fn assert_passes(name: &str) {
    let scan = scan(name);
    assert!(
        scan.findings.is_empty(),
        "{name}: expected clean, got: {:#?}",
        scan.findings
    );
}

#[test]
fn det_hash_must_fire() {
    // Import, group import, both default-hasher ctors, the std
    // BinaryHeap path and RandomState; BTreeMap stays legal.
    assert_fires("det_hash_fire.rs", Rule::DetHash, &[3, 4, 7, 9, 10, 11]);
}

#[test]
fn det_hash_must_pass() {
    assert_passes("det_hash_pass.rs");
}

#[test]
fn det_hash_pass_exercises_waivers() {
    // The pass fixture's oracle shapes are suppressed by real waivers,
    // not by the rule failing to look: all three must be active.
    let scan = scan("det_hash_pass.rs");
    assert_eq!(scan.waivers_present, 3);
    assert_eq!(scan.waivers_used, 3);
}

#[test]
fn pr7_random_state_regression_shape_is_caught() {
    // The import line plus each default-hasher constructor of the
    // protocol-table shape PR 7 had to hunt down at runtime.
    assert_fires("pr7_random_state.rs", Rule::DetHash, &[10, 20, 21]);
}

#[test]
fn wall_clock_must_fire() {
    // Instant::now, SystemTime::now, and — in test code, which is NOT
    // exempt for this rule — Instant::now and thread::sleep.
    assert_fires("wall_clock_fire.rs", Rule::WallClock, &[7, 8, 16, 17]);
}

#[test]
fn wall_clock_must_pass() {
    assert_passes("wall_clock_pass.rs");
}

#[test]
fn stream_discipline_must_fire() {
    // Ad-hoc SmallRng::seed_from_u64, from_entropy, thread_rng.
    assert_fires(
        "stream_discipline_fire.rs",
        Rule::StreamDiscipline,
        &[7, 11, 12],
    );
}

#[test]
fn stream_discipline_must_pass() {
    assert_passes("stream_discipline_pass.rs");
}

#[test]
fn hot_path_alloc_must_fire() {
    // Line 1 is the manifest-rot finding (`renamed_hot_fn` is in the
    // fixture manifest but not the file); 6/12/14 are Vec::new,
    // format!/.collect and .to_vec inside `emit_receivers`. The
    // allocating cold path must not fire.
    assert_fires(
        "hot_path_alloc_fire.rs",
        Rule::HotPathAlloc,
        &[1, 6, 12, 14],
    );
}

#[test]
fn hot_path_alloc_must_pass() {
    assert_passes("hot_path_alloc_pass.rs");
}

#[test]
fn ordered_iteration_must_fire() {
    // Hash-order `for … in map.iter()` and `.keys()` feeding a render.
    assert_fires(
        "ordered_iteration_fire.rs",
        Rule::OrderedIteration,
        &[7, 10],
    );
}

#[test]
fn ordered_iteration_must_pass() {
    assert_passes("ordered_iteration_pass.rs");
}

#[test]
fn waiver_reason_must_fire() {
    // Missing reason, empty reason, unknown rule, waiving the
    // meta-rule, and a non-allow form.
    assert_fires(
        "waiver_reason_fire.rs",
        Rule::WaiverReason,
        &[4, 7, 10, 13, 16],
    );
}

#[test]
fn waiver_reason_must_pass() {
    let scan = scan("waiver_reason_pass.rs");
    assert!(scan.findings.is_empty(), "findings: {:#?}", scan.findings);
    assert_eq!(scan.waivers_present, 1);
    assert_eq!(
        scan.waivers_used, 1,
        "the waiver must actually suppress a finding"
    );
}

#[test]
fn malformed_waivers_never_suppress() {
    // waiver_reason_fire's `allow(det-hash)` waivers are malformed; a
    // det-hash violation right after one must still fire.
    let src = "// ag-lint: allow(det-hash)\nuse std::collections::HashMap;\n";
    let scan = scan_file("inline.rs", src, &Config::for_fixtures());
    assert_eq!(lines_of(&scan, Rule::DetHash), vec![2]);
    assert_eq!(lines_of(&scan, Rule::WaiverReason), vec![1]);
}

#[test]
fn every_rule_has_a_must_fire_fixture() {
    // Registry completeness: adding a rule without a fixture pair is
    // itself a failure. (waiver-reason fires on malformed waivers.)
    for rule in ag_lint::rules::ALL_RULES {
        let file = format!("{}_fire.rs", rule.name().replace('-', "_"));
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(&file);
        assert!(path.is_file(), "missing must-fire fixture {file}");
        let pass = format!("{}_pass.rs", rule.name().replace('-', "_"));
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(&pass);
        assert!(path.is_file(), "missing must-pass fixture {pass}");
    }
}
