//! Rule scopes, allowlists and the hot-path manifest.
//!
//! This module is the *policy* half of the lint: which files each rule
//! applies to, which files are documented exceptions, and which
//! functions form the engine's allocation-free hot path. Everything
//! here is data — the scanning machinery in [`crate::rules`] never
//! hard-codes a path — so extending a rule's scope, allowlisting a new
//! probe file or growing the hot-path manifest is a one-line change
//! reviewed next to its justification. `docs/LINTS.md` documents every
//! entry; keep the two in sync.
//!
//! Paths are workspace-relative with `/` separators. A "prefix" matches
//! a file if the file's path starts with it, so `crates/bench/` covers
//! the whole crate and `crates/sim/src/rng.rs` exactly one file.

/// Scope and exception tables for one lint run.
///
/// [`Config::workspace`] is the real policy; tests build narrow configs
/// (see [`Config::for_fixtures`]) to point rules at fixture files.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes the **det-hash** rule applies to: the simulation
    /// crates whose map iteration order and allocation pattern feed the
    /// deterministic results. Test regions are exempt.
    pub det_hash_scope: Vec<String>,
    /// det-hash exceptions: the module that *defines* the deterministic
    /// hasher necessarily names the std types it wraps.
    pub det_hash_exempt: Vec<String>,
    /// **wall-clock** exceptions: benchmarking code measures wall time
    /// by design, and the `#[ignore]`d sizing probes time state-space
    /// exploration. Everything else — test regions included — must not
    /// read the host clock.
    pub wall_clock_exempt: Vec<String>,
    /// **stream-discipline** exceptions: the `StreamKind` helper module
    /// itself, and the bench crate whose synthetic workloads seed
    /// throwaway RNGs outside any simulation. Test regions are exempt.
    pub stream_discipline_exempt: Vec<String>,
    /// Path prefixes the **ordered-iteration** rule applies to: the
    /// modules that render reports, figures and golden artifacts, where
    /// hash-order iteration would leak into committed bytes.
    pub ordered_iteration_scope: Vec<String>,
    /// The **hot-path-alloc** manifest: `(file, functions)` pairs naming
    /// the steady-state functions that must stay allocation-free. The
    /// static complement of the runtime `alloc-count` gate: the gate
    /// proves zero allocations happen, this proves none are written.
    /// A manifest entry whose function disappears is itself a finding,
    /// so renames cannot silently shrink coverage.
    pub hot_path_manifest: Vec<(String, Vec<String>)>,
}

impl Config {
    /// The workspace policy. Every entry is documented in
    /// `docs/LINTS.md`; add new exceptions there first.
    pub fn workspace() -> Config {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        Config {
            det_hash_scope: s(&[
                "crates/sim/src/",
                "crates/net/src/",
                "crates/core/src/",
                "crates/maodv/src/",
                "crates/odmrp/src/",
                "crates/harness/src/",
                "src/",
            ]),
            det_hash_exempt: s(&[
                // Defines FastHasher and the DetHashMap/DetHashSet
                // aliases; must name std::collections::HashMap to wrap it.
                "crates/sim/src/hash.rs",
            ]),
            wall_clock_exempt: s(&[
                // Benchmarks measure wall time; that is their job.
                "crates/bench/",
                // #[ignore]d sizing probes that time BFS exploration;
                // run by hand, never by `cargo test -q`.
                "crates/check/tests/probe.rs",
            ]),
            stream_discipline_exempt: s(&[
                // The StreamKind-keyed construction helpers themselves.
                "crates/sim/src/rng.rs",
                // Synthetic bench workloads: fixed-seed throwaway RNGs
                // feeding queue/engine stress patterns, not simulations.
                "crates/bench/",
            ]),
            ordered_iteration_scope: s(&[
                "crates/harness/src/report.rs",
                "crates/harness/src/figures.rs",
                "crates/harness/src/matrix.rs",
                "crates/harness/src/result.rs",
                "crates/harness/src/bin/",
                "examples/regen_golden.rs",
            ]),
            hot_path_manifest: vec![
                (
                    // Receiver emission: everything a TxEnd touches —
                    // including the tile-sharded precompute layer (the
                    // worker body `precompute_one`, the pass that farms
                    // it out, and the stamp-checked consumption), whose
                    // buffers all come from the lane/spare pools.
                    "crates/net/src/engine.rs".to_string(),
                    s(&[
                        "enqueue_frame",
                        "arm_attempt",
                        "arm_attempt_after",
                        "handle_attempt",
                        "start_tx",
                        "channel_receives",
                        "uncorrupted_receivers",
                        "finish_head_frame",
                        "handle_tx_end",
                        "precompute_one",
                        "precompute_pass",
                        "maybe_precompute",
                        "take_precomp",
                    ]),
                ),
                (
                    // Spatial-index boundary exchange: the queries and
                    // stamp reads both the serial path and the tile
                    // workers issue per transmission.
                    "crates/net/src/grid.rs".to_string(),
                    s(&[
                        "disk_stamp",
                        "overlap_stamp",
                        "column_of",
                        "note_insert",
                        "any_overlapping",
                        "collect_overlapping",
                    ]),
                ),
                (
                    // Calendar queue steady state: push, pop, min scan.
                    "crates/sim/src/event.rs".to_string(),
                    s(&["schedule", "pop", "peek_time", "recompute_min"]),
                ),
            ],
        }
    }

    /// A maximally-wide config for fixture tests: every rule is in
    /// scope for every file, nothing is exempt, and the hot-path
    /// manifest covers the fixture's `emit_receivers` function.
    pub fn for_fixtures() -> Config {
        Config {
            det_hash_scope: vec![String::new()],
            det_hash_exempt: vec![],
            wall_clock_exempt: vec![],
            stream_discipline_exempt: vec![],
            ordered_iteration_scope: vec![String::new()],
            hot_path_manifest: vec![
                (
                    "hot_path_alloc_fire.rs".to_string(),
                    vec!["emit_receivers".to_string(), "renamed_hot_fn".to_string()],
                ),
                (
                    "hot_path_alloc_pass.rs".to_string(),
                    vec!["emit_receivers".to_string()],
                ),
            ],
        }
    }
}

/// True if `path` starts with any prefix in `prefixes`.
pub fn matches_any(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}
