//! The event queue at the heart of the kernel.
//!
//! Events are ordered by timestamp; ties are broken by insertion order
//! (FIFO). Deterministic tie-breaking matters: protocol stacks frequently
//! schedule several events for the *same* instant (e.g. every receiver of a
//! broadcast), and a run must be a pure function of the scenario and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A single scheduled entry: an event of type `E` due at `time`.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone insertion counter; the FIFO tie-breaker.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use ag_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c"); // same instant as "b": FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever popped from this queue.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn counts_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.popped_count(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u8);
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and for
        /// equal times a strictly increasing insertion sequence.
        #[test]
        fn prop_pop_order_is_total(times in prop::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Everything scheduled comes back exactly once.
        #[test]
        fn prop_no_loss_no_duplication(times in prop::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
