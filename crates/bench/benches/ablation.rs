//! Design-choice ablations (DESIGN.md §2): what each piece of Anonymous
//! Gossip buys. Criterion reports wall-clock; the interesting output is
//! the *delivery* printed to stderr once per configuration, comparing:
//!
//! * bare MAODV vs. full gossip (the paper's headline);
//! * anonymous-only vs. cached-only vs. the 50/50 mix (§4.3);
//! * locality-weighted vs. uniform walk steps (§4.2);
//! * gossip with a disabled member cache fallback (cache capacity 1).

use std::time::Duration;

use ag_bench::bench_scenario;
use ag_harness::{run_gossip, run_maodv, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn describe(label: &str, sc: &Scenario, gossip: bool) {
    let (mean, min, max) = {
        let r = if gossip {
            run_gossip(sc, 0)
        } else {
            run_maodv(sc, 0)
        };
        let s = r.received_summary();
        (s.mean(), s.min(), s.max())
    };
    eprintln!(
        "[ablation] {label:>24}: delivered {mean:>6.1} [{min:.0}, {max:.0}] of {}",
        sc.packets_sent()
    );
}

fn ablation(c: &mut Criterion) {
    // A stressed configuration so recovery is visible.
    let base = bench_scenario(55.0, 2.0);

    describe("bare MAODV", &base, false);
    c.bench_function("ablation_bare_maodv", |b| {
        b.iter(|| black_box(run_maodv(&base, 0).delivery_ratio()));
    });

    describe("full gossip (p_anon=0.5)", &base, true);
    c.bench_function("ablation_full_gossip", |b| {
        b.iter(|| black_box(run_gossip(&base, 0).delivery_ratio()));
    });

    let mut anon_only = base.clone();
    anon_only.ag.p_anon = 1.0;
    describe("anonymous only", &anon_only, true);
    c.bench_function("ablation_anonymous_only", |b| {
        b.iter(|| black_box(run_gossip(&anon_only, 0).delivery_ratio()));
    });

    let mut cached_only = base.clone();
    cached_only.ag.p_anon = 0.0;
    describe("cached only", &cached_only, true);
    c.bench_function("ablation_cached_only", |b| {
        b.iter(|| black_box(run_gossip(&cached_only, 0).delivery_ratio()));
    });

    let mut no_locality = base.clone();
    no_locality.ag.locality_weighting = false;
    describe("no locality weighting", &no_locality, true);
    c.bench_function("ablation_no_locality", |b| {
        b.iter(|| black_box(run_gossip(&no_locality, 0).delivery_ratio()));
    });

    let mut tiny_cache = base.clone();
    tiny_cache.ag.member_cache_capacity = 1;
    describe("member cache of 1", &tiny_cache, true);
    c.bench_function("ablation_tiny_member_cache", |b| {
        b.iter(|| black_box(run_gossip(&tiny_cache, 0).delivery_ratio()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(1));
    targets = ablation
}
criterion_main!(benches);
