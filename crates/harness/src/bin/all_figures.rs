//! Regenerates every figure of the paper in sequence.
//!
//! Seeds of each sweep point run on a worker pool sized by `AG_THREADS`
//! (default: all cores); output is identical for every thread count.

use ag_harness::{figures, report, Parallelism};

fn main() {
    let seeds = report::env_seeds();
    let secs = report::env_sim_secs();
    eprintln!(
        "{} seeds/point, {} s simulated, {} worker thread(s)",
        seeds,
        secs,
        Parallelism::auto().threads()
    );
    for spec in figures::all_line_figures() {
        let spec = spec.with_duration_secs(secs);
        eprintln!("running {}...", spec.id);
        let points = spec.run(seeds);
        println!("{}", report::render_table(spec.title, spec.xlabel, &points));
    }
    eprintln!("running fig8...");
    let series = figures::fig8(seeds, secs);
    println!("{}", report::render_goodput(&series));
}
