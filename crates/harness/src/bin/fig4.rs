//! Regenerates the paper's Figure 4. `AG_SEEDS` / `AG_SIM_SECS` scale the sweep.

use ag_harness::{figures, report};

fn main() {
    let seeds = report::env_seeds();
    let secs = report::env_sim_secs();
    let spec = figures::fig4().with_duration_secs(secs);
    eprintln!(
        "running {} ({} points x {} seeds x 2 protocols, {} s simulated)...",
        spec.id,
        spec.xs.len(),
        seeds,
        secs
    );
    let points = spec.run(seeds);
    println!("{}", report::render_table(spec.title, spec.xlabel, &points));
    println!("{}", report::render_csv(&points));
}
