//! Temporal properties over an explored state graph.
//!
//! Finite-trace semantics with loop detection: a *behavior* of the
//! machine is a maximal path in the graph — one that ends in a terminal
//! (quiescent) state or enters a cycle. `always p` demands `p` in every
//! reachable state; `eventually p` demands every behavior hit a
//! `p`-state; `leads_to p q` demands every behavior passing through a
//! `p`-state subsequently (or simultaneously) hit a `q`-state.
//! Violations come back as a concrete action trace from the initial
//! state, with the cycle marked for lasso-shaped counterexamples.

use crate::explore::Exploration;
use crate::machine::Machine;

/// A concrete violating behavior.
#[derive(Debug, Clone)]
pub struct Counterexample<A> {
    /// Actions from the initial state to the violation. For `always`,
    /// the final state violates; for `eventually`/`leads_to` the whole
    /// suffix avoids the goal.
    pub actions: Vec<A>,
    /// `Some(i)` marks a lasso: the state reached after `actions[..i]`
    /// recurs after the full sequence (the suffix repeats forever).
    /// `None` means the trace ends in a terminal or violating state.
    pub loop_start: Option<usize>,
}

/// Outcome of checking one property.
#[derive(Debug, Clone)]
pub enum Verdict<A> {
    /// The property holds on every behavior.
    Holds,
    /// The property fails; here is a concrete witness (shortest-prefix
    /// for `always`, BFS-prefix + DFS suffix otherwise).
    Violated(Counterexample<A>),
}

impl<A> Verdict<A> {
    /// `true` if the property held.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// The counterexample, if violated.
    pub fn counterexample(&self) -> Option<&Counterexample<A>> {
        match self {
            Verdict::Holds => None,
            Verdict::Violated(c) => Some(c),
        }
    }
}

/// `AG p`: `p` holds in every reachable state. The counterexample is a
/// shortest path (BFS parent chain) to the first discovered violation.
pub fn always<M: Machine, O>(ex: &Exploration<M, O>, p: impl Fn(&O) -> bool) -> Verdict<M::Action> {
    match ex.obs.iter().position(|o| !p(o)) {
        None => Verdict::Holds,
        Some(bad) => Verdict::Violated(Counterexample {
            actions: ex.path_to(bad),
            loop_start: None,
        }),
    }
}

/// `∃` a reachable state satisfying `p` (non-vacuity helper); returns
/// its id.
pub fn exists<M: Machine, O>(ex: &Exploration<M, O>, p: impl Fn(&O) -> bool) -> Option<usize> {
    ex.obs.iter().position(p)
}

/// `AF q` from the initial state: every behavior eventually reaches a
/// `q`-state.
pub fn eventually<M: Machine, O>(
    ex: &Exploration<M, O>,
    q: impl Fn(&O) -> bool,
) -> Verdict<M::Action> {
    let q_holds: Vec<bool> = ex.obs.iter().map(&q).collect();
    if q_holds[0] {
        return Verdict::Holds;
    }
    match find_avoiding_behavior(ex, &q_holds, 0) {
        None => Verdict::Holds,
        Some(cex) => Verdict::Violated(cex),
    }
}

/// `AG (p → AF q)`: every behavior through a `p`-state later (or then)
/// reaches a `q`-state.
pub fn leads_to<M: Machine, O>(
    ex: &Exploration<M, O>,
    p: impl Fn(&O) -> bool,
    q: impl Fn(&O) -> bool,
) -> Verdict<M::Action> {
    let q_holds: Vec<bool> = ex.obs.iter().map(&q).collect();
    let bad = avoiding_states(ex, &q_holds);
    for (s, o) in ex.obs.iter().enumerate() {
        if p(o) && !q_holds[s] && bad[s] {
            let cex = find_avoiding_behavior(ex, &q_holds, s)
                .expect("a bad state has an avoiding behavior by construction");
            return Verdict::Violated(cex);
        }
    }
    Verdict::Holds
}

/// Marks every state from which some maximal path avoids `q` states
/// entirely. Linear time: a state avoids `q` forever iff, inside the
/// `¬q` subgraph, it reaches a cycle (found by peeling zero-out-degree
/// states — whatever survives feeds a cycle) or reaches a terminal
/// state of the full graph.
fn avoiding_states<M: Machine, O>(ex: &Exploration<M, O>, q_holds: &[bool]) -> Vec<bool> {
    let n = ex.obs.len();
    // Reverse adjacency and out-degrees of the ¬q subgraph.
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut outdeg = vec![0u32; n];
    for s in 0..n {
        if q_holds[s] {
            continue;
        }
        for (_, t) in &ex.edges[s] {
            let t = *t as usize;
            if !q_holds[t] {
                outdeg[s] += 1;
                rev[t].push(s as u32);
            }
        }
    }
    // Peel ¬q states with no ¬q successors; survivors lie on or feed a
    // ¬q cycle.
    let mut queue: Vec<usize> = (0..n).filter(|&s| !q_holds[s] && outdeg[s] == 0).collect();
    let mut peeled = vec![false; n];
    for &s in &queue {
        peeled[s] = true;
    }
    let mut qi = 0;
    while qi < queue.len() {
        let s = queue[qi];
        qi += 1;
        for &pred in &rev[s] {
            let pred = pred as usize;
            outdeg[pred] -= 1;
            if outdeg[pred] == 0 && !peeled[pred] {
                peeled[pred] = true;
                queue.push(pred);
            }
        }
    }
    let mut bad: Vec<bool> = (0..n).map(|s| !q_holds[s] && !peeled[s]).collect();
    // Finite avoiders: backward closure (inside ¬q) of ¬q terminals.
    let mut stack: Vec<usize> = (0..n)
        .filter(|&s| !q_holds[s] && ex.edges[s].is_empty() && !bad[s])
        .collect();
    for &s in &stack {
        bad[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &pred in &rev[s] {
            let pred = pred as usize;
            if !bad[pred] {
                bad[pred] = true;
                stack.push(pred);
            }
        }
    }
    bad
}

/// Searches for a maximal path starting at `from` that never touches a
/// `q`-state: either it reaches a terminal state or it closes a cycle,
/// both entirely within `¬q` states. Returns the full counterexample
/// trace (initial → `from` via BFS parents, then the avoiding path).
fn find_avoiding_behavior<M: Machine, O>(
    ex: &Exploration<M, O>,
    q_holds: &[bool],
    from: usize,
) -> Option<Counterexample<M::Action>> {
    debug_assert!(!q_holds[from]);
    // Iterative DFS over the ¬q subgraph. Colors: 0 unvisited, 1 on
    // stack, 2 done. A terminal hit or a back edge is a violation; the
    // DFS stack *is* the avoiding path.
    let n = ex.obs.len();
    let mut color = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = vec![(from, 0)];
    color[from] = 1;
    while let Some(&(s, ei)) = stack.last() {
        if ex.edges[s].is_empty() {
            return Some(build_cex(ex, &stack, None));
        }
        if ei >= ex.edges[s].len() {
            color[s] = 2;
            stack.pop();
            continue;
        }
        stack.last_mut().expect("stack non-empty").1 += 1;
        let t = ex.edges[s][ei].1 as usize;
        if q_holds[t] {
            continue;
        }
        match color[t] {
            1 => {
                let loop_pos = stack
                    .iter()
                    .position(|&(x, _)| x == t)
                    .expect("grey state is on the stack");
                return Some(build_cex_with_edge(ex, &stack, s, t, loop_pos));
            }
            0 => {
                color[t] = 1;
                stack.push((t, 0));
            }
            _ => {}
        }
    }
    None
}

/// Assembles initial→`stack[0]` (BFS parents) followed by the DFS stack
/// path. `loop_from = Some(i)` marks the lasso entry at stack index
/// `i`.
fn build_cex<M: Machine, O>(
    ex: &Exploration<M, O>,
    stack: &[(usize, usize)],
    loop_from: Option<usize>,
) -> Counterexample<M::Action> {
    let mut actions = ex.path_to(stack[0].0);
    let prefix = actions.len();
    for w in stack.windows(2) {
        let (s, _) = w[0];
        let (t, _) = w[1];
        let (a, _) = ex.edges[s]
            .iter()
            .find(|(_, to)| *to as usize == t)
            .expect("consecutive stack entries are connected");
        actions.push(a.clone());
    }
    Counterexample {
        actions,
        loop_start: loop_from.map(|i| prefix + i),
    }
}

/// Like [`build_cex`] but appends the closing back edge `s → t`, where
/// `t` sits at `loop_pos` on the stack.
fn build_cex_with_edge<M: Machine, O>(
    ex: &Exploration<M, O>,
    stack: &[(usize, usize)],
    s: usize,
    t: usize,
    loop_pos: usize,
) -> Counterexample<M::Action> {
    let mut cex = build_cex(ex, stack, Some(loop_pos));
    let (a, _) = ex.edges[s]
        .iter()
        .find(|(_, to)| *to as usize == t)
        .expect("back edge exists");
    cex.actions.push(a.clone());
    cex
}

/// Renders a counterexample as a numbered action/state trace by
/// replaying it through the machine. `describe` summarizes one concrete
/// state per line (keep it short; it runs once per step).
pub fn render_counterexample<M: Machine, O>(
    machine: &M,
    ex: &Exploration<M, O>,
    cex: &Counterexample<M::Action>,
    describe: impl Fn(&M::State) -> String,
) -> String {
    use std::fmt::Write as _;
    let states = ex.replay_path(machine, &cex.actions);
    let mut out = String::new();
    let _ = writeln!(out, "counterexample ({} steps):", cex.actions.len());
    let _ = writeln!(out, "  #0 [initial] {}", describe(&states[0]));
    for (i, (a, s)) in cex.actions.iter().zip(states.iter().skip(1)).enumerate() {
        let marker = match cex.loop_start {
            Some(l) if l == i + 1 => " <- loop entry",
            _ => "",
        };
        let _ = writeln!(out, "  #{} {:?} -> {}{}", i + 1, a, describe(s), marker);
    }
    if cex.loop_start.is_some() {
        let _ = writeln!(out, "  (suffix from loop entry repeats forever)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machine::Machine;

    /// 0 →a→ 1 →a→ 2 (terminal); 1 →b→ 1 (self loop).
    struct Loopy;
    impl Machine for Loopy {
        type State = u8;
        type Action = char;
        fn initial(&self) -> u8 {
            0
        }
        fn successors(&self, s: &u8) -> Vec<(char, u8)> {
            match s {
                0 => vec![('a', 1)],
                1 => vec![('a', 2), ('b', 1)],
                _ => vec![],
            }
        }
        fn step(&self, s: &u8, a: &char) -> u8 {
            self.successors(s)
                .into_iter()
                .find(|(x, _)| x == a)
                .unwrap()
                .1
        }
    }

    #[test]
    fn always_finds_shortest_violation() {
        let ex = explore(&Loopy, Limits::default(), |s| *s);
        assert!(always(&ex, |s| *s < 3).holds());
        let v = always(&ex, |s| *s != 2);
        let cex = v.counterexample().unwrap();
        assert_eq!(cex.actions, vec!['a', 'a']);
        assert!(cex.loop_start.is_none());
    }

    #[test]
    fn eventually_detects_lasso() {
        let ex = explore(&Loopy, Limits::default(), |s| *s);
        // Not every behavior reaches 2: looping b forever avoids it.
        let v = eventually(&ex, |s| *s == 2);
        let cex = v.counterexample().unwrap();
        assert!(cex.loop_start.is_some(), "must be a lasso");
        // But every behavior reaches 1 (the only choice from 0).
        assert!(eventually(&ex, |s| *s == 1).holds());
    }

    #[test]
    fn leads_to_and_exists() {
        let ex = explore(&Loopy, Limits::default(), |s| *s);
        assert!(leads_to(&ex, |s| *s == 2, |s| *s == 2).holds());
        assert!(!leads_to(&ex, |s| *s == 1, |s| *s == 2).holds());
        assert_eq!(exists(&ex, |s| *s == 2), Some(2));
        assert_eq!(exists(&ex, |s| *s == 9), None);
    }

    #[test]
    fn leads_to_holds_on_terminal_goal() {
        // Every behavior through 0 reaches 1 (only edge), so 0 ~> 1.
        let ex = explore(&Loopy, Limits::default(), |s| *s);
        assert!(leads_to(&ex, |s| *s == 0, |s| *s == 1).holds());
    }

    #[test]
    fn render_replays_the_trace() {
        let ex = explore(&Loopy, Limits::default(), |s| *s);
        let v = always(&ex, |s| *s != 2);
        let cex = v.counterexample().unwrap();
        let text = render_counterexample(&Loopy, &ex, cex, |s| format!("state={s}"));
        assert!(text.contains("#2"));
        assert!(text.contains("state=2"));
    }
}
