//! Uniform-grid spatial indexes for the network engine's hot path.
//!
//! The engine answers two geometric questions constantly:
//!
//! 1. *Who can hear a transmission?* — every `TxEnd` needs the set of
//!    nodes within the unit-disk radius of the sender.
//! 2. *Is the medium busy / is this reception corrupted?* — every MAC
//!    attempt and every delivery needs the transmissions audible at a
//!    point.
//!
//! Answering either with a linear scan costs `O(N)` per query, which is
//! fine at the paper's 40 nodes and hopeless at city scale. This module
//! provides two uniform grids that cut both to `O(local density)`:
//!
//! * [`NodeGrid`] indexes **nodes** by the cells their current mobility
//!   leg can touch.
//! * [`AirIndex`] owns every transmission record (live and recently
//!   finished), keyed by id for `O(1)` `TxEnd` lookup, and indexes them
//!   by the sender's (fixed) cell.
//!
//! # Cell sizing
//!
//! Both grids use a cell size equal to the radio range `R`. A disk query
//! of radius `R` then touches at most a 3×3 block of cells (plus a
//! one-cell fringe for the safety pad below), independent of field size,
//! while cells stay small enough that candidate lists track local
//! density rather than global population.
//!
//! # Rebucket-on-mobility-event strategy
//!
//! Node positions change *continuously* during a movement leg, but the
//! engine only touches the index at *events*. The grid buckets each
//! node under every cell a **segment of its current leg** touches
//! (dilated by a small pad, see below):
//!
//! * A pausing (or parked) node covers the single cell of its point.
//! * A moving node covers the sub-segment it will traverse over the
//!   next ~half cell of travel; the engine schedules a grid-refresh
//!   event at the window's end to slide it forward. Random-waypoint
//!   legs can span the whole field, so bucketing entire legs would put
//!   most nodes in most query results — the window keeps each node in
//!   one or two cells at `O(leg length / R)` refresh events per leg,
//!   the same order as the mobility transitions themselves.
//!
//! Rebuckets therefore happen only at mobility events: leg transitions
//! and the window refreshes derived from them. Grid-refresh events
//! mutate nothing but the index — no RNG draws, no protocol state — so
//! enabling the index cannot perturb the simulation. At any instant a
//! node's true position lies on its bucketed segment, so its true cell
//! is always one of its bucket cells: queries are *conservative*, and
//! the engine runs the exact unit-disk distance test on every
//! candidate — a superset of candidates never changes results, only
//! costs.
//!
//! # Exactness and the safety pad
//!
//! Interpolated positions (`from + (to − from)·s`) can land a rounding
//! error off the ideal segment. Bucketing dilates the segment by
//! [`GRID_PAD`] (1 µm — about seven orders of magnitude above the worst
//! interpolation jitter) and disk queries widen their radius by the same
//! pad, so candidate sets are immune to float fuzz while the exact
//! distance test keeps delivery and collision outcomes **identical** to
//! the brute-force scan. That equivalence is enforced two ways: the
//! brute-force path survives behind
//! [`PhyParams::with_spatial_index`](crate::PhyParams::with_spatial_index)
//! `(false)`, and a property test (`tests/differential.rs`) drives both
//! paths over random scenarios and seeds asserting event-for-event
//! identical behaviour.

use std::collections::VecDeque;

use ag_mobility::Vec2;
use ag_sim::SimTime;

/// Dilation applied to leg segments when bucketing and to disk queries,
/// in metres. Must exceed worst-case position interpolation error
/// (~1e-13 m for kilometre-scale fields) by a wide margin while staying
/// far below any radio range.
pub(crate) const GRID_PAD: f64 = 1e-6;

/// Below this many transmissions in the air, [`AirIndex`] answers
/// queries by scanning all records instead of probing grid cells: a
/// 3×3-cell probe costs ~9 map lookups, so a linear pass over a handful
/// of records is cheaper. Purely a cost decision — both paths run the
/// same exact predicate, so results are identical.
const AIR_LINEAR_CUTOVER: usize = 24;

/// A cell coordinate (floor of position / cell size, per axis).
type Cell = (i64, i64);

fn cell_of(p: Vec2, cell: f64) -> Cell {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

/// The inclusive cell range covering the disk of radius `r` around `c`.
fn disk_cells(c: Vec2, r: f64, cell: f64) -> (Cell, Cell) {
    let lo = cell_of(Vec2::new(c.x - r, c.y - r), cell);
    let hi = cell_of(Vec2::new(c.x + r, c.y + r), cell);
    (lo, hi)
}

/// The inclusive cell range covering the pad-dilated bounding box of
/// the segment `a`→`b`.
fn segment_cells(a: Vec2, b: Vec2, cell: f64) -> (Cell, Cell) {
    let lo = cell_of(
        Vec2::new(a.x.min(b.x) - GRID_PAD, a.y.min(b.y) - GRID_PAD),
        cell,
    );
    let hi = cell_of(
        Vec2::new(a.x.max(b.x) + GRID_PAD, a.y.max(b.y) + GRID_PAD),
        cell,
    );
    (lo, hi)
}

/// `true` if the segment `a`→`b` comes within `pad` of the axis-aligned
/// cell rectangle `cell_idx` (slab/Liang–Barsky clip against the
/// pad-dilated rectangle).
fn segment_touches_cell(a: Vec2, b: Vec2, cell_idx: Cell, cell: f64, pad: f64) -> bool {
    let min_x = cell_idx.0 as f64 * cell - pad;
    let max_x = (cell_idx.0 + 1) as f64 * cell + pad;
    let min_y = cell_idx.1 as f64 * cell - pad;
    let max_y = (cell_idx.1 + 1) as f64 * cell + pad;
    let d = b - a;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    for (p0, dp, lo, hi) in [(a.x, d.x, min_x, max_x), (a.y, d.y, min_y, max_y)] {
        if dp == 0.0 {
            if p0 < lo || p0 > hi {
                return false;
            }
        } else {
            let mut ta = (lo - p0) / dp;
            let mut tb = (hi - p0) / dp;
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return false;
            }
        }
    }
    true
}

/// Spatial index over nodes: each node is bucketed under every cell its
/// current mobility leg can touch, and rebucketed at leg transitions.
///
/// Buckets live in a dense row-major array covering the axis-aligned
/// bounding box of every cell ever touched; a cell lookup is pure index
/// arithmetic (a hashed lookup per cell dominated query cost in
/// profiles). Mobility models are field-clamped, so the box converges
/// to the field's extent after the first few updates; an out-of-bounds
/// touch triggers a rare O(cells) regrow.
#[derive(Debug)]
pub(crate) struct NodeGrid {
    cell: f64,
    /// Row-major buckets for the `dims.0 × dims.1` cell box at `origin`.
    buckets: Vec<Vec<u32>>,
    origin: Cell,
    dims: (i64, i64),
    /// Each node's currently bucketed segment, as flat struct-of-arrays
    /// storage (two `Vec2`s per node — no per-node heap block). The
    /// occupied cells are *recomputed* from the segment on removal with
    /// the same deterministic clip that inserted them, so storing the
    /// cell lists (a `Vec<Cell>` allocation per node, ruinous at
    /// millions of nodes) buys nothing.
    node_seg: Vec<(Vec2, Vec2)>,
    /// Whether the node currently occupies any buckets ([`NodeGrid::
    /// remove_node`] detaches churned-down nodes until re-attached).
    attached: Vec<bool>,
    /// Total nodes, for sizing fresh bucket capacity floors.
    nodes: usize,
    /// Per-cell mutation stamps, parallel to `buckets`: every bucket
    /// mutation (insert, clear, box regrow) stamps the touched cells
    /// with a fresh value of `clock`. A reader that records
    /// [`NodeGrid::disk_stamp`] over a query disk can later tell in
    /// O(cells) whether *anything* relevant to that disk changed —
    /// the validity check behind the engine's precomputed receiver
    /// sets (a node's leg/churn change always rewrites its buckets,
    /// so bucket stamps conservatively cover position validity too).
    cell_stamps: Vec<u64>,
    /// Monotone stamp source; only ever increases.
    clock: u64,
}

impl NodeGrid {
    /// An empty grid for `n` nodes with `cell`-metre cells (the radio
    /// range).
    pub fn new(cell: f64, n: usize) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "invalid grid cell {cell}");
        NodeGrid {
            cell,
            buckets: vec![Vec::new()],
            origin: (0, 0),
            dims: (1, 1),
            node_seg: vec![(Vec2::new(0.0, 0.0), Vec2::new(0.0, 0.0)); n],
            attached: vec![false; n],
            nodes: n,
            cell_stamps: vec![0],
            clock: 0,
        }
    }

    /// Capacity floor for a cell bucket in an `n`-node grid of `cells`
    /// cells: generously above the mean occupancy (`~2n / cells`, a
    /// moving node's window spans a cell or two), capped at `n`.
    /// Mobility keeps nudging each cell's occupancy high-water up for
    /// a long time after start-up; handing every bucket room for a
    /// dense local cluster up front is a few cells × `u16` of memory
    /// and keeps the hot path free of the late, rare `Vec` growth
    /// reallocations it would otherwise see.
    fn floor_for(n: usize, cells: usize) -> usize {
        (16 * (2 * n).div_ceil(cells.max(1)) + 8).min(n)
    }

    #[inline]
    fn slot(&self, c: Cell) -> Option<usize> {
        let dx = c.0.wrapping_sub(self.origin.0);
        let dy = c.1.wrapping_sub(self.origin.1);
        if dx < 0 || dy < 0 || dx >= self.dims.0 || dy >= self.dims.1 {
            None
        } else {
            Some((dy * self.dims.0 + dx) as usize)
        }
    }

    /// Grows the dense box to cover `lo..=hi`, preserving contents.
    fn grow_to(&mut self, lo: Cell, hi: Cell) {
        let new_origin = (lo.0.min(self.origin.0), lo.1.min(self.origin.1));
        let new_max = (
            hi.0.max(self.origin.0 + self.dims.0 - 1),
            hi.1.max(self.origin.1 + self.dims.1 - 1),
        );
        let new_dims = (new_max.0 - new_origin.0 + 1, new_max.1 - new_origin.1 + 1);
        let floor = Self::floor_for(self.nodes, (new_dims.0 * new_dims.1) as usize);
        let mut buckets: Vec<Vec<u32>> = (0..new_dims.0 * new_dims.1)
            .map(|_| Vec::with_capacity(floor))
            .collect();
        for dy in 0..self.dims.1 {
            for dx in 0..self.dims.0 {
                let old = &mut self.buckets[(dy * self.dims.0 + dx) as usize];
                if !old.is_empty() {
                    let nx = self.origin.0 + dx - new_origin.0;
                    let ny = self.origin.1 + dy - new_origin.1;
                    let mut moved = std::mem::take(old);
                    if moved.capacity() < floor {
                        moved.reserve(floor - moved.len());
                    }
                    buckets[(ny * new_dims.0 + nx) as usize] = moved;
                }
            }
        }
        self.buckets = buckets;
        self.origin = new_origin;
        self.dims = new_dims;
        // A regrow re-indexes every cell; conservatively restamp them
        // all so any recorded disk stamp is invalidated.
        self.clock += 1;
        self.cell_stamps = vec![self.clock; (new_dims.0 * new_dims.1) as usize];
    }

    /// Removes `node` from every cell it occupies by re-running the
    /// bucketing clip over its stored segment — bit-identical floats in,
    /// identical cell set out, so every insertion is found.
    fn clear_node(&mut self, node: usize) {
        if !self.attached[node] {
            return;
        }
        self.attached[node] = false;
        let (a, b) = self.node_seg[node];
        let (lo, hi) = segment_cells(a, b, self.cell);
        self.clock += 1;
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if segment_touches_cell(a, b, (cx, cy), self.cell, GRID_PAD) {
                    let slot = self.slot((cx, cy)).expect("occupied cell outside grid box");
                    self.cell_stamps[slot] = self.clock;
                    let v = &mut self.buckets[slot];
                    if let Some(i) = v.iter().position(|&id| id as usize == node) {
                        v.swap_remove(i);
                    }
                }
            }
        }
    }

    /// Detaches `node` from the index entirely (radio churn: a down
    /// node must not appear in any disk query). Re-attach by calling
    /// [`NodeGrid::update_segment`] again.
    pub fn remove_node(&mut self, node: usize) {
        self.clear_node(node);
    }

    /// Rebuckets `node` for the trajectory segment `a`→`b` (its next
    /// bucketing window): removes it from its old cells and inserts it
    /// under every cell the (pad-dilated) segment touches. Pass `a == b`
    /// for a parked node.
    pub fn update_segment(&mut self, node: usize, a: Vec2, b: Vec2) {
        self.clear_node(node);
        let (lo, hi) = segment_cells(a, b, self.cell);
        if self.slot(lo).is_none() || self.slot(hi).is_none() {
            self.grow_to(lo, hi);
        }
        self.clock += 1;
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if segment_touches_cell(a, b, (cx, cy), self.cell, GRID_PAD) {
                    let slot = self.slot((cx, cy)).expect("grid box just grown");
                    self.cell_stamps[slot] = self.clock;
                    self.buckets[slot].push(node as u32);
                }
            }
        }
        self.node_seg[node] = (a, b);
        self.attached[node] = true;
    }

    /// Appends every node bucketed within radius `r` (+pad) of `center`
    /// to `out`. Candidates may contain duplicates (a leg spans several
    /// queried cells) and nodes farther than `r`; the caller must dedupe
    /// and run the exact distance test.
    pub fn query_disk(&self, center: Vec2, r: f64, out: &mut Vec<u32>) {
        let (lo, hi) = disk_cells(center, r + GRID_PAD, self.cell);
        let r_sq = (r + GRID_PAD) * (r + GRID_PAD);
        // Clamp to the dense box: cells outside it are empty.
        let x0 = lo.0.max(self.origin.0);
        let x1 = hi.0.min(self.origin.0 + self.dims.0 - 1);
        let y0 = lo.1.max(self.origin.1);
        let y1 = hi.1.min(self.origin.1 + self.dims.1 - 1);
        for cy in y0..=y1 {
            let row = (cy - self.origin.1) * self.dims.0 - self.origin.0;
            let ny = center
                .y
                .clamp(cy as f64 * self.cell, (cy + 1) as f64 * self.cell);
            let dy_sq = (ny - center.y) * (ny - center.y);
            for cx in x0..=x1 {
                // Skip cells (the fetch box's corners) whose nearest
                // point lies beyond the dilated disk: an in-range node's
                // true position sits on its bucketed segment, so the
                // cell *containing* that position is in the box and
                // passes this test — a rejected cell can only hold that
                // node's duplicate entries, which the caller's dedupe
                // would discard anyway.
                let nx = center
                    .x
                    .clamp(cx as f64 * self.cell, (cx + 1) as f64 * self.cell);
                if (nx - center.x) * (nx - center.x) + dy_sq > r_sq {
                    continue;
                }
                out.extend_from_slice(&self.buckets[(row + cx) as usize]);
            }
        }
    }

    /// The maximum mutation stamp over exactly the cells
    /// [`NodeGrid::query_disk`] would read for `(center, r)`. Record it
    /// at precompute time, compare it at use time: equality proves no
    /// bucket the query depends on changed in between (any leg change,
    /// churn toggle or box regrow touching the disk rewrites a read
    /// cell's stamp). Mutations *outside* the disk advance `clock` but
    /// not these cells' stamps, so they do not invalidate.
    pub fn disk_stamp(&self, center: Vec2, r: f64) -> u64 {
        let (lo, hi) = disk_cells(center, r + GRID_PAD, self.cell);
        let r_sq = (r + GRID_PAD) * (r + GRID_PAD);
        let x0 = lo.0.max(self.origin.0);
        let x1 = hi.0.min(self.origin.0 + self.dims.0 - 1);
        let y0 = lo.1.max(self.origin.1);
        let y1 = hi.1.min(self.origin.1 + self.dims.1 - 1);
        let mut stamp = 0u64;
        for cy in y0..=y1 {
            let row = (cy - self.origin.1) * self.dims.0 - self.origin.0;
            let ny = center
                .y
                .clamp(cy as f64 * self.cell, (cy + 1) as f64 * self.cell);
            let dy_sq = (ny - center.y) * (ny - center.y);
            for cx in x0..=x1 {
                let nx = center
                    .x
                    .clamp(cx as f64 * self.cell, (cx + 1) as f64 * self.cell);
                if (nx - center.x) * (nx - center.x) + dy_sq > r_sq {
                    continue;
                }
                stamp = stamp.max(self.cell_stamps[(row + cx) as usize]);
            }
        }
        stamp
    }

    /// The grid column (cell x-index) containing `p`; the tile key for
    /// the engine's column-sharded precompute passes.
    pub fn column_of(&self, p: Vec2) -> i64 {
        cell_of(p, self.cell).0
    }
}

/// One transmission's channel-relevant facts: its airtime window and
/// where the sender stood when it keyed up.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxShot {
    /// When the frame hit the air.
    pub start: SimTime,
    /// When it leaves the air.
    pub end: SimTime,
    /// The sender's position at `start` (unit-disk audibility anchor).
    pub pos: Vec2,
}

/// One transmission's record in the air slab: its shot, grid cell and
/// liveness. Kept small so the linear scans (`any_overlapping`,
/// `busy_until`, small-count `corrupts`) stride contiguous memory.
#[derive(Debug, Clone, Copy)]
struct AirRec {
    id: u64,
    shot: TxShot,
    cell: Cell,
    /// `true` until the transmission's `TxEnd` is processed; finished
    /// records stick around only while their airtime window can still
    /// corrupt an in-flight reception.
    live: bool,
}

/// Fresh air-grid cell buckets start with room for this many
/// overlapping transmissions; crossing a tiny capacity would otherwise
/// be a rare late reallocation per cell (the zero-allocation
/// steady-state gate catches those).
const AIR_BUCKET_FLOOR: usize = 8;

/// The air index's cell grid: row-major buckets over the axis-aligned
/// box of every cell transmitted from, like [`NodeGrid`]'s layout. A
/// dense box beats the hash map it replaced twice over: cell lookups
/// on the query path are pure index arithmetic, and every bucket in
/// the box exists (with a capacity floor) from the moment the box
/// grows — a lazy map kept *creating* buckets in steady state, one
/// rare allocation per never-before-used sender cell, for as long as
/// mobility kept finding new cells.
#[derive(Debug)]
struct AirGrid {
    buckets: Vec<Vec<AirRec>>,
    origin: Cell,
    dims: (i64, i64),
    /// Per-cell *insert* stamps, parallel to `buckets`: every
    /// transmission keyed up from a cell stamps it (finishing and
    /// pruning do **not** — removals can only shrink the set of
    /// corrupters a precomputed reception already accounted for, and
    /// finished records are retained until nothing live can overlap
    /// them, so a recorded [`AirIndex::overlap_stamp`] stays valid
    /// until a *new* transmission starts nearby).
    stamps: Vec<u64>,
    /// Monotone stamp source; only ever increases.
    clock: u64,
}

impl AirGrid {
    fn new() -> Self {
        AirGrid {
            buckets: vec![Vec::with_capacity(AIR_BUCKET_FLOOR)],
            origin: (0, 0),
            dims: (1, 1),
            stamps: vec![0],
            clock: 0,
        }
    }

    #[inline]
    fn slot(&self, c: Cell) -> Option<usize> {
        let dx = c.0.wrapping_sub(self.origin.0);
        let dy = c.1.wrapping_sub(self.origin.1);
        if dx < 0 || dy < 0 || dx >= self.dims.0 || dy >= self.dims.1 {
            None
        } else {
            Some((dy * self.dims.0 + dx) as usize)
        }
    }

    /// Grows the dense box to cover `c`, preserving bucket contents
    /// and capacities. Rare: the box converges to the mobility field's
    /// extent shortly after start-up.
    fn grow_to(&mut self, c: Cell) {
        let new_origin = (c.0.min(self.origin.0), c.1.min(self.origin.1));
        let new_max = (
            c.0.max(self.origin.0 + self.dims.0 - 1),
            c.1.max(self.origin.1 + self.dims.1 - 1),
        );
        let new_dims = (new_max.0 - new_origin.0 + 1, new_max.1 - new_origin.1 + 1);
        let mut buckets: Vec<Vec<AirRec>> = (0..new_dims.0 * new_dims.1)
            .map(|_| Vec::with_capacity(AIR_BUCKET_FLOOR))
            .collect();
        for dy in 0..self.dims.1 {
            for dx in 0..self.dims.0 {
                let old = &mut self.buckets[(dy * self.dims.0 + dx) as usize];
                let nx = self.origin.0 + dx - new_origin.0;
                let ny = self.origin.1 + dy - new_origin.1;
                buckets[(ny * new_dims.0 + nx) as usize] = std::mem::take(old);
            }
        }
        self.buckets = buckets;
        self.origin = new_origin;
        self.dims = new_dims;
        // Re-indexed cells: conservatively restamp them all.
        self.clock += 1;
        self.stamps = vec![self.clock; (new_dims.0 * new_dims.1) as usize];
    }

    /// The bucket for `c`, growing the box if `c` falls outside it.
    #[inline]
    fn bucket_mut(&mut self, c: Cell) -> &mut Vec<AirRec> {
        if self.slot(c).is_none() {
            self.grow_to(c);
        }
        let s = self.slot(c).expect("air box just grown");
        &mut self.buckets[s]
    }

    /// Stamps `c` as having received an insert. The cell must be inside
    /// the box (call [`AirGrid::bucket_mut`] first).
    #[inline]
    fn note_insert(&mut self, c: Cell) {
        let s = self.slot(c).expect("stamping a cell outside the air box");
        self.clock += 1;
        self.stamps[s] = self.clock;
    }

    /// The records bucketed under `c` (empty for cells outside the box).
    #[inline]
    fn get(&self, c: Cell) -> &[AirRec] {
        match self.slot(c) {
            Some(s) => &self.buckets[s],
            None => &[],
        }
    }
}

/// Every transmission currently relevant to the channel: a dense slab
/// of records (plus each live transmission's sender and frame, held in
/// a parallel vector so the scan path stays compact) and — when spatial
/// indexing is on — a cell index over sender positions.
///
/// Ids are assigned sequentially by the engine, so lookup by id is O(1)
/// through a ring of slab slots indexed by `id - first_id`. The slab is
/// kept tiny by *eager pruning* — after every `TxEnd`, any finished
/// record whose airtime window ends at or before the earliest start
/// among still-live transmissions can no longer overlap an in-flight
/// reception and is dropped; with nothing in the air the slab empties
/// entirely.
#[derive(Debug)]
pub(crate) struct AirIndex<F> {
    recs: Vec<AirRec>,
    /// Parallel to `recs`: the sender/frame payload, `None` once
    /// finished.
    frames: Vec<Option<F>>,
    /// `Some` when spatial indexing is enabled. Buckets hold full
    /// record *copies* (records are immutable apart from the `live`
    /// flag, which is kept in sync), so dense-regime queries iterate
    /// bucket entries directly instead of resolving each id against the
    /// slab — that resolution would cost O(candidates × slab), worse
    /// than the linear scan the grid is supposed to beat.
    grid: Option<AirGrid>,
    cell: f64,
    /// Finished records awaiting pruning.
    done_count: usize,
    /// Records still on the air. Carrier-sense asks "is anything
    /// audible *now*?", which with zero live transmissions anywhere is
    /// a guaranteed no — an O(1) answer for the idle-channel common
    /// case, skipping even the asker's position sample.
    live_count: usize,
    /// Slab slot of id `first_id + i` at ring position `i`
    /// ([`NO_SLOT`] once removed); the O(1) id→record key.
    slot_ring: VecDeque<u32>,
    /// The id at the ring's front.
    first_id: u64,
}

/// Ring marker for an id whose record has been pruned.
const NO_SLOT: u32 = u32::MAX;

impl<F> AirIndex<F> {
    /// An empty index; `spatial` selects grid-backed queries, `cell` is
    /// the radio range.
    pub fn new(cell: f64, spatial: bool) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "invalid grid cell {cell}");
        AirIndex {
            recs: Vec::new(),
            frames: Vec::new(),
            grid: spatial.then(AirGrid::new),
            cell,
            done_count: 0,
            live_count: 0,
            slot_ring: VecDeque::new(),
            first_id: 0,
        }
    }

    /// Slab index of `id`, or `None` if unknown/pruned.
    #[inline]
    fn slot_of(&self, id: u64) -> Option<usize> {
        let off = usize::try_from(id.checked_sub(self.first_id)?).ok()?;
        match self.slot_ring.get(off) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Registers a transmission going on the air, carrying its payload.
    /// Ids must be assigned sequentially (the engine's monotone tx-id
    /// counter guarantees this).
    pub fn insert(&mut self, id: u64, shot: TxShot, frame: F) {
        if self.recs.is_empty() {
            self.slot_ring.clear();
            self.first_id = id;
        }
        debug_assert_eq!(
            id,
            self.first_id + self.slot_ring.len() as u64,
            "tx ids must be sequential"
        );
        self.slot_ring.push_back(self.recs.len() as u32);
        let cell = cell_of(shot.pos, self.cell);
        let rec = AirRec {
            id,
            shot,
            cell,
            live: true,
        };
        if let Some(grid) = &mut self.grid {
            grid.bucket_mut(cell).push(rec);
            grid.note_insert(cell);
        }
        debug_assert!(!self.recs.iter().any(|r| r.id == id), "duplicate tx id");
        self.recs.push(rec);
        self.frames.push(Some(frame));
        self.live_count += 1;
    }

    /// Marks `id` as finished (it keeps corrupting overlapping
    /// receptions until pruned) and returns its shot and payload, or
    /// `None` if unknown.
    pub fn finish(&mut self, id: u64) -> Option<(TxShot, F)> {
        let idx = self.slot_of(id)?;
        debug_assert!(self.recs[idx].live, "TxEnd for finished transmission");
        self.recs[idx].live = false;
        if let Some(grid) = &mut self.grid {
            let bucket = grid.bucket_mut(self.recs[idx].cell);
            let copy = bucket
                .iter_mut()
                .find(|r| r.id == id)
                .expect("finished tx missing from its cell bucket");
            copy.live = false;
        }
        self.done_count += 1;
        self.live_count -= 1;
        let frame = self.frames[idx].take().expect("finished tx lost its frame");
        Some((self.recs[idx].shot, frame))
    }

    /// `true` while at least one transmission is still on the air.
    #[inline]
    pub fn any_live(&self) -> bool {
        self.live_count > 0
    }

    /// Number of transmissions still on the air (the engine's batch
    /// trigger for parallel precompute passes).
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Borrows the payload of transmission `id`, if still known.
    pub fn peek(&self, id: u64) -> Option<&F> {
        self.frames[self.slot_of(id)?].as_ref()
    }

    /// Calls `f` for every transmission still on the air (slab order).
    pub fn for_each_live(&self, mut f: impl FnMut(u64, &TxShot, &F)) {
        for (i, r) in self.recs.iter().enumerate() {
            if r.live {
                if let Some(frame) = &self.frames[i] {
                    f(r.id, &r.shot, frame);
                }
            }
        }
    }

    /// A payload-free, shareable view of the overlap facts — exactly
    /// the slab data [`AirIndex::any_overlapping`] and
    /// [`AirIndex::collect_overlapping`] read. [`AirRec`] is plain
    /// copyable data, so the view is `Sync` regardless of the payload
    /// type and can be read by the precompute worker threads.
    pub fn overlaps_view(&self) -> AirOverlaps<'_> {
        AirOverlaps { recs: &self.recs }
    }

    /// The maximum *insert* stamp over the air-grid cells within `r` of
    /// `center` (use `r = 2 × range`: a later transmission can corrupt
    /// one of this transmission's receivers only from within twice the
    /// radio range of the sender). Equality with a recorded value
    /// proves no new transmission started anywhere that could affect a
    /// precomputed reception; finishing and pruning never change
    /// stamps, and both are no-ops for overlap membership while the
    /// observing transmission is still live.
    ///
    /// Returns `u64::MAX` on the brute-force (gridless) path, where no
    /// stamps exist — callers there must not rely on precomputation.
    pub fn overlap_stamp(&self, center: Vec2, r: f64) -> u64 {
        let Some(grid) = &self.grid else {
            return u64::MAX;
        };
        let (lo, hi) = disk_cells(center, r + GRID_PAD, self.cell);
        let x0 = lo.0.max(grid.origin.0);
        let x1 = hi.0.min(grid.origin.0 + grid.dims.0 - 1);
        let y0 = lo.1.max(grid.origin.1);
        let y1 = hi.1.min(grid.origin.1 + grid.dims.1 - 1);
        let mut stamp = 0u64;
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let s = ((cy - grid.origin.1) * grid.dims.0 + (cx - grid.origin.0)) as usize;
                stamp = stamp.max(grid.stamps[s]);
            }
        }
        stamp
    }

    /// The latest time any live transmission audible within `range` of
    /// `pos` stays on the air, or `None` if the medium is free there.
    pub fn busy_until(&self, pos: Vec2, range: f64) -> Option<SimTime> {
        if self.live_count == 0 {
            return None;
        }
        let range_sq = range * range;
        let mut busy: Option<SimTime> = None;
        let mut consider = |r: &AirRec| {
            if r.live && r.shot.pos.distance_sq(pos) <= range_sq {
                busy = Some(busy.map_or(r.shot.end, |b: SimTime| b.max(r.shot.end)));
            }
        };
        match &self.grid {
            Some(grid) if self.recs.len() > AIR_LINEAR_CUTOVER => {
                let (lo, hi) = disk_cells(pos, range + GRID_PAD, self.cell);
                for cx in lo.0..=hi.0 {
                    for cy in lo.1..=hi.1 {
                        for r in grid.get((cx, cy)) {
                            consider(r);
                        }
                    }
                }
            }
            _ => {
                for r in &self.recs {
                    consider(r);
                }
            }
        }
        busy
    }

    /// `true` if any transmission other than `exclude` — live or
    /// finished — overlaps the `[start, end)` airtime window *anywhere*
    /// (range ignored). When this is false, every receiver of `exclude`
    /// is uncorrupted and the per-receiver [`AirIndex::corrupts`] calls
    /// can be skipped wholesale — the common case in sparse networks.
    pub fn any_overlapping(&self, exclude: u64, start: SimTime, end: SimTime) -> bool {
        self.overlaps_view().any_overlapping(exclude, start, end)
    }

    /// Appends the sender position of every transmission other than
    /// `exclude` — live or finished — whose airtime overlaps the
    /// `[start, end)` window to `out`.
    ///
    /// One O(slab) pass per `TxEnd` replaces a per-receiver
    /// [`AirIndex::corrupts`] grid probe: a reception at `rpos` is
    /// corrupted iff any collected position is within range of `rpos`,
    /// which each receiver can now answer with a linear scan over the
    /// (typically tiny) overlap set. Same predicate, same results.
    pub fn collect_overlapping(
        &self,
        exclude: u64,
        start: SimTime,
        end: SimTime,
        out: &mut Vec<Vec2>,
    ) {
        self.overlaps_view()
            .collect_overlapping(exclude, start, end, out);
    }

    /// `true` if any transmission other than `exclude` — live or
    /// finished — overlaps the `[start, end)` airtime window and is
    /// audible within `range` of `at` (i.e. the reception there is
    /// corrupted).
    pub fn corrupts(
        &self,
        exclude: u64,
        start: SimTime,
        end: SimTime,
        at: Vec2,
        range: f64,
    ) -> bool {
        let range_sq = range * range;
        let hit = |r: &AirRec| {
            r.id != exclude
                && r.shot.start < end
                && start < r.shot.end
                && r.shot.pos.distance_sq(at) <= range_sq
        };
        match &self.grid {
            Some(grid) if self.recs.len() > AIR_LINEAR_CUTOVER => {
                let (lo, hi) = disk_cells(at, range + GRID_PAD, self.cell);
                for cx in lo.0..=hi.0 {
                    for cy in lo.1..=hi.1 {
                        for r in grid.get((cx, cy)) {
                            if hit(r) {
                                return true;
                            }
                        }
                    }
                }
                false
            }
            _ => self.recs.iter().any(hit),
        }
    }

    /// Eagerly drops finished transmissions whose airtime window can no
    /// longer overlap any live transmission's reception. O(slab), and
    /// the slab is small by construction.
    pub fn prune(&mut self) {
        if self.done_count == 0 {
            return;
        }
        let min_live_start = self
            .recs
            .iter()
            .filter(|r| r.live)
            .map(|r| r.shot.start)
            .min();
        let mut i = 0;
        while i < self.recs.len() {
            let r = self.recs[i];
            if !r.live && min_live_start.is_none_or(|m| r.shot.end <= m) {
                self.recs.swap_remove(i);
                self.frames.swap_remove(i);
                self.done_count -= 1;
                self.slot_ring[(r.id - self.first_id) as usize] = NO_SLOT;
                if i < self.recs.len() {
                    let moved = self.recs[i].id;
                    self.slot_ring[(moved - self.first_id) as usize] = i as u32;
                }
                while self.slot_ring.front() == Some(&NO_SLOT) {
                    self.slot_ring.pop_front();
                    self.first_id += 1;
                }
                if let Some(grid) = &mut self.grid {
                    // Emptied buckets keep their capacity: senders are
                    // stationary per transmission, so the same cells
                    // fill again immediately.
                    let v = grid.bucket_mut(r.cell);
                    if let Some(j) = v.iter().position(|x| x.id == r.id) {
                        v.swap_remove(j);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Number of records currently held (live + not-yet-pruned).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.recs.len()
    }
}

/// Borrowed, payload-free view of the air slab's overlap facts (see
/// [`AirIndex::overlaps_view`]). `Copy` plain data throughout, so it is
/// `Send + Sync` and each precompute worker thread can scan it while
/// the engine's event loop is parked at the pass barrier.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AirOverlaps<'a> {
    recs: &'a [AirRec],
}

impl AirOverlaps<'_> {
    /// See [`AirIndex::any_overlapping`].
    pub fn any_overlapping(&self, exclude: u64, start: SimTime, end: SimTime) -> bool {
        self.recs
            .iter()
            .any(|r| r.id != exclude && r.shot.start < end && start < r.shot.end)
    }

    /// See [`AirIndex::collect_overlapping`].
    pub fn collect_overlapping(
        &self,
        exclude: u64,
        start: SimTime,
        end: SimTime,
        out: &mut Vec<Vec2>,
    ) {
        for r in self.recs {
            if r.id != exclude && r.shot.start < end && start < r.shot.end {
                out.push(r.shot.pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::SimDuration;

    fn sorted_query(g: &NodeGrid, c: Vec2, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        g.query_disk(c, r, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn point_node_is_found_within_range() {
        let mut g = NodeGrid::new(75.0, 3);
        g.update_segment(0, Vec2::new(10.0, 10.0), Vec2::new(10.0, 10.0));
        g.update_segment(1, Vec2::new(60.0, 10.0), Vec2::new(60.0, 10.0));
        g.update_segment(2, Vec2::new(500.0, 500.0), Vec2::new(500.0, 500.0));
        let got = sorted_query(&g, Vec2::new(0.0, 0.0), 75.0);
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(!got.contains(&2));
    }

    #[test]
    fn moving_node_is_found_anywhere_on_its_segment() {
        let mut g = NodeGrid::new(50.0, 1);
        // A diagonal window segment; the node must be a candidate near
        // both ends and in the middle.
        g.update_segment(0, Vec2::new(0.0, 0.0), Vec2::new(100.0, 100.0));
        for p in [
            Vec2::new(0.0, 0.0),
            Vec2::new(50.0, 50.0),
            Vec2::new(100.0, 100.0),
        ] {
            assert_eq!(sorted_query(&g, p, 50.0), vec![0], "missing at {p:?}");
        }
        // ...but not far off the segment's corridor.
        assert!(sorted_query(&g, Vec2::new(250.0, 0.0), 50.0).is_empty());
    }

    #[test]
    fn rebucket_replaces_old_cells() {
        let mut g = NodeGrid::new(50.0, 1);
        g.update_segment(0, Vec2::new(10.0, 10.0), Vec2::new(10.0, 10.0));
        assert_eq!(sorted_query(&g, Vec2::new(0.0, 0.0), 50.0), vec![0]);
        g.update_segment(0, Vec2::new(1000.0, 1000.0), Vec2::new(1000.0, 1000.0));
        assert!(sorted_query(&g, Vec2::new(0.0, 0.0), 50.0).is_empty());
        assert_eq!(sorted_query(&g, Vec2::new(990.0, 990.0), 50.0), vec![0]);
    }

    #[test]
    fn remove_node_detaches_until_next_update() {
        let mut g = NodeGrid::new(50.0, 2);
        g.update_segment(0, Vec2::new(10.0, 10.0), Vec2::new(10.0, 10.0));
        g.update_segment(1, Vec2::new(20.0, 10.0), Vec2::new(20.0, 10.0));
        g.remove_node(0);
        assert_eq!(sorted_query(&g, Vec2::new(0.0, 0.0), 50.0), vec![1]);
        // Removing twice is a no-op; re-attach restores queries.
        g.remove_node(0);
        g.update_segment(0, Vec2::new(10.0, 10.0), Vec2::new(10.0, 10.0));
        assert_eq!(sorted_query(&g, Vec2::new(0.0, 0.0), 50.0), vec![0, 1]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut g = NodeGrid::new(50.0, 1);
        g.update_segment(0, Vec2::new(-10.0, -10.0), Vec2::new(-10.0, -10.0));
        assert_eq!(sorted_query(&g, Vec2::new(0.0, 0.0), 50.0), vec![0]);
    }

    #[test]
    fn segment_cell_test_matches_geometry() {
        // Horizontal segment through row 0 only.
        let a = Vec2::new(5.0, 25.0);
        let b = Vec2::new(145.0, 25.0);
        assert!(segment_touches_cell(a, b, (0, 0), 50.0, GRID_PAD));
        assert!(segment_touches_cell(a, b, (2, 0), 50.0, GRID_PAD));
        assert!(!segment_touches_cell(a, b, (1, 1), 50.0, GRID_PAD));
        assert!(!segment_touches_cell(a, b, (3, 0), 50.0, GRID_PAD));
        // Degenerate (point) segment.
        let p = Vec2::new(75.0, 75.0);
        assert!(segment_touches_cell(p, p, (1, 1), 50.0, GRID_PAD));
        assert!(!segment_touches_cell(p, p, (0, 0), 50.0, GRID_PAD));
    }

    fn shot(start_s: u64, dur_ms: u64, x: f64) -> TxShot {
        TxShot {
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(start_s) + SimDuration::from_millis(dur_ms),
            pos: Vec2::new(x, 0.0),
        }
    }

    #[test]
    fn air_index_busy_and_corruption() {
        for spatial in [false, true] {
            let mut air: AirIndex<()> = AirIndex::new(75.0, spatial);
            air.insert(1, shot(1, 500, 0.0), ());
            air.insert(2, shot(1, 900, 300.0), ());
            // Near tx 1: busy until its end.
            let busy = air.busy_until(Vec2::new(10.0, 0.0), 75.0).unwrap();
            assert_eq!(busy, SimTime::from_secs(1) + SimDuration::from_millis(500));
            // Far from both: free.
            assert!(air.busy_until(Vec2::new(150.0, 0.0), 75.0).is_none());
            // A reception of tx 1 at a point also hearing tx 2 is corrupted.
            assert!(air.corrupts(
                1,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                Vec2::new(300.0, 0.0),
                75.0
            ));
            // ...but not where tx 2 is inaudible.
            assert!(!air.corrupts(
                1,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                Vec2::new(10.0, 0.0),
                75.0
            ));
        }
    }

    #[test]
    fn dense_air_index_grid_path_matches_linear() {
        // Enough simultaneous transmissions to cross AIR_LINEAR_CUTOVER,
        // so the grid branch of busy_until/corrupts actually runs and
        // must agree with the always-exact linear path — including after
        // some transmissions finish (bucket copies track liveness).
        let n = AIR_LINEAR_CUTOVER + 8;
        let mut spatial: AirIndex<()> = AirIndex::new(75.0, true);
        let mut linear: AirIndex<()> = AirIndex::new(75.0, false);
        for i in 0..n as u64 {
            let s = shot(1 + i % 3, 400, 40.0 * i as f64);
            spatial.insert(i, s, ());
            linear.insert(i, s, ());
        }
        for i in 0..6 {
            spatial.finish(i).unwrap();
            linear.finish(i).unwrap();
        }
        for probe in 0..n as u64 {
            let at = Vec2::new(40.0 * probe as f64, 10.0);
            assert_eq!(
                spatial.busy_until(at, 75.0),
                linear.busy_until(at, 75.0),
                "busy_until diverged at probe {probe}"
            );
            let (start, end) = (SimTime::from_secs(1), SimTime::from_secs(3));
            assert_eq!(
                spatial.corrupts(probe, start, end, at, 75.0),
                linear.corrupts(probe, start, end, at, 75.0),
                "corrupts diverged at probe {probe}"
            );
        }
    }

    #[test]
    fn eager_pruning_drops_irrelevant_done_txs() {
        for spatial in [false, true] {
            let mut air: AirIndex<()> = AirIndex::new(75.0, spatial);
            air.insert(1, shot(1, 100, 0.0), ());
            air.finish(1).unwrap();
            // Nothing live: the finished record is dropped immediately.
            air.prune();
            assert_eq!(air.len(), 0, "spatial={spatial}");

            // A finished tx overlapping a live one must survive the prune…
            air.insert(2, shot(2, 100, 0.0), ());
            air.insert(3, shot(2, 400, 10.0), ());
            air.finish(2).unwrap();
            air.prune();
            assert_eq!(air.len(), 2, "spatial={spatial}");
            // …until the live one finishes too.
            air.finish(3).unwrap();
            air.prune();
            assert_eq!(air.len(), 0, "spatial={spatial}");
        }
    }
}
