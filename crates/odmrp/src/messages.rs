//! ODMRP wire messages.

use ag_maodv::GroupId;
use ag_net::{Message, NodeId};

/// The ODMRP frame set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OdmrpMsg {
    /// Source-originated periodic flood; builds backward routes.
    JoinQuery {
        /// The group.
        group: GroupId,
        /// The flooding source.
        source: NodeId,
        /// Per-source query round (dedupes the flood).
        round: u32,
        /// Hops travelled.
        hops: u8,
        /// Remaining TTL.
        ttl: u8,
    },
    /// Member/forwarding-group reply naming its next hop toward the
    /// source; whoever hears its own id joins the forwarding group.
    JoinReply {
        /// The group.
        group: GroupId,
        /// The source this reply builds toward.
        source: NodeId,
        /// Echo of the query round.
        round: u32,
        /// The backward next hop being nominated.
        next_hop: NodeId,
    },
    /// Multicast data, flooded through the forwarding group.
    Data {
        /// The group.
        group: GroupId,
        /// Originating source.
        source: NodeId,
        /// Per-source sequence number.
        seq: u32,
        /// Payload length in bytes.
        payload_len: u16,
    },
}

impl Message for OdmrpMsg {
    fn wire_size(&self) -> usize {
        match self {
            OdmrpMsg::JoinQuery { .. } => 20,
            OdmrpMsg::JoinReply { .. } => 16,
            OdmrpMsg::Data { payload_len, .. } => 12 + *payload_len as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let q = OdmrpMsg::JoinQuery {
            group: GroupId(0),
            source: NodeId::new(0),
            round: 1,
            hops: 0,
            ttl: 16,
        };
        assert_eq!(q.wire_size(), 20);
        let d = OdmrpMsg::Data {
            group: GroupId(0),
            source: NodeId::new(0),
            seq: 1,
            payload_len: 64,
        };
        assert_eq!(d.wire_size(), 76);
    }
}
