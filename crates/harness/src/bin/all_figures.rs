//! Regenerates every figure of the paper in sequence.

use ag_harness::{figures, report};

fn main() {
    let seeds = report::env_seeds();
    let secs = report::env_sim_secs();
    for spec in figures::all_line_figures() {
        let spec = spec.with_duration_secs(secs);
        eprintln!("running {}...", spec.id);
        let points = spec.run(seeds);
        println!("{}", report::render_table(spec.title, spec.xlabel, &points));
    }
    eprintln!("running fig8...");
    let series = figures::fig8(seeds, secs);
    println!("{}", report::render_goodput(&series));
}
