//! The event scheduler at the heart of the kernel: a self-resizing
//! calendar queue.
//!
//! Events are ordered by timestamp; ties are broken by insertion order
//! (FIFO). Deterministic tie-breaking matters: protocol stacks frequently
//! schedule several events for the *same* instant (e.g. every receiver of a
//! broadcast), and a run must be a pure function of the scenario and seed.
//!
//! # Why a calendar queue
//!
//! The workload is dominated by short-horizon MAC and protocol timers:
//! DIFS + backoff attempts tens of microseconds out, frame completions a
//! few milliseconds out, beacons and gossip rounds a few hundred
//! milliseconds out. A comparison-based heap pays `O(log n)` pointer-
//! chasing per operation for a set whose *time structure* is almost flat.
//! A calendar queue (Brown 1988) instead hashes each event by its
//! timestamp into a ring of day buckets — `bucket = (t >> shift) & mask`
//! with power-of-two widths, so the hash is a shift — and drains the ring
//! in day order, giving `O(1)` amortized schedule and pop when the queue
//! is tuned so each day holds about one event.
//!
//! Each bucket is kept **sorted** ascending by `(time, seq)` in a ring
//! buffer, so the earliest event of a bucket sits at its front: popping
//! is an `O(1)` `pop_front`, and finding the next minimum is a short
//! cursor walk that compares one front entry per visited day. Inserts
//! binary-search for their slot; in steady state a new timer lands at
//! the *back* of its bucket (later than what's pending there), which is
//! a plain push.
//!
//! Tuning is automatic and **deterministic**: when the population doubles
//! past two events per bucket (or collapses below a quarter), the queue
//! resizes the ring and re-derives the day width from the mean gap of a
//! *head sample* of the pending timestamps (the global mean would be
//! skewed arbitrarily wide by a few far-horizon timers) — a pure
//! function of queue content, never of wall clock, so replaying the same
//! schedule sequence always rebuilds the same calendar. Retired bucket
//! slabs are kept in a spare pool and reused across resizes;
//! steady-state operation allocates nothing (the `ag-bench` zero-alloc
//! regression test pins this down).
//!
//! # Ordering guarantee
//!
//! [`EventQueue`] drains in exactly ascending `(time, seq)` order — the
//! same total order as the seed `BinaryHeap` implementation, which is
//! preserved as [`crate::reference::BinaryHeapQueue`] and run against
//! this queue both by differential property tests (below) and by the
//! `perf_json` benchmark. Golden figure snapshots are byte-identical
//! under either queue.
//!
//! # Cancellation
//!
//! Deliberately absent. The engine cancels by *generation token*: each
//! cancellable event carries a generation stamp and the dispatcher drops
//! events whose stamp no longer matches the owner's counter (see
//! `Event::MacAttempt` / `Event::GridRefresh` in `ag-net`). That keeps
//! the queue free of tombstone bookkeeping on the hot path; a stale event
//! costs one pop and one integer compare.

use std::collections::VecDeque;

use crate::SimTime;

/// A single scheduled entry: an event of type `E` due at `time`.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone insertion counter; the FIFO tie-breaker.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Fewest day buckets the ring ever holds.
const MIN_BUCKETS: usize = 16;
/// Most day buckets the ring ever holds; beyond `2 ×` this many pending
/// events the per-bucket load grows instead (scans stay short because
/// resizing keeps the day width matched to the event spacing).
const MAX_BUCKETS: usize = 1 << 16;
/// Narrowest day: 2^6 = 64 ns. Also keeps `day + ring length` from
/// overflowing `u64` for any `SimTime` (day ≤ 2^58).
const MIN_SHIFT: u32 = 6;
/// Widest day: 2^42 ns ≈ 73 simulated minutes.
const MAX_SHIFT: u32 = 42;
/// Day width before the first resize: 2^20 ns ≈ 1 ms, the right order
/// for MAC-timer workloads.
const INITIAL_SHIFT: u32 = 20;
/// Retired bucket slabs kept for reuse across resizes.
const SPARE_CAP: usize = MAX_BUCKETS / 4;
/// Sorted head entries sampled to derive the day width on resize.
const HEAD_SAMPLE: usize = 64;
/// Pops between day-width drift checks. Resizes are driven by
/// *population* thresholds, so a queue whose population is steady but
/// whose event *rate* has drifted since the last resize (e.g. a startup
/// transient tuned wide days before MAC traffic ramped up) would keep a
/// stale day width forever. Every this-many pops the queue compares the
/// observed mean pop gap against the current day width and forces a
/// retune when they disagree by 4x or more.
const RETUNE_POPS: u64 = 1 << 15;

/// Location and key of the earliest pending entry. Buckets are sorted,
/// so the entry itself always sits at the *front* of `bucket`.
#[derive(Debug, Clone, Copy)]
struct MinPos {
    time: SimTime,
    seq: u64,
    bucket: usize,
}

/// A deterministic min-priority queue of timestamped events, implemented
/// as a self-resizing calendar queue (see the module docs for the design
/// and for why cancellation is a non-feature).
///
/// Pops drain in ascending `(time, insertion order)` — FIFO for ties.
///
/// # Example
///
/// ```
/// use ag_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c"); // same instant as "b": FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The day ring; `buckets.len()` is a power of two. Each bucket is
    /// sorted ascending by `(time, seq)`, so its front is its earliest
    /// entry.
    buckets: Vec<VecDeque<EventEntry<E>>>,
    /// `buckets.len() - 1`, for the day→bucket hash.
    mask: u64,
    /// Day width is `2^shift` nanoseconds.
    shift: u32,
    /// The virtual day (`time >> shift`) the drain cursor is on; no
    /// pending event has an earlier day.
    cursor_day: u64,
    /// Pending events.
    len: usize,
    next_seq: u64,
    popped: u64,
    /// The earliest pending entry, kept current across every operation
    /// so [`EventQueue::peek_time`] is O(1).
    cached_min: Option<MinPos>,
    /// Retired bucket slabs, reused on resize so steady-state operation
    /// does not allocate.
    spare: Vec<VecDeque<EventEntry<E>>>,
    /// Reused staging area for the one sort a resize performs.
    scratch: Vec<EventEntry<E>>,
    /// `(popped, time)` at the last day-width drift check.
    retune_mark: (u64, SimTime),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            shift: INITIAL_SHIFT,
            cursor_day: 0,
            len: 0,
            next_seq: 0,
            popped: 0,
            cached_min: None,
            spare: Vec::new(),
            scratch: Vec::new(),
            retune_mark: (0, SimTime::ZERO),
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = time.as_nanos() >> self.shift;
        let bucket = (day & self.mask) as usize;
        let b = &mut self.buckets[bucket];
        // `seq` exceeds every pending seq, so ordering against existing
        // entries reduces to `time`: the slot is after every entry with
        // `e.time <= time` — which in steady state (a timer later than
        // everything pending here) is the back, a plain push.
        if b.back().is_none_or(|e| e.time <= time) {
            b.push_back(EventEntry { time, seq, event });
        } else {
            let pos = b.partition_point(|e| e.time <= time);
            b.insert(pos, EventEntry { time, seq, event });
        }
        self.len += 1;
        // A fresh entry can only become the minimum by strictly earlier
        // time: its seq is larger than everything pending, so ties keep
        // the incumbent (FIFO). A new minimum necessarily sorted to the
        // front of its bucket, keeping the MinPos invariant.
        let beats = match &self.cached_min {
            Some(m) => time < m.time,
            None => true,
        };
        if beats {
            self.cursor_day = day;
            self.cached_min = Some(MinPos { time, seq, bucket });
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize(None);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let m = self.cached_min.take()?;
        let entry = self.buckets[m.bucket]
            .pop_front()
            .expect("min cache points at an empty bucket");
        debug_assert!(
            entry.time == m.time && entry.seq == m.seq,
            "stale min cache"
        );
        self.len -= 1;
        self.popped += 1;
        // Stay on the popped entry's day: its siblings drain next.
        self.cursor_day = m.time.as_nanos() >> self.shift;
        if self.len > 0 {
            // Day-width drift check (see `RETUNE_POPS`): compare the
            // mean gap actually drained against the current day width
            // and retune when they disagree by two octaves. Pure
            // function of the popped sequence, so replays retune
            // identically.
            let mut drift = None;
            if self.popped - self.retune_mark.0 >= RETUNE_POPS {
                let span = m
                    .time
                    .as_nanos()
                    .saturating_sub(self.retune_mark.1.as_nanos());
                let gap = (span / RETUNE_POPS).max(1);
                let ideal = gap.ilog2().clamp(MIN_SHIFT, MAX_SHIFT);
                self.retune_mark = (self.popped, m.time);
                if ideal.abs_diff(self.shift) >= 2 {
                    // Rebucket under the drained-rate day width
                    // directly: re-deriving from the pending head
                    // could land wide again (and thrash the check).
                    drift = Some(ideal);
                }
            }
            if drift.is_some() {
                self.resize(drift);
            } else if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
                self.resize(None);
            } else {
                self.recompute_min();
            }
        }
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cached_min.as_ref().map(|m| m.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever popped from this queue.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events (bucket slabs are retained for reuse).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
        self.cached_min = None;
    }

    /// Re-locates the earliest pending entry, walking the ring from
    /// `cursor_day`. Caller guarantees `len > 0`.
    ///
    /// Buckets are sorted, so each visited day costs one comparison
    /// against the bucket's front entry: if the front belongs to the
    /// cursor's day it is the global minimum (no pending event has an
    /// earlier day, and entries for later ring laps sort behind it).
    /// If a whole lap finds nothing the pending events are sparser than
    /// the ring spans; fall back to comparing all bucket fronts for the
    /// global minimum and jump the cursor there. Resizing re-derives
    /// the day width from the mean event gap, so sustained fallback
    /// laps only happen for populations too small to matter.
    fn recompute_min(&mut self) {
        debug_assert!(self.len > 0, "recompute_min on empty queue");
        // Day numbers stay ≤ 2^58 (MIN_SHIFT), so the end bound can't
        // overflow.
        for day in self.cursor_day..self.cursor_day + self.buckets.len() as u64 {
            let bucket = (day & self.mask) as usize;
            if let Some(e) = self.buckets[bucket].front() {
                if e.time.as_nanos() >> self.shift == day {
                    self.cursor_day = day;
                    self.cached_min = Some(MinPos {
                        time: e.time,
                        seq: e.seq,
                        bucket,
                    });
                    return;
                }
            }
        }
        // Sparse horizon: direct search over the bucket fronts.
        let mut best: Option<MinPos> = None;
        for (bucket, entries) in self.buckets.iter().enumerate() {
            if let Some(e) = entries.front() {
                if best
                    .as_ref()
                    .is_none_or(|b| (e.time, e.seq) < (b.time, b.seq))
                {
                    best = Some(MinPos {
                        time: e.time,
                        seq: e.seq,
                        bucket,
                    });
                }
            }
        }
        let m = best.expect("len > 0 but no entry found");
        self.cursor_day = m.time.as_nanos() >> self.shift;
        self.cached_min = Some(m);
    }

    /// Rebuilds the ring for the current population: bucket count from
    /// `len`, day width from the mean gap of a head sample of the
    /// pending timestamps — unless `shift_override` supplies one (the
    /// drift retune passes the width derived from the drained rate).
    /// Pure function of queue content — replaying the same operation
    /// sequence always rebuilds the same calendar. Caller guarantees
    /// `len > 0`.
    ///
    /// All pending entries are staged into one scratch buffer and
    /// sorted once by `(time, seq)`; redistributing them in that order
    /// appends to each target bucket in sorted order, so per-bucket
    /// ordering comes out of a single `O(n log n)` pass instead of `n`
    /// binary-searched inserts.
    fn resize(&mut self, shift_override: Option<u32>) {
        debug_assert!(self.len > 0, "resize on empty queue");
        let nb = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut ring = std::mem::take(&mut self.buckets);
        self.scratch.reserve(self.len);
        for bucket in &mut ring {
            self.scratch.extend(bucket.drain(..));
        }
        self.scratch.sort_unstable_by_key(|e| (e.time, e.seq));
        let min_t = self.scratch[0].time.as_nanos();
        let max_t = self.scratch[self.len - 1].time.as_nanos();
        // Day width from the mean gap of a *head sample* of the sorted
        // schedule, not the global span. A handful of far-horizon
        // timers (waypoint pauses, long protocol timeouts) would
        // stretch the global mean by orders of magnitude and widen
        // days until every short-horizon MAC event piles into the one
        // bucket under the cursor — which both degrades scans and
        // means the drain cursor keeps entering cold, never-touched
        // buckets that must grow from zero capacity. Brown's original
        // tuning samples near the queue head for the same reason. A
        // head of exact ties (gap 0) says nothing about spacing, so
        // fall back to the global mean gap in that case.
        let shift = shift_override.unwrap_or_else(|| {
            let sample = self.len.min(HEAD_SAMPLE);
            let head_span = self.scratch[sample - 1].time.as_nanos() - min_t;
            let avg_gap = if sample >= 2 && head_span > 0 {
                (head_span / (sample as u64 - 1)).max(1)
            } else {
                ((max_t - min_t) / self.len as u64).max(1)
            };
            avg_gap.ilog2().clamp(MIN_SHIFT, MAX_SHIFT)
        });
        // Retire the drained slabs so the rebuilt ring reuses their
        // warm capacity immediately; the ring vector itself is reused
        // in place, so a steady-state resize allocates nothing.
        while let Some(bucket) = ring.pop() {
            if self.spare.len() < SPARE_CAP {
                self.spare.push(bucket);
            }
        }
        ring.extend((0..nb).map(|_| self.spare.pop().unwrap_or_default()));
        self.buckets = ring;
        self.mask = (nb - 1) as u64;
        self.shift = shift;
        for e in self.scratch.drain(..) {
            let b = ((e.time.as_nanos() >> shift) & self.mask) as usize;
            self.buckets[b].push_back(e);
        }
        // Capacity floor per slab: a bucket must ride out transient
        // same-day bursts (a broadcast's per-receiver deliveries plus
        // the MAC re-arms they trigger) without growing. Discovering
        // that high-water bucket-by-bucket is a coupon-collector tail
        // of rare reallocations spread over the whole run; paying a
        // few entries per slab up front ends it at the (rare) resizes.
        //
        // The largest rings get 16, not less: at `MAX_BUCKETS` the
        // pending window often spans more days than the ring has
        // buckets, so day-aliasing (`day & mask`) parks *two or more*
        // active days in a fraction of the buckets. With a floor of 4
        // those aliased buckets kept doubling one straggler at a time
        // — tens of thousands of late allocations per long run (the
        // `queue_calendar_steady` alloc gate caught it). 16 covers the
        // aliased occupancy's observed tail; the memory bound is
        // `MAX_BUCKETS × 16` entries, and a ring that large implies a
        // pending population that dwarfs the floor anyway.
        let floor = if nb <= 2048 {
            32
        } else if nb <= 16_384 {
            8
        } else {
            16
        };
        for b in &mut self.buckets {
            if b.capacity() < floor {
                b.reserve(floor - b.len());
            }
        }
        self.cursor_day = min_t >> shift;
        self.recompute_min();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::BinaryHeapQueue;
    use proptest::prelude::*;

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn counts_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.popped_count(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    /// Enough entries to force several grow resizes; drain must still be
    /// perfectly sorted and lossless.
    #[test]
    fn grow_resizes_preserve_total_order() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // Scrambled times with repeats to exercise tie-breaking.
            q.schedule(SimTime::from_nanos((i * 2_654_435_761) % 500_000), i);
        }
        assert!(
            q.buckets.len() > MIN_BUCKETS,
            "growth should have kicked in"
        );
        let mut last = None;
        let mut n = 0u64;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!((t, i) > (lt, li), "order violated at {t:?}/{i}");
            }
            last = Some((t, i));
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    /// Draining a big population below a quarter load must shrink the
    /// ring again, without disturbing order.
    #[test]
    fn shrink_resizes_preserve_total_order() {
        let mut q = EventQueue::new();
        for i in 0..4096u64 {
            q.schedule(SimTime::from_micros(i * 37), i);
        }
        let grown = q.buckets.len();
        assert!(grown >= 4096);
        for expect in 0..4000u64 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(expect));
        }
        assert!(q.buckets.len() < grown, "shrink should have kicked in");
        for expect in 4000..4096u64 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(expect));
        }
        assert!(q.is_empty());
    }

    /// Events spaced far wider than the ring spans exercise the direct-
    /// search fallback.
    #[test]
    fn sparse_horizon_uses_fallback_correctly() {
        let mut q = EventQueue::new();
        // Hours apart with a ~1 ms initial day width and 16 buckets.
        for i in (0..8u64).rev() {
            q.schedule(SimTime::from_secs(i * 3600), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    /// The `SimTime::MAX` "disabled timer" sentinel must be storable and
    /// drain last without overflow.
    #[test]
    fn max_time_sentinel_is_handled() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "never");
        q.schedule(SimTime::ZERO, "now");
        q.schedule(SimTime::MAX, "never2");
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop(), Some((SimTime::ZERO, "now")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "never")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "never2")));
        assert_eq!(q.pop(), None);
    }

    /// Scheduling earlier than everything pending (and earlier than the
    /// last pop) must move the cursor backwards, not lose the event.
    #[test]
    fn schedule_into_the_past_is_honored() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "mid")));
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "late")));
    }

    /// Same-instant bursts bigger than the whole ring (the broadcast
    /// case) must stay FIFO through grow resizes.
    #[test]
    fn large_same_instant_burst_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(3);
        for i in 0..1000u32 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<u32> = (0..1000).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn clone_is_independent() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u8);
        q.schedule(SimTime::from_secs(2), 2);
        let mut c = q.clone();
        assert_eq!(c.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and for
        /// equal times a strictly increasing insertion sequence.
        #[test]
        fn prop_pop_order_is_total(times in prop::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Everything scheduled comes back exactly once.
        #[test]
        fn prop_no_loss_no_duplication(times in prop::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// Differential oracle: an arbitrary interleaving of schedules and
        /// pops produces the same observations from the calendar queue and
        /// the reference `BinaryHeap` queue — including `peek_time` and the
        /// running counters. Times mix dense ties, MAC-timer-ish gaps and
        /// far horizons so the interleaving crosses resize boundaries.
        #[test]
        fn prop_matches_binary_heap_reference(
            ops in prop::collection::vec(
                (0u8..4, 0u64..40, 0u64..5), 1..400)
        ) {
            let mut cal = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut tag = 0u64;
            for (kind, coarse, fine) in ops {
                match kind {
                    // Three schedule flavours to one pop keeps the queues
                    // populated across the run.
                    0 => {
                        // Dense: lots of exact ties.
                        let t = SimTime::from_nanos(coarse);
                        cal.schedule(t, tag);
                        heap.schedule(t, tag);
                        tag += 1;
                    }
                    1 => {
                        // Timer-ish: microseconds-to-milliseconds apart.
                        let t = SimTime::from_nanos(coarse * 50_000 + fine);
                        cal.schedule(t, tag);
                        heap.schedule(t, tag);
                        tag += 1;
                    }
                    2 => {
                        // Far horizon: minutes out, forces sparse laps.
                        let t = SimTime::from_secs(coarse * 60);
                        cal.schedule(t, tag);
                        heap.schedule(t, tag);
                        tag += 1;
                    }
                    _ => {
                        prop_assert_eq!(cal.pop(), heap.pop());
                    }
                }
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain both fully; every remaining event must match.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
            prop_assert_eq!(cal.scheduled_count(), heap.scheduled_count());
            prop_assert_eq!(cal.popped_count(), heap.popped_count());
        }

        /// Generation-token cancellation (the engine's idiom, see module
        /// docs) observed through both queues: re-arming a node's timer
        /// bumps its generation, popped events with stale generations are
        /// dropped, and the surviving dispatch sequence is identical.
        #[test]
        fn prop_generation_cancellation_matches_reference(
            ops in prop::collection::vec((0u8..3, 0usize..8, 1u64..1_000), 1..300)
        ) {
            const NODES: usize = 8;
            let mut cal = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut gens = [0u64; NODES];
            let mut now = SimTime::ZERO;
            let mut cal_fired = Vec::new();
            let mut heap_fired = Vec::new();
            for (kind, node, delay) in ops {
                match kind {
                    0 => {
                        // (Re-)arm: cancel the node's armed timer by
                        // bumping its generation, then schedule anew.
                        gens[node] += 1;
                        let at = now + crate::SimDuration::from_nanos(delay * 1_000);
                        cal.schedule(at, (node, gens[node]));
                        heap.schedule(at, (node, gens[node]));
                    }
                    1 => {
                        // Cancel only: stale events become no-ops.
                        gens[node] += 1;
                    }
                    _ => {
                        // Dispatch one event from each queue.
                        let a = cal.pop();
                        let b = heap.pop();
                        prop_assert_eq!(a, b);
                        if let Some((t, (n, g))) = a {
                            now = t;
                            if gens[n] == g {
                                cal_fired.push((t, n));
                            }
                        }
                        if let Some((t, (n, g))) = b {
                            if gens[n] == g {
                                heap_fired.push((t, n));
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(cal_fired, heap_fired);
        }
    }
}
