//! Breadth-first exhaustive exploration with canonical state hashing.

use std::fmt;
use std::hash::Hasher;

use ag_sim::hash::{DetHashMap, FastHasher};

use crate::machine::Machine;

/// 128 bits of canonical state identity: [`FastHasher`] plus an
/// independent FNV-1a pass, both streamed over the state's `Debug`
/// rendering (every table in this workspace iterates deterministically,
/// so equal states render identically). Two hashes make an accidental
/// visited-set collision astronomically unlikely even at millions of
/// states, which lets the explorer drop full states after expansion.
pub fn state_key<T: fmt::Debug>(value: &T) -> (u64, u64) {
    struct KeyWriter {
        fast: FastHasher,
        fnv: u64,
    }
    impl fmt::Write for KeyWriter {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.fast.write(s.as_bytes());
            for &b in s.as_bytes() {
                self.fnv ^= u64::from(b);
                self.fnv = self.fnv.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut w = KeyWriter {
        fast: FastHasher::default(),
        fnv: 0xcbf2_9ce4_8422_2325,
    };
    let _ = fmt::write(&mut w, format_args!("{value:?}"));
    (w.fast.finish(), w.fnv)
}

/// Exploration bounds. Exceeding a bound stops the search with
/// [`Exploration::complete`]` == false` instead of erroring.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of distinct states to expand.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1_000_000,
        }
    }
}

/// The explored state graph.
///
/// Full states are *not* retained (a few hundred thousand protocol
/// states would not fit in memory); instead each state keeps a
/// user-projected observation `O` (the fields the properties read), its
/// canonical key, its BFS tree parent, and its outgoing edges.
/// [`Exploration::replay_path`] re-derives the concrete states along
/// any path via [`Machine::step`].
pub struct Exploration<M: Machine, O> {
    /// Per-state property observations, indexed by state id.
    pub obs: Vec<O>,
    /// Canonical state keys (see [`state_key`]).
    pub keys: Vec<(u64, u64)>,
    /// BFS tree parent and the action that led here (`None` for the
    /// initial state). Parent chains give *shortest* counterexamples.
    pub parent: Vec<Option<(u32, M::Action)>>,
    /// Outgoing edges: `(action, successor id)` per state.
    pub edges: Vec<Vec<(M::Action, u32)>>,
    /// BFS depth per state.
    pub depth: Vec<u32>,
    /// `true` if the full reachable graph fit inside the limits
    /// (fixpoint reached).
    pub complete: bool,
}

impl<M: Machine, O> Exploration<M, O> {
    /// Number of distinct states discovered.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// `true` if nothing was explored (cannot happen: the initial state
    /// always exists).
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// State ids with no outgoing edges (quiescent worlds).
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_empty())
            .map(|(i, _)| i)
    }

    /// The action sequence from the initial state to `state` along BFS
    /// tree parents (one shortest path).
    pub fn path_to(&self, state: usize) -> Vec<M::Action> {
        let mut actions = Vec::new();
        let mut cur = state;
        while let Some((p, a)) = &self.parent[cur] {
            actions.push(a.clone());
            cur = *p as usize;
        }
        actions.reverse();
        actions
    }

    /// Re-derives the concrete states visited along `actions` starting
    /// from the initial state (the first element is the initial state,
    /// so the result has `actions.len() + 1` entries).
    pub fn replay_path(&self, machine: &M, actions: &[M::Action]) -> Vec<M::State> {
        let mut states = vec![machine.initial()];
        for a in actions {
            let next = machine.step(states.last().expect("non-empty"), a);
            states.push(next);
        }
        states
    }
}

/// Exhaustively explores `machine` breadth-first from its initial
/// state, projecting each discovered state through `observe` (keep it
/// small: it is retained for every state).
pub fn explore<M: Machine, O>(
    machine: &M,
    limits: Limits,
    observe: impl Fn(&M::State) -> O,
) -> Exploration<M, O> {
    let initial = machine.initial();
    let mut ex = Exploration {
        obs: vec![observe(&initial)],
        keys: vec![state_key(&initial)],
        parent: vec![None],
        edges: Vec::new(),
        depth: vec![0],
        complete: true,
    };
    let mut index: DetHashMap<(u64, u64), u32> = DetHashMap::default();
    index.insert(ex.keys[0], 0);

    // Frontier holds the concrete states awaiting expansion; they are
    // dropped once expanded.
    let mut frontier: std::collections::VecDeque<(u32, M::State)> =
        std::collections::VecDeque::new();
    frontier.push_back((0, initial));

    let progress = std::env::var_os("AG_CHECK_PROGRESS").is_some();
    while let Some((id, state)) = frontier.pop_front() {
        debug_assert_eq!(ex.edges.len(), id as usize);
        if progress && id % 50_000 == 0 && id > 0 {
            eprintln!(
                "explore: expanded {id} states, discovered {}, frontier {}",
                ex.obs.len(),
                frontier.len()
            );
        }
        let succs = machine.successors(&state);
        let mut out = Vec::with_capacity(succs.len());
        for (action, next) in succs {
            let key = state_key(&next);
            let next_id = match index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = ex.obs.len() as u32;
                    if ex.obs.len() >= limits.max_states {
                        ex.complete = false;
                        continue;
                    }
                    index.insert(key, i);
                    ex.obs.push(observe(&next));
                    ex.keys.push(key);
                    ex.parent.push(Some((id, action.clone())));
                    ex.depth.push(ex.depth[id as usize] + 1);
                    frontier.push_back((i, next));
                    i
                }
            };
            out.push((action, next_id));
        }
        ex.edges.push(out);
    }
    // States admitted to the graph but cut from the frontier by the
    // limit would leave `edges` short; pad so the vectors stay aligned.
    while ex.edges.len() < ex.obs.len() {
        ex.complete = false;
        ex.edges.push(Vec::new());
    }
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-bit counter with a nondeterministic increment-by-1-or-2,
    /// saturating at 3: 4 states, terminal at 3.
    struct Counter;
    impl Machine for Counter {
        type State = u8;
        type Action = u8;
        fn initial(&self) -> u8 {
            0
        }
        fn successors(&self, s: &u8) -> Vec<(u8, u8)> {
            if *s >= 3 {
                return vec![];
            }
            [1u8, 2].iter().map(|d| (*d, (*s + *d).min(3))).collect()
        }
        fn step(&self, s: &u8, a: &u8) -> u8 {
            (*s + *a).min(3)
        }
    }

    #[test]
    fn explores_to_fixpoint() {
        let ex = explore(&Counter, Limits::default(), |s| *s);
        assert!(ex.complete);
        assert_eq!(ex.len(), 4);
        assert_eq!(ex.terminals().count(), 1);
    }

    #[test]
    fn parent_paths_are_shortest() {
        let ex = explore(&Counter, Limits::default(), |s| *s);
        let three = ex.obs.iter().position(|&o| o == 3).unwrap();
        // 0 →2→ 2 →(1|2)→ 3 is depth 2; the +1-only path is depth 3.
        assert_eq!(ex.depth[three], 2);
        let path = ex.path_to(three);
        assert_eq!(path.len(), 2);
        let states = ex.replay_path(&Counter, &path);
        assert_eq!(*states.last().unwrap(), 3);
    }

    #[test]
    fn limit_marks_incomplete() {
        let ex = explore(&Counter, Limits { max_states: 2 }, |s| *s);
        assert!(!ex.complete);
        assert!(ex.len() <= 2);
    }

    #[test]
    fn state_key_distinguishes() {
        assert_eq!(state_key(&(1, 2)), state_key(&(1, 2)));
        assert_ne!(state_key(&(1, 2)), state_key(&(2, 1)));
    }
}
