//! The MAODV node state machine.
//!
//! [`Maodv`] is deliberately *not* an [`ag_net::Protocol`]: its handlers
//! return [`Upcall`]s so a wrapping layer (Anonymous Gossip in `ag-core`,
//! or the bare [`crate::MaodvProtocol`] baseline) can observe deliveries,
//! membership sightings and extension frames without callback traits.
//!
//! The flow of a group join (paper §3):
//!
//! ```text
//! member S            routers                tree node T
//!   │  RREQ(join) ───────▶ rebroadcast ─────────▶ │
//!   │ ◀──────────── RREP (reverse path) ───────── │   (collect rrep_wait)
//!   │  MACT(join) ──▶ enable + cascade up ───────▶ │   (branch activated)
//! ```
//!
//! A failed join (no RREP after `rreq_retries`) makes the member the
//! group leader of its partition; GRPH floods merge partitions later.
//! Link breaks are repaired by the *downstream* node only, using the
//! hop-count-to-leader RREQ extension to rule out replies from its own
//! subtree (loop prevention).

use ag_sim::hash::DetHashMap as HashMap;

use ag_net::{Message, NodeId, ProtoCtx, RxKind, TimerKey};
use ag_sim::{SimDuration, SimTime};

use crate::messages::{
    DataHeader, GrphPayload, MactKind, MactPayload, MaodvMsg, RoutedExt, RrepPayload, RreqPayload,
};
use crate::mrt::MulticastRouteTable;
use crate::neighbors::NeighborTable;
use crate::route_table::RouteTable;
use crate::seen::SeenCache;
use crate::{GroupId, MaodvConfig};

/// Timer: periodic HELLO broadcast.
pub const TIMER_HELLO: TimerKey = 1;
/// Timer: housekeeping tick (timeouts, retries, liveness sweep).
pub const TIMER_TICK: TimerKey = 2;
/// Timer: leader's periodic group hello.
pub const TIMER_GRPH: TimerKey = 3;
/// Timer: a member's jittered initial join.
pub const TIMER_JOIN_START: TimerKey = 4;
/// Timer: jittered flood-relay drain (RREQ/GRPH rebroadcasts).
pub const TIMER_RELAY: TimerKey = 5;
/// First timer key available to layers above MAODV.
pub const TIMER_USER_BASE: TimerKey = 64;

/// Events surfaced to the layer above MAODV.
#[derive(Debug, Clone, PartialEq)]
pub enum Upcall<X> {
    /// A multicast data packet was delivered to this (member) node along
    /// the tree.
    DataReceived {
        /// Originating member.
        origin: NodeId,
        /// Per-origin sequence number.
        seq: u32,
        /// Payload length (bytes).
        payload_len: u16,
        /// Tree hops it travelled.
        hops: u8,
    },
    /// A group member was observed `hops` away — the free membership
    /// information the AG member cache feeds on (§4.3).
    MemberObserved {
        /// The member.
        member: NodeId,
        /// Its observed distance in hops.
        hops: u8,
    },
    /// A one-hop extension frame arrived (gossip walk step).
    ExtNeighbor {
        /// The neighbour that sent it.
        from: NodeId,
        /// The payload.
        msg: X,
    },
    /// A routed extension frame arrived at its destination.
    ExtRouted {
        /// The original sender.
        src: NodeId,
        /// Hops it travelled.
        hops: u8,
        /// The payload.
        msg: X,
    },
    /// This node's branch to the multicast tree was activated.
    JoinedTree,
    /// This node became the group leader (first member or partition).
    BecameLeader,
}

/// An in-flight join or repair attempt at this node.
#[derive(Debug, Clone)]
struct JoinAttempt {
    rreq_id: u32,
    sent_at: SimTime,
    retries: u32,
    /// `Some(old_hops_to_leader)` when repairing a broken tree link.
    repair: Option<u8>,
    candidates: Vec<JoinCandidate>,
}

#[derive(Debug, Clone, Copy)]
struct JoinCandidate {
    via: NodeId,
    group_seq: u32,
    hops_to_tree: u8,
    leader_hops: u8,
}

/// Bookkeeping at an intermediate node that forwarded a join RREP and may
/// receive the MACT cascade.
#[derive(Debug, Clone, Copy)]
struct PendingJoin {
    upstream: NodeId,
    group_seq: u32,
    hops_to_tree: u8,
    leader_hops: u8,
    expires: SimTime,
}

/// An in-flight unicast route discovery with its packet buffer.
#[derive(Debug, Clone)]
struct Discovery<X> {
    rreq_id: u32,
    sent_at: SimTime,
    retries: u32,
    buffer: Vec<X>,
}

/// The MAODV routing state of one node. See module docs.
#[derive(Debug, Clone)]
pub struct Maodv<X: Message> {
    cfg: MaodvConfig,
    id: NodeId,
    group: GroupId,
    is_member: bool,
    is_leader: bool,
    node_seq: u32,
    next_rreq_id: u32,
    data_seq: u32,
    rt: RouteTable,
    mrt: MulticastRouteTable,
    neighbors: NeighborTable,
    join: Option<JoinAttempt>,
    pending_joins: HashMap<(NodeId, u32), PendingJoin>,
    discoveries: HashMap<NodeId, Discovery<X>>,
    rreq_seen: SeenCache<(NodeId, u32)>,
    data_seen: SeenCache<(NodeId, u32)>,
    grph_seen: SeenCache<(NodeId, u32)>,
    /// Last `nearest_member` value advertised to each neighbour (§4.2:
    /// send only on change).
    nm_sent: HashMap<NodeId, u8>,
    /// Best join-RREP already forwarded per (origin, rreq_id): suppresses
    /// worse duplicates of the reply flood.
    forwarded_rreps: HashMap<(NodeId, u32), (u32, u8)>,
    /// Set once the member's initial (jittered) join has fired; gates the
    /// tick's re-join self-healing so it cannot pre-empt the join jitter.
    join_started: bool,
    /// Last time a tree-scoped GRPH arrived from our upstream (or we led
    /// / grafted). `None` until first tree contact. Staleness means the
    /// path to the leader is gone even if the local tree edges look fine.
    last_tree_grph: Option<SimTime>,
    /// Newest `(leader, group_seq)` adopted from a tree-scoped GRPH;
    /// dedupes the downward relay.
    adopted_grph: Option<(NodeId, u32)>,
    /// Flood frames awaiting their jittered rebroadcast (see
    /// [`Maodv::schedule_relay`]).
    relay_queue: std::collections::VecDeque<MaodvMsg<X>>,
    /// Seeded-bug canary (always `false` in production): when set, a
    /// node answers join RREQs even when its group sequence number is
    /// *stale* — exactly the reply the §3 loop-prevention guard exists
    /// to suppress. `ag-check` asserts its MRT loop-freedom property
    /// catches this mutation.
    canary_accept_stale_seq: bool,
}

/// Bound alias for contexts carrying MAODV frames: every
/// [`ProtoCtx<MaodvMsg<X>>`] qualifies via the blanket impl, so handler
/// signatures write one bound instead of repeating the message type.
pub trait MaodvCtx<X: Message>: ProtoCtx<MaodvMsg<X>> {}

impl<X: Message, C: ProtoCtx<MaodvMsg<X>>> MaodvCtx<X> for C {}

impl<X: Message> Maodv<X> {
    /// Creates the routing state for `id`. Members join the group after a
    /// random jitter once [`Maodv::start`] runs.
    pub fn new(cfg: MaodvConfig, id: NodeId, group: GroupId, is_member: bool) -> Self {
        Maodv {
            id,
            group,
            is_member,
            is_leader: false,
            node_seq: 0,
            next_rreq_id: 0,
            data_seq: 0,
            rt: RouteTable::new(),
            mrt: MulticastRouteTable::new(group, cfg.nearest_member_infinity),
            neighbors: NeighborTable::new(cfg.neighbor_timeout()),
            join: None,
            pending_joins: HashMap::default(),
            discoveries: HashMap::default(),
            rreq_seen: SeenCache::new(cfg.rreq_seen_capacity),
            data_seen: SeenCache::new(cfg.data_seen_capacity),
            grph_seen: SeenCache::new(cfg.rreq_seen_capacity),
            nm_sent: HashMap::default(),
            forwarded_rreps: HashMap::default(),
            join_started: false,
            last_tree_grph: None,
            adopted_grph: None,
            relay_queue: std::collections::VecDeque::new(),
            canary_accept_stale_seq: false,
            cfg,
        }
    }

    /// Arms the accept-stale-sequence-number seeded bug (model-checking
    /// canary only).
    #[cfg(any(test, feature = "bug-canary"))]
    pub fn canary_accept_stale_seq(&mut self) {
        self.canary_accept_stale_seq = true;
    }

    /// `true` if this node has recent proof of a live tree path to the
    /// group leader (it is the leader, or tree-scoped group hellos are
    /// arriving, or it grafted very recently).
    pub fn tree_connected(&self, now: SimTime) -> bool {
        if self.is_leader {
            return true;
        }
        match self.last_tree_grph {
            None => false,
            Some(t) => now.duration_since(t) < self.cfg.group_hello_interval * 5 / 2,
        }
    }

    // ───────────────────────── accessors ─────────────────────────

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The multicast group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Whether this node is a group member (application-level).
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    /// Whether this node is currently the group leader.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Whether this node is an active router of the multicast tree.
    pub fn on_tree(&self) -> bool {
        self.is_leader || self.mrt.enabled_count() > 0
    }

    /// The multicast route table (read access for the gossip layer's
    /// locality-weighted next-hop choice).
    pub fn mrt(&self) -> &MulticastRouteTable {
        &self.mrt
    }

    /// The unicast route table.
    pub fn rt(&self) -> &RouteTable {
        &self.rt
    }

    /// The neighbour liveness table.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Protocol configuration.
    pub fn config(&self) -> &MaodvConfig {
        &self.cfg
    }

    // ───────────────────────── lifecycle ─────────────────────────

    /// Schedules the initial timers. Call once from `Protocol::start`.
    pub fn start<C: MaodvCtx<X>>(&mut self, api: &mut C) {
        let hello_jitter =
            SimDuration::from_nanos(api.jitter(self.cfg.hello_interval.as_nanos().max(1)));
        api.set_timer(hello_jitter, TIMER_HELLO);
        let tick_jitter =
            SimDuration::from_nanos(api.jitter(self.cfg.tick_interval.as_nanos().max(1)));
        api.set_timer(self.cfg.tick_interval + tick_jitter, TIMER_TICK);
        api.set_timer(self.cfg.group_hello_interval, TIMER_GRPH);
        if self.is_member {
            let join_jitter =
                SimDuration::from_nanos(api.jitter(self.cfg.join_jitter.as_nanos().max(1)));
            api.set_timer(join_jitter, TIMER_JOIN_START);
        }
    }

    /// Handles one of MAODV's own timers. Returns `true` if the key was
    /// consumed (wrappers pass unknown keys to their own logic).
    pub fn on_timer<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        key: TimerKey,
        up: &mut Vec<Upcall<X>>,
    ) -> bool {
        match key {
            TIMER_HELLO => {
                api.broadcast(MaodvMsg::Hello);
                api.set_timer(self.cfg.hello_interval, TIMER_HELLO);
                true
            }
            TIMER_GRPH => {
                if self.is_leader {
                    self.mrt.group_seq += 1;
                    let seq = self.mrt.group_seq;
                    self.grph_seen.insert((self.id, seq));
                    self.adopted_grph = Some((self.id, seq));
                    let base = GrphPayload {
                        group: self.group,
                        leader: self.id,
                        group_seq: seq,
                        hop_count: 0,
                        ttl: self.cfg.flood_ttl,
                        tree: false,
                    };
                    // Network-wide flood (merge detection)…
                    api.broadcast(MaodvMsg::Grph(base));
                    // …and the tree-scoped copy (connectivity proof).
                    api.broadcast(MaodvMsg::Grph(GrphPayload { tree: true, ..base }));
                    api.count("maodv.grph_originated");
                }
                let jitter = SimDuration::from_micros(api.jitter(500_000));
                api.set_timer(self.cfg.group_hello_interval + jitter, TIMER_GRPH);
                true
            }
            TIMER_TICK => {
                self.tick(api, up);
                api.set_timer(self.cfg.tick_interval, TIMER_TICK);
                true
            }
            TIMER_RELAY => {
                if let Some(msg) = self.relay_queue.pop_front() {
                    api.broadcast(msg);
                }
                true
            }
            TIMER_JOIN_START => {
                self.join_started = true;
                if self.is_member && !self.on_tree() && self.join.is_none() {
                    self.start_join(api, None);
                }
                true
            }
            _ => false,
        }
    }

    /// Handles a received frame. Returns the resulting upcalls.
    pub fn on_packet<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        msg: MaodvMsg<X>,
        _rx: RxKind,
        up: &mut Vec<Upcall<X>>,
    ) {
        let now = api.now();
        self.neighbors.heard(from, now);
        // Any frame gives us a 1-hop route to the sender.
        let expires = now + self.cfg.active_route_timeout;
        self.rt.update_allow_stale(
            from,
            from,
            self.rt.known_seq(from).unwrap_or(0),
            1,
            expires,
            now,
        );
        match msg {
            MaodvMsg::Hello => {}
            MaodvMsg::Rreq(r) => self.handle_rreq(api, from, r),
            MaodvMsg::Rrep(p) => self.handle_rrep(api, from, p, up),
            MaodvMsg::Mact(m) => self.handle_mact(api, from, m, up),
            MaodvMsg::Grph(g) => self.handle_grph(api, from, g),
            MaodvMsg::Data(d) => self.handle_data(api, from, d, up),
            MaodvMsg::NmUpdate { group, value } => {
                if group == self.group && self.mrt.set_nearest_member(from, value) {
                    self.propagate_nearest_member(api);
                }
            }
            MaodvMsg::Ext(x) => up.push(Upcall::ExtNeighbor { from, msg: x }),
            MaodvMsg::Routed(r) => self.handle_routed(api, from, r, up),
        }
    }

    /// Handles a MAC-level unicast failure (retry limit exhausted): the
    /// primary link-break detector.
    pub fn on_send_failure<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        to: NodeId,
        msg: MaodvMsg<X>,
        up: &mut Vec<Upcall<X>>,
    ) {
        api.count("maodv.send_failure");
        self.neighbors.forget(to);
        self.rt.invalidate_via(to);
        self.rt.invalidate(to);
        if let MaodvMsg::Routed(_) = msg {
            api.count("maodv.routed_dropped");
        }
        let was_tree_edge = self.mrt.next_hop(to).is_some_and(|h| h.enabled);
        if was_tree_edge {
            self.handle_tree_break(api, to, up);
        }
    }

    // ───────────────────────── app-facing sends ─────────────────────────

    /// Multicasts one data packet to the group (phase one of the paper's
    /// protocol). Returns the per-origin sequence number used.
    pub fn send_data<C: MaodvCtx<X>>(&mut self, api: &mut C, payload_len: u16) -> u32 {
        self.data_seq += 1;
        let seq = self.data_seq;
        self.data_seen.insert((self.id, seq));
        if self.on_tree() {
            api.broadcast(MaodvMsg::Data(DataHeader {
                group: self.group,
                origin: self.id,
                seq,
                payload_len,
                hops: 0,
            }));
            api.count("maodv.data_originated");
        } else {
            api.count("maodv.data_sent_detached");
        }
        seq
    }

    /// Sends a one-hop extension frame to a direct neighbour (gossip walk
    /// step; §4.1's propagation along the tree is built from these).
    pub fn send_ext_neighbor<C: MaodvCtx<X>>(&mut self, api: &mut C, to: NodeId, payload: X) {
        api.send(to, MaodvMsg::Ext(payload));
    }

    /// Sends an extension payload to an arbitrary node via AODV unicast
    /// routing, running route discovery (and buffering) if needed.
    pub fn send_ext_routed<C: MaodvCtx<X>>(&mut self, api: &mut C, dest: NodeId, payload: X) {
        if dest == self.id {
            return;
        }
        let now = api.now();
        if let Some(route) = self.rt.lookup(dest, now) {
            let next = route.next_hop;
            self.rt.refresh(dest, now + self.cfg.active_route_timeout);
            api.send(
                next,
                MaodvMsg::Routed(RoutedExt {
                    src: self.id,
                    dest,
                    ttl: self.cfg.flood_ttl,
                    hops: 0,
                    payload,
                }),
            );
            return;
        }
        // No route: buffer and discover.
        match self.discoveries.get_mut(&dest) {
            Some(d) => {
                if d.buffer.len() < self.cfg.discovery_buffer {
                    d.buffer.push(payload);
                } else {
                    api.count("maodv.discovery_buffer_drop");
                }
            }
            None => {
                let rreq_id = self.fresh_rreq_id();
                self.node_seq += 1;
                self.discoveries.insert(
                    dest,
                    Discovery {
                        rreq_id,
                        sent_at: now,
                        retries: 0,
                        buffer: vec![payload],
                    },
                );
                self.broadcast_unicast_rreq(api, dest, rreq_id);
            }
        }
    }

    /// Installs a (reverse) route learned by an upper layer — the gossip
    /// walk records the path back to its initiator this way, which is why
    /// gossip replies need no fresh discovery (§4.1).
    pub fn note_route(&mut self, now: SimTime, dest: NodeId, via: NodeId, hops: u8) {
        if dest == self.id {
            return;
        }
        let expires = now + self.cfg.active_route_timeout;
        self.rt.update_allow_stale(
            dest,
            via,
            self.rt.known_seq(dest).unwrap_or(0),
            hops,
            expires,
            now,
        );
    }

    /// Leaves the group (paper §3: leaf members prune; non-leaf members
    /// keep routing but stop being members).
    pub fn leave_group<C: MaodvCtx<X>>(&mut self, api: &mut C) {
        self.is_member = false;
        self.leaf_prune_check(api);
        self.propagate_nearest_member(api);
    }

    // ───────────────────────── internals ─────────────────────────

    /// Queues a flood frame for rebroadcast after a small random delay
    /// (0–10 ms). Synchronized flood relays from mutually hidden nodes
    /// would otherwise collide at the nodes between them *every* round —
    /// the classic broadcast-storm pathology jitter exists to break.
    fn schedule_relay<C: MaodvCtx<X>>(&mut self, api: &mut C, msg: MaodvMsg<X>) {
        self.relay_queue.push_back(msg);
        let delay = SimDuration::from_micros(api.jitter(10_000));
        api.set_timer(delay, TIMER_RELAY);
    }

    fn fresh_rreq_id(&mut self) -> u32 {
        self.next_rreq_id += 1;
        self.next_rreq_id
    }

    fn start_join<C: MaodvCtx<X>>(&mut self, api: &mut C, repair: Option<u8>) {
        self.join_started = true;
        let rreq_id = self.fresh_rreq_id();
        self.node_seq += 1;
        self.join = Some(JoinAttempt {
            rreq_id,
            sent_at: api.now(),
            retries: 0,
            repair,
            candidates: Vec::new(),
        });
        self.rreq_seen.insert((self.id, rreq_id));
        api.count(if repair.is_some() {
            "maodv.repair_rreq"
        } else {
            "maodv.join_rreq"
        });
        api.broadcast(MaodvMsg::Rreq(RreqPayload {
            origin: self.id,
            origin_seq: self.node_seq,
            rreq_id,
            dest: self.id,
            group: Some(self.group),
            known_seq: self.mrt.group_seq,
            hop_count: 0,
            ttl: self.cfg.flood_ttl,
            join: true,
            repair_hops: repair,
        }));
    }

    fn broadcast_unicast_rreq<C: MaodvCtx<X>>(&mut self, api: &mut C, dest: NodeId, rreq_id: u32) {
        self.rreq_seen.insert((self.id, rreq_id));
        api.count("maodv.unicast_rreq");
        api.broadcast(MaodvMsg::Rreq(RreqPayload {
            origin: self.id,
            origin_seq: self.node_seq,
            rreq_id,
            dest,
            group: None,
            known_seq: self.rt.known_seq(dest).unwrap_or(0),
            hop_count: 0,
            ttl: self.cfg.flood_ttl,
            join: false,
            repair_hops: None,
        }));
    }

    fn become_leader<C: MaodvCtx<X>>(&mut self, api: &mut C, up: &mut Vec<Upcall<X>>) {
        self.is_leader = true;
        self.mrt.leader = Some(self.id);
        self.mrt.group_seq += 1;
        self.mrt.hops_to_leader = 0;
        self.last_tree_grph = Some(api.now());
        up.push(Upcall::BecameLeader);
        api.count("maodv.became_leader");
    }

    fn tick<C: MaodvCtx<X>>(&mut self, api: &mut C, up: &mut Vec<Upcall<X>>) {
        let now = api.now();
        // 1. Neighbour liveness: silent tree neighbours break links.
        for dead in self.neighbors.sweep_dead(now) {
            self.rt.invalidate_via(dead);
            if self.mrt.next_hop(dead).is_some_and(|h| h.enabled) {
                api.count("maodv.hello_link_break");
                // Best-effort prune so a *spurious* break (hellos lost to
                // collisions, neighbour actually fine) cannot leave the
                // tree edge dangling on one side only.
                api.send(
                    dead,
                    MaodvMsg::Mact(MactPayload {
                        group: self.group,
                        kind: MactKind::Prune,
                        origin: self.id,
                        rreq_id: 0,
                        sender_is_member: self.is_member,
                    }),
                );
                self.handle_tree_break(api, dead, up);
            }
        }
        // 2. Join/repair progress.
        if let Some(mut j) = self.join.take() {
            if now.duration_since(j.sent_at) >= self.cfg.rrep_wait {
                if let Some(best) = Self::select_candidate(&j.candidates) {
                    self.activate_branch(api, best, j.rreq_id, up);
                } else if j.retries < self.cfg.rreq_retries {
                    j.retries += 1;
                    j.sent_at = now;
                    let rreq_id = self.fresh_rreq_id();
                    j.rreq_id = rreq_id;
                    self.node_seq += 1;
                    self.rreq_seen.insert((self.id, rreq_id));
                    api.count("maodv.join_rreq_retry");
                    api.broadcast(MaodvMsg::Rreq(RreqPayload {
                        origin: self.id,
                        origin_seq: self.node_seq,
                        rreq_id,
                        dest: self.id,
                        group: Some(self.group),
                        known_seq: self.mrt.group_seq,
                        hop_count: 0,
                        ttl: self.cfg.flood_ttl,
                        join: true,
                        repair_hops: j.repair,
                    }));
                    self.join = Some(j);
                } else {
                    // Nobody answered: we are partitioned (or first).
                    self.become_leader(api, up);
                }
            } else {
                self.join = Some(j);
            }
        }
        // 3a. A tree router without an upstream and not the leader must
        //     repair (covers lost MACT cascades and leader loss).
        if self.on_tree() && !self.is_leader && self.mrt.upstream().is_none() && self.join.is_none()
        {
            let hops = self.mrt.hops_to_leader;
            self.start_join(api, Some(hops));
        }
        // 3b. A member that fell off the tree entirely (pruned away or
        //     failed graft) re-joins from scratch.
        if self.is_member && self.join_started && !self.on_tree() && self.join.is_none() {
            api.count("maodv.member_rejoin");
            self.start_join(api, None);
        }
        // 3c. An orphaned subtree: local tree edges look fine but no
        //     tree-scoped GRPH has arrived for several leader rounds.
        //     Jittered so a whole subtree does not flood RREQs at once.
        if self.on_tree()
            && !self.is_leader
            && self.join.is_none()
            && self.last_tree_grph.is_some()
            && !self.tree_connected(now)
        {
            let jitter_ns = api.jitter(self.cfg.group_hello_interval.as_nanos());
            let stale_for = now.duration_since(self.last_tree_grph.expect("checked"));
            if stale_for.as_nanos() > self.cfg.group_hello_interval.as_nanos() * 5 / 2 + jitter_ns {
                api.count("maodv.orphan_repair");
                self.start_join(api, None);
            }
        }
        // 4. Unicast discovery timeouts.
        let mut to_retry: Vec<NodeId> = Vec::new();
        let mut to_fail: Vec<NodeId> = Vec::new();
        for (dest, d) in &self.discoveries {
            if now.duration_since(d.sent_at) >= self.cfg.rrep_wait {
                if d.retries < self.cfg.rreq_retries {
                    to_retry.push(*dest);
                } else {
                    to_fail.push(*dest);
                }
            }
        }
        to_retry.sort();
        to_fail.sort();
        for dest in to_retry {
            let rreq_id = self.fresh_rreq_id();
            self.node_seq += 1;
            if let Some(d) = self.discoveries.get_mut(&dest) {
                d.retries += 1;
                d.sent_at = now;
                d.rreq_id = rreq_id;
            }
            self.broadcast_unicast_rreq(api, dest, rreq_id);
        }
        for dest in to_fail {
            if let Some(d) = self.discoveries.remove(&dest) {
                api.count_n("maodv.discovery_failed_pkts", d.buffer.len() as u64);
                api.count("maodv.discovery_failed");
            }
        }
        // 5. Expire stale pending-join bookkeeping.
        self.pending_joins.retain(|_, p| p.expires > now);
        if self.pending_joins.is_empty() && !self.forwarded_rreps.is_empty() {
            self.forwarded_rreps.clear();
        }
    }

    fn select_candidate(cands: &[JoinCandidate]) -> Option<JoinCandidate> {
        cands.iter().copied().max_by(|a, b| {
            a.group_seq
                .cmp(&b.group_seq)
                .then(b.hops_to_tree.cmp(&a.hops_to_tree))
                .then(b.via.cmp(&a.via))
        })
    }

    /// Requester side of MACT: activate the best candidate branch.
    fn activate_branch<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        best: JoinCandidate,
        rreq_id: u32,
        up: &mut Vec<Upcall<X>>,
    ) {
        // An orphan re-graft replaces a still-enabled but disconnected
        // upstream: prune that stale edge so both sides agree (the old
        // upstream's subtree will run its own orphan repair).
        if let Some(old) = self.mrt.upstream() {
            if old != best.via {
                api.send(
                    old,
                    MaodvMsg::Mact(MactPayload {
                        group: self.group,
                        kind: MactKind::Prune,
                        origin: self.id,
                        rreq_id: 0,
                        sender_is_member: self.is_member,
                    }),
                );
                self.mrt.remove_next_hop(old);
                self.nm_sent.remove(&old);
            }
        }
        self.mrt.enable_next_hop(best.via, false);
        self.mrt.set_upstream(best.via);
        self.mrt.group_seq = self.mrt.group_seq.max(best.group_seq);
        self.mrt.hops_to_leader = best.leader_hops.saturating_add(best.hops_to_tree);
        // Optimistic grace: a tree GRPH should arrive within one round.
        self.last_tree_grph = Some(api.now());
        api.send(
            best.via,
            MaodvMsg::Mact(MactPayload {
                group: self.group,
                kind: MactKind::Join,
                origin: self.id,
                rreq_id,
                sender_is_member: self.is_member,
            }),
        );
        self.exchange_nearest_member(api, best.via);
        up.push(Upcall::JoinedTree);
        api.count("maodv.mact_sent");
    }

    fn handle_rreq<C: MaodvCtx<X>>(&mut self, api: &mut C, from: NodeId, r: RreqPayload) {
        if r.origin == self.id {
            return;
        }
        let now = api.now();
        // Reverse route toward the origin.
        self.rt.update_allow_stale(
            r.origin,
            from,
            r.origin_seq,
            r.hop_count.saturating_add(1),
            now + self.cfg.active_route_timeout,
            now,
        );
        if !self.rreq_seen.insert((r.origin, r.rreq_id)) {
            return;
        }
        if r.join {
            // Only nodes with a *proven* live path to the leader answer;
            // this is what keeps a repairing/merging node from grafting
            // onto its own orphaned subtree. Never answer our own
            // upstream: our connectivity *is* the requester — replying
            // would weld a cycle.
            let can_reply = self.on_tree()
                && self.tree_connected(now)
                && self.mrt.upstream() != Some(r.origin)
                && (self.mrt.group_seq >= r.known_seq || self.canary_accept_stale_seq)
                && (r.repair_hops.is_none_or(|rh| self.mrt.hops_to_leader < rh)
                    || self.canary_accept_stale_seq);
            if can_reply {
                api.count("maodv.join_rrep_sent");
                api.send(
                    from,
                    MaodvMsg::Rrep(RrepPayload {
                        origin: r.origin,
                        rreq_id: r.rreq_id,
                        responder: self.id,
                        dest: self.id,
                        group: Some(self.group),
                        seq: self.mrt.group_seq,
                        hop_count: 0,
                        leader_hops: self.mrt.hops_to_leader,
                        responder_is_member: self.is_member,
                    }),
                );
                return;
            }
        } else {
            if r.dest == self.id {
                self.node_seq = self.node_seq.max(r.known_seq);
                api.count("maodv.unicast_rrep_sent");
                api.send(
                    from,
                    MaodvMsg::Rrep(RrepPayload {
                        origin: r.origin,
                        rreq_id: r.rreq_id,
                        responder: self.id,
                        dest: self.id,
                        group: None,
                        seq: self.node_seq,
                        hop_count: 0,
                        leader_hops: 0,
                        responder_is_member: self.is_member,
                    }),
                );
                return;
            }
            if let Some(route) = self.rt.lookup(r.dest, now) {
                if route.seq >= r.known_seq {
                    api.count("maodv.unicast_rrep_intermediate");
                    api.send(
                        from,
                        MaodvMsg::Rrep(RrepPayload {
                            origin: r.origin,
                            rreq_id: r.rreq_id,
                            responder: self.id,
                            dest: r.dest,
                            group: None,
                            seq: route.seq,
                            hop_count: route.hops,
                            leader_hops: 0,
                            responder_is_member: false,
                        }),
                    );
                    return;
                }
            }
        }
        // Rebroadcast the flood (jittered; see schedule_relay).
        if r.ttl > 1 {
            self.schedule_relay(
                api,
                MaodvMsg::Rreq(RreqPayload {
                    hop_count: r.hop_count.saturating_add(1),
                    ttl: r.ttl - 1,
                    ..r
                }),
            );
        }
    }

    fn handle_rrep<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        p: RrepPayload,
        up: &mut Vec<Upcall<X>>,
    ) {
        let now = api.now();
        if p.hop_count >= 2 * self.cfg.flood_ttl {
            // A reply circulating on stale reverse routes; kill the loop.
            api.count("maodv.rrep_loop_dropped");
            return;
        }
        let expires = now + self.cfg.active_route_timeout;
        // Forward route to the reply's destination/responder.
        self.rt.update_allow_stale(
            p.dest,
            from,
            p.seq,
            p.hop_count.saturating_add(1),
            expires,
            now,
        );
        if p.responder != p.dest {
            self.rt.update_allow_stale(
                p.responder,
                from,
                0,
                p.hop_count.saturating_add(1),
                expires,
                now,
            );
        }
        if p.origin == self.id {
            match p.group {
                Some(g) if g == self.group => {
                    if p.responder_is_member {
                        up.push(Upcall::MemberObserved {
                            member: p.responder,
                            hops: p.hop_count.saturating_add(1),
                        });
                    }
                    if let Some(j) = &mut self.join {
                        if j.rreq_id == p.rreq_id {
                            j.candidates.push(JoinCandidate {
                                via: from,
                                group_seq: p.seq,
                                hops_to_tree: p.hop_count.saturating_add(1),
                                leader_hops: p.leader_hops,
                            });
                        }
                    }
                }
                _ => {
                    // Unicast discovery answered: flush the buffer.
                    if let Some(d) = self.discoveries.remove(&p.dest) {
                        for x in d.buffer {
                            self.send_ext_routed(api, p.dest, x);
                        }
                    }
                }
            }
            return;
        }
        // Forward toward the origin along the reverse route.
        let Some(rev) = self.rt.lookup(p.origin, now) else {
            api.count("maodv.rrep_no_reverse_route");
            return;
        };
        let rev_next = rev.next_hop;
        if p.group.is_some() {
            // Join reply: remember the potential upstream; suppress
            // duplicates that are no better than what we already relayed.
            let key = (p.origin, p.rreq_id);
            let score = (p.seq, p.hop_count);
            if let Some(&(best_seq, best_hops)) = self.forwarded_rreps.get(&key) {
                if p.seq < best_seq || (p.seq == best_seq && p.hop_count >= best_hops) {
                    return;
                }
            }
            self.forwarded_rreps.insert(key, score);
            self.pending_joins.insert(
                key,
                PendingJoin {
                    upstream: from,
                    group_seq: p.seq,
                    hops_to_tree: p.hop_count.saturating_add(1),
                    leader_hops: p.leader_hops,
                    expires: now + self.cfg.rrep_wait * 4,
                },
            );
            // Inactive entries for the potential branch, per draft-05.
            self.mrt.ensure_next_hop(from);
            self.mrt.ensure_next_hop(rev_next);
        }
        api.send(
            rev_next,
            MaodvMsg::Rrep(RrepPayload {
                hop_count: p.hop_count.saturating_add(1),
                ..p
            }),
        );
    }

    fn handle_mact<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        m: MactPayload,
        up: &mut Vec<Upcall<X>>,
    ) {
        if m.group != self.group {
            return;
        }
        match m.kind {
            MactKind::Prune => {
                api.count("maodv.prune_received");
                let was_upstream = self.mrt.upstream() == Some(from);
                self.mrt.remove_next_hop(from);
                self.nm_sent.remove(&from);
                self.propagate_nearest_member(api);
                if was_upstream && !self.is_leader && self.on_tree() && self.join.is_none() {
                    // Our upstream cut us off: repair downstream-initiated,
                    // exactly as for a detected link break.
                    let hops = self.mrt.hops_to_leader;
                    self.start_join(api, Some(hops));
                } else {
                    self.leaf_prune_check(api);
                }
            }
            MactKind::Join => {
                api.count("maodv.mact_join_received");
                let was_on_tree = self.on_tree();
                self.mrt.enable_next_hop(from, m.sender_is_member);
                self.exchange_nearest_member(api, from);
                if !was_on_tree {
                    // We are an intermediate node being grafted: continue
                    // the activation toward the tree.
                    if let Some(p) = self.pending_joins.remove(&(m.origin, m.rreq_id)) {
                        self.mrt.enable_next_hop(p.upstream, false);
                        self.mrt.set_upstream(p.upstream);
                        self.mrt.group_seq = self.mrt.group_seq.max(p.group_seq);
                        self.mrt.hops_to_leader = p.leader_hops.saturating_add(p.hops_to_tree);
                        self.last_tree_grph = Some(api.now());
                        api.send(
                            p.upstream,
                            MaodvMsg::Mact(MactPayload {
                                group: self.group,
                                kind: MactKind::Join,
                                origin: m.origin,
                                rreq_id: m.rreq_id,
                                sender_is_member: self.is_member,
                            }),
                        );
                        self.exchange_nearest_member(api, p.upstream);
                        up.push(Upcall::JoinedTree);
                    }
                    // else: stale MACT with no pending record; the tick's
                    // upstream-less repair rule will fix us up.
                }
                self.propagate_nearest_member(api);
            }
        }
    }

    fn handle_grph<C: MaodvCtx<X>>(&mut self, api: &mut C, from: NodeId, g: GrphPayload) {
        if g.group != self.group {
            return;
        }
        if g.tree {
            self.handle_tree_grph(api, from, g);
            return;
        }
        if !self.grph_seen.insert((g.leader, g.group_seq)) {
            return;
        }
        if self.is_leader && g.leader != self.id && self.id > g.leader {
            // Two leaders: the higher id defers and grafts its whole
            // subtree onto the other partition (simplified merge, see
            // DESIGN.md §5). Only leader-connected nodes answer join
            // RREQs, so the graft cannot land in our own subtree.
            api.count("maodv.leader_merge_defer");
            self.is_leader = false;
            self.mrt.leader = Some(g.leader);
            self.mrt.group_seq = self.mrt.group_seq.max(g.group_seq);
            // Grace period: our subtree stays "connected" through us
            // while the graft completes.
            self.last_tree_grph = Some(api.now());
            if self.join.is_none() {
                self.start_join(api, None);
            }
        } else {
            // Freshness only; leader/hops adoption is the tree copy's job.
            self.mrt.group_seq = self.mrt.group_seq.max(g.group_seq);
        }
        if g.ttl > 1 {
            self.schedule_relay(
                api,
                MaodvMsg::Grph(GrphPayload {
                    hop_count: g.hop_count.saturating_add(1),
                    ttl: g.ttl - 1,
                    ..g
                }),
            );
        }
    }

    /// A tree-scoped GRPH: adopt and relay downward only when it arrives
    /// over our upstream tree edge — that chain of custody is what makes
    /// it a proof of leader connectivity.
    fn handle_tree_grph<C: MaodvCtx<X>>(&mut self, api: &mut C, from: NodeId, g: GrphPayload) {
        if self.is_leader || self.mrt.upstream() != Some(from) {
            return;
        }
        if let Some((leader, seq)) = self.adopted_grph {
            if g.leader == leader && g.group_seq <= seq {
                return;
            }
        }
        self.adopted_grph = Some((g.leader, g.group_seq));
        self.mrt.leader = Some(g.leader);
        self.mrt.group_seq = self.mrt.group_seq.max(g.group_seq);
        self.mrt.hops_to_leader = g.hop_count.saturating_add(1);
        self.last_tree_grph = Some(api.now());
        api.count("maodv.tree_grph_adopted");
        if g.ttl > 1 && self.mrt.enabled().any(|h| h.node != from) {
            self.schedule_relay(
                api,
                MaodvMsg::Grph(GrphPayload {
                    hop_count: g.hop_count.saturating_add(1),
                    ttl: g.ttl - 1,
                    ..g
                }),
            );
        }
    }

    fn handle_data<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        d: DataHeader,
        up: &mut Vec<Upcall<X>>,
    ) {
        if d.group != self.group || d.origin == self.id {
            return;
        }
        let now = api.now();
        // Free reverse route toward the origin (used by gossip replies).
        self.rt.update_allow_stale(
            d.origin,
            from,
            self.rt.known_seq(d.origin).unwrap_or(0),
            d.hops.saturating_add(1),
            now + self.cfg.active_route_timeout,
            now,
        );
        // Tree discipline: accept only over an activated tree edge.
        if !self.mrt.next_hop(from).is_some_and(|h| h.enabled) {
            api.count("maodv.data_non_tree_ignored");
            return;
        }
        if !self.data_seen.insert((d.origin, d.seq)) {
            api.count("maodv.data_duplicate");
            return;
        }
        if self.is_member {
            up.push(Upcall::DataReceived {
                origin: d.origin,
                seq: d.seq,
                payload_len: d.payload_len,
                hops: d.hops.saturating_add(1),
            });
            up.push(Upcall::MemberObserved {
                member: d.origin,
                hops: d.hops.saturating_add(1),
            });
        }
        // Forward along the remaining tree edges (one broadcast reaches
        // them all; non-tree neighbours ignore it).
        if self.mrt.enabled().any(|h| h.node != from) {
            api.count("maodv.data_forwarded");
            api.broadcast(MaodvMsg::Data(DataHeader {
                hops: d.hops.saturating_add(1),
                ..d
            }));
        }
    }

    fn handle_routed<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        r: RoutedExt<X>,
        up: &mut Vec<Upcall<X>>,
    ) {
        let now = api.now();
        // The routed frame teaches us the way back to its source.
        self.rt.update_allow_stale(
            r.src,
            from,
            self.rt.known_seq(r.src).unwrap_or(0),
            r.hops.saturating_add(1),
            now + self.cfg.active_route_timeout,
            now,
        );
        if r.dest == self.id {
            up.push(Upcall::ExtRouted {
                src: r.src,
                hops: r.hops.saturating_add(1),
                msg: r.payload,
            });
            return;
        }
        if r.ttl <= 1 {
            api.count("maodv.routed_ttl_expired");
            return;
        }
        let Some(route) = self.rt.lookup(r.dest, now) else {
            api.count("maodv.routed_no_route");
            return;
        };
        let next = route.next_hop;
        self.rt.refresh(r.dest, now + self.cfg.active_route_timeout);
        api.send(
            next,
            MaodvMsg::Routed(RoutedExt {
                ttl: r.ttl - 1,
                hops: r.hops.saturating_add(1),
                ..r
            }),
        );
    }

    fn handle_tree_break<C: MaodvCtx<X>>(
        &mut self,
        api: &mut C,
        neighbor: NodeId,
        up: &mut Vec<Upcall<X>>,
    ) {
        let was_upstream = self.mrt.upstream() == Some(neighbor);
        self.mrt.remove_next_hop(neighbor);
        self.nm_sent.remove(&neighbor);
        self.propagate_nearest_member(api);
        api.count("maodv.tree_link_break");
        if was_upstream && !self.is_leader {
            // Paper §3: only the downstream node repairs, advertising its
            // old distance to the leader so only closer nodes answer.
            if self.join.is_none() {
                let hops = self.mrt.hops_to_leader;
                self.start_join(api, Some(hops));
            }
        } else {
            // Upstream side of the break: prune ourselves if now useless.
            self.leaf_prune_check(api);
        }
        let _ = up;
    }

    /// A non-member router whose tree degree fell to one is a useless
    /// leaf: prune (cascades upstream per §3).
    fn leaf_prune_check<C: MaodvCtx<X>>(&mut self, api: &mut C) {
        if self.is_member || self.is_leader {
            return;
        }
        if self.mrt.enabled_count() == 1 {
            let last = self.mrt.enabled().next().expect("count checked").node;
            api.count("maodv.prune_sent");
            api.send(
                last,
                MaodvMsg::Mact(MactPayload {
                    group: self.group,
                    kind: MactKind::Prune,
                    origin: self.id,
                    rreq_id: 0,
                    sender_is_member: false,
                }),
            );
            self.mrt.remove_next_hop(last);
            self.nm_sent.remove(&last);
        }
    }

    /// Sends our advertised `nearest_member` value to a newly activated
    /// neighbour (bootstraps the exchange in both directions).
    fn exchange_nearest_member<C: MaodvCtx<X>>(&mut self, api: &mut C, to: NodeId) {
        let value = self.mrt.advertised_nearest_member(to, self.is_member);
        self.nm_sent.insert(to, value);
        api.send(
            to,
            MaodvMsg::NmUpdate {
                group: self.group,
                value,
            },
        );
    }

    /// Sends `nearest_member` advertisements to every enabled next hop
    /// whose value changed since last sent (§4.2).
    fn propagate_nearest_member<C: MaodvCtx<X>>(&mut self, api: &mut C) {
        for (to, value) in self.mrt.advertisements(self.is_member) {
            if self.nm_sent.get(&to) != Some(&value) {
                self.nm_sent.insert(to, value);
                api.send(
                    to,
                    MaodvMsg::NmUpdate {
                        group: self.group,
                        value,
                    },
                );
                api.count("maodv.nm_update_sent");
            }
        }
    }
}
