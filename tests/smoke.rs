//! CI smoke test: the `quickstart` example's scenario, scaled down to a
//! few simulated seconds of traffic, driven end-to-end through the full
//! node stack (kernel → mobility → PHY/MAC → MAODV → Anonymous Gossip).
//!
//! The unit suites exercise each crate in isolation; this test exists
//! so CI always runs at least one complete multi-node simulation wired
//! exactly the way the examples wire it, and fails loudly if the stack
//! stops delivering anything at all.

use ag_core::{AgConfig, AnonymousGossip};
use ag_maodv::{GroupId, MaodvConfig, TrafficSource};
use ag_mobility::{Field, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::{SimDuration, SimTime};

/// The quickstart scenario (15 walkers, 5 members, paper field and
/// radio), with the source emitting for only a few simulated seconds.
fn quickstart_engine(seed: u64) -> (Engine<AnonymousGossip>, Vec<NodeId>, TrafficSource) {
    let n = 15;
    let members: Vec<NodeId> = (0..5).map(NodeId::new).collect();
    let source = members[0];
    let field = Field::paper();
    let splitter = SeedSplitter::new(seed);

    // 40 packets over 8 simulated seconds, after a short warm-up for
    // the multicast tree to form.
    let traffic = TrafficSource::compact(
        SimTime::from_secs(10),
        SimDuration::from_millis(200),
        40,
        64,
    );

    let nodes: Vec<NodeSetup<AnonymousGossip>> = (0..n)
        .map(|i| {
            let id = NodeId::new(i);
            let mut place_rng = splitter.stream(StreamKind::Placement, u64::from(i));
            NodeSetup {
                mobility: Box::new(RandomWaypoint::new(
                    field,
                    SpeedRange::new(0.0, 2.0),
                    PauseRange::paper(),
                    &mut place_rng,
                )),
                protocol: AnonymousGossip::new(
                    AgConfig::paper_default(),
                    MaodvConfig::paper_default(),
                    id,
                    GroupId(0),
                    members.contains(&id),
                    (id == source).then_some(traffic),
                ),
            }
        })
        .collect();

    let engine = Engine::new(PhyParams::paper_default(75.0), seed, nodes);
    (engine, members, traffic)
}

#[test]
fn quickstart_scenario_delivers_end_to_end() {
    let (mut engine, members, traffic) = quickstart_engine(42);
    engine.run_until(SimTime::from_secs(30));

    let sent = traffic.packet_count();
    assert_eq!(sent, 40);

    // Every member must have received something, and the source has all
    // of its own packets by construction.
    let mut total = 0u64;
    for &m in &members {
        let d = engine.protocol(m).delivery();
        assert!(
            d.distinct() > 0,
            "member {m} received nothing in the smoke scenario"
        );
        assert!(d.distinct() <= sent);
        assert_eq!(d.distinct(), d.via_tree() + d.via_gossip());
        total += d.distinct();
    }
    assert!(
        total > sent,
        "members together should hold more than one copy of the stream (got {total})"
    );

    // The radio actually carried traffic.
    assert!(engine.counters().get("mac.broadcast_tx") > 0);
}

#[test]
fn quickstart_scenario_is_deterministic() {
    let deliveries = |seed| {
        let (mut engine, members, _) = quickstart_engine(seed);
        engine.run_until(SimTime::from_secs(30));
        members
            .iter()
            .map(|&m| engine.protocol(m).delivery().distinct())
            .collect::<Vec<_>>()
    };
    assert_eq!(deliveries(7), deliveries(7));
}
