//! Emits the committed perf-trajectory artifact (`BENCH_<pr>.json`).
//!
//! Unlike the criterion targets, this is a plain binary (`harness =
//! false`) that measures a fixed set of legs once, with generous op
//! counts, and writes a machine-readable JSON file. Environment knobs:
//!
//! * `AG_BENCH_OUT` — output path (default `BENCH_new.json`).
//! * `AG_BENCH_BASELINE` — path to a committed `BENCH_*.json`; when
//!   set, the run compares itself against it and exits non-zero on a
//!   >10 % events/second regression in any leg (the CI gate).
//! * `AG_BENCH_MERGE_BASELINE` — path to a `BENCH_*.json` measured
//!   under the seed `BinaryHeap` scheduler; matching legs gain
//!   `baseline_eps`/`speedup` fields (used once, to produce the
//!   committed artifact's calendar-vs-heap columns).
//! * `AG_BENCH_QUICK` — any value: shrink op counts ~10× (smoke runs).
//! * `AG_BENCH_PR` — PR number stamped into the JSON (default 6).
//!
//! Built with `--features alloc-count`, a counting global allocator is
//! installed and every leg additionally records exact `allocs` /
//! `allocs_per_event` figures: the queue and stress legs count the
//! whole timed region, the engine legs count a *steady-state
//! continuation window* run after the timed region (construction and
//! warm-up growth excluded — the number the zero-allocation hot-path
//! diet is accountable for — quick mode omits these fields, since its
//! shrunk warm-up never reaches steady state). The counting itself
//! costs one relaxed
//! atomic increment per allocation, which a dieted hot path performs
//! zero of, so timings stay comparable either way.
//!
//! Determinism: all workloads are pure functions of fixed seeds; only
//! the wall-clock timings vary between runs (allocation counts do not).

// This harness measures real wall-clock time on purpose (it is the
// bench crate, the wall-clock discipline's documented allowlist entry);
// the attribute grants the same exception to the clippy layer.
#![allow(clippy::disallowed_methods)]
use std::collections::BTreeMap;
use std::time::Instant;

use ag_bench::perf::{compare, extract_metrics, peak_rss_kb, render_json, Leg};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ag_bench::alloc::CountingAllocator = ag_bench::alloc::CountingAllocator::new();

/// Allocations observed so far; 0 without the `alloc-count` feature.
fn alloc_count() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        ALLOC.count()
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// Attaches an allocation count only when the counting allocator is
/// actually installed (otherwise the delta is meaninglessly zero and
/// the JSON field would overstate what was measured).
fn maybe_with_allocs(leg: Leg, allocs: u64) -> Leg {
    if cfg!(feature = "alloc-count") {
        leg.with_allocs(allocs)
    } else {
        leg
    }
}
use ag_bench::{beacon_engine, dense_engine};
use ag_harness::{
    run_counting, run_seeds, ChurnParams, Parallelism, ProtocolKind, ReceptionModel, Scenario,
};
use ag_sim::reference::BinaryHeapQueue;
use ag_sim::{EventQueue, SimDuration, SimTime};

/// SplitMix64 step — a self-contained deterministic delay source so
/// the queue legs don't depend on the sim RNG crate's stream layout.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pending events held by the queue legs. Sized for the dense end of
/// the roadmap's scenarios (hundreds of nodes × MAC timers, frame
/// completions and protocol timers each), where the heap's lower tree
/// levels fall out of cache but the calendar's day buckets stay O(1).
const PREFILL: usize = 65_536;

/// Hold-pattern workload: `ops` pop-then-reschedule steps over a queue
/// kept at [`PREFILL`] pending events, with timer-ish delays uniform in
/// [50 µs, 5 ms) — the MAC-backoff horizon the calendar queue is tuned
/// for. The macro exists because the calendar queue and the reference
/// heap share an API but no trait.
macro_rules! steady_leg {
    ($mk:expr, $ops:expr) => {{
        let mut q = $mk;
        let mut rng = 0xc0ffee_u64;
        let mut now = SimTime::ZERO;
        for _ in 0..PREFILL {
            let d = SimDuration::from_nanos(50_000 + splitmix(&mut rng) % 4_950_000);
            q.schedule(now + d, 0u32);
        }
        let a0 = alloc_count();
        let start = Instant::now();
        for _ in 0..$ops {
            let (t, _) = q.pop().expect("hold pattern never empties");
            now = t;
            let d = SimDuration::from_nanos(50_000 + splitmix(&mut rng) % 4_950_000);
            q.schedule(now + d, 0u32);
        }
        (start.elapsed().as_secs_f64(), alloc_count() - a0)
    }};
}

/// Same-instant burst workload: events arrive 64 at a time at one
/// timestamp (collision re-arms after a busy channel), stressing FIFO
/// tie discipline and bucket chains.
macro_rules! ties_leg {
    ($mk:expr, $ops:expr) => {{
        let mut q = $mk;
        let mut rng = 0xbeef_u64;
        let mut now = SimTime::ZERO;
        let a0 = alloc_count();
        let start = Instant::now();
        for _ in 0..$ops {
            if q.len() < PREFILL {
                let t = now + SimDuration::from_nanos(100_000 + splitmix(&mut rng) % 400_000);
                for _ in 0..64 {
                    q.schedule(t, 0u32);
                }
            }
            let (t, _) = q.pop().expect("burst refill keeps queue non-empty");
            now = t;
        }
        (start.elapsed().as_secs_f64(), alloc_count() - a0)
    }};
}

/// Fastest of `n` repeats. Wall-clock noise is one-sided (scheduling,
/// frequency scaling and cache pollution only ever slow a run down), so
/// the minimum is the best estimator of the code's true cost — and the
/// one that keeps the 10 % regression gate from flapping.
fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn engine_leg(
    name: &str,
    repeats: usize,
    mk: impl Fn() -> ag_net::Engine<ag_bench::Beacon>,
    sim_secs: u64,
    probe_secs: Option<u64>,
) -> Leg {
    let mut events = 0;
    let mut allocs = 0u64;
    let secs = best_of(repeats, || {
        let mut engine = mk();
        let start = Instant::now();
        engine.run_until(SimTime::from_secs(sim_secs));
        let secs = start.elapsed().as_secs_f64();
        events = engine.events_processed();
        // Steady-state allocation probe, outside the timed region: by
        // now every scratch buffer, MAC queue and index bucket has hit
        // its high-water capacity, so a continuation window measures
        // exactly the per-event allocations the hot-path diet owes —
        // expected 0. Quick mode passes `None`: a few warm-up seconds
        // are not steady state, and attaching the still-growing count
        // would false-fail the exact alloc gate against a full-mode
        // baseline.
        if let Some(probe) = probe_secs {
            if cfg!(feature = "alloc-count") {
                let a0 = alloc_count();
                engine.run_until(SimTime::from_secs(sim_secs + probe));
                allocs = alloc_count() - a0;
            }
        }
        secs
    });
    if probe_secs.is_some() {
        maybe_with_allocs(Leg::new(name, events, secs), allocs)
    } else {
        Leg::new(name, events, secs)
    }
}

fn stress_matrix_run(sim_secs: u64, seeds: &[u64], par: Parallelism) -> (u64, f64) {
    // The harshest cell family of the stress matrix: log-normal
    // shadowing, aggressive churn, vehicular speed.
    let mut sc = Scenario::paper(40, 75.0, 2.0)
        .with_duration_secs(sim_secs)
        .with_reception(ReceptionModel::Shadowing {
            sigma_db: 8.0,
            path_loss_exp: 3.0,
        });
    sc.churn = Some(ChurnParams::new(40.0, 20.0));
    // The 3 protocols × N seeds jobs are independent pure functions of
    // `(scenario, seed)`; farm them over the caller's worker pool
    // (`AG_THREADS` for the timed region, pinned serial for the alloc
    // pass). Results come back in job order, so the event total — and
    // every simulation output — is identical to the serial loop for
    // any worker count; only the wall-clock denominator changes with
    // the host's core budget.
    let kinds = [
        ProtocolKind::Gossip,
        ProtocolKind::Maodv,
        ProtocolKind::Odmrp,
    ];
    let jobs = (kinds.len() * seeds.len()) as u64;
    let start = Instant::now();
    let events = run_seeds(jobs, par, |job| {
        let kind = kinds[job as usize / seeds.len()];
        let seed = seeds[job as usize % seeds.len()];
        run_counting(&sc, seed, kind).1
    })
    .iter()
    .sum();
    (events, start.elapsed().as_secs_f64())
}

fn stress_matrix_leg(repeats: usize, sim_secs: u64, seeds: &[u64]) -> Leg {
    // Unlike the engine legs, the alloc count spans a whole run
    // including engine construction — an honest total for the
    // full-stack workload rather than a steady-state probe. It is
    // measured in a separate, always-serial pass: the timed region
    // below parallelizes across `AG_THREADS`, and worker-pool
    // bookkeeping (thread stacks, join handles) would make a
    // whole-region count depend on the host's core budget — fatal
    // for the exact-integer alloc gate, whose baseline must
    // reproduce on any machine. The pass runs *before* the timed
    // region for the same reason: run order is part of the count
    // (first-touch thread-local and lazy-global allocations land in
    // whichever stress pass goes first, and if the parallel region
    // went first they would land on its worker threads or not,
    // depending on the pool size). Serial pass first, the count only
    // depends on the always-serial legs that precede it.
    let allocs = if cfg!(feature = "alloc-count") {
        // Engines built through the harness wire `AG_THREADS` into the
        // tile-sharded engine, which allocates its worker lanes
        // eagerly — so the env knob must be pinned too, or the count
        // would differ between a 1-core and an 8-core host even with
        // the job pool serial. Save/restore is race-free: the process
        // is still single-threaded here (the parallel timed region
        // runs after this pass, and every earlier leg is serial).
        let saved = std::env::var_os("AG_THREADS");
        std::env::set_var("AG_THREADS", "1");
        let a0 = alloc_count();
        stress_matrix_run(sim_secs, seeds, Parallelism::serial());
        let counted = alloc_count() - a0;
        match saved {
            Some(v) => std::env::set_var("AG_THREADS", v),
            None => std::env::remove_var("AG_THREADS"),
        }
        counted
    } else {
        0
    };
    let mut events = 0;
    let secs = best_of(repeats, || {
        let (ev, secs) = stress_matrix_run(sim_secs, seeds, Parallelism::auto());
        events = ev;
        secs
    });
    maybe_with_allocs(Leg::new("stress_matrix_harsh", events, secs), allocs)
}

fn main() {
    let quick = std::env::var_os("AG_BENCH_QUICK").is_some();
    let queue_ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let engine_secs: u64 = if quick { 5 } else { 120 };
    let dense_secs: u64 = if quick { 5 } else { 60 };
    let stress_seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
    let repeats: usize = if quick { 1 } else { 3 };
    // Queue legs are the cheapest and the most cache/TLB-sensitive;
    // extra repeats buy the most gate stability per second there.
    let queue_repeats: usize = if quick { 1 } else { 5 };

    // Simulated seconds the engine legs keep running after the timed
    // region to measure steady-state allocations (tens of thousands of
    // events at these rates). Quick mode skips the probe entirely: the
    // shrunk warm-up has not reached steady state, and the compare
    // step skips alloc checks for legs without alloc data.
    let probe_secs: Option<u64> = if quick { None } else { Some(5) };

    let mut legs = Vec::new();

    eprintln!("measuring queue legs ({queue_ops} ops each, best of {queue_repeats})...");
    let queue_leg = |name: &str, mut f: Box<dyn FnMut() -> (f64, u64)>| {
        let mut allocs = 0u64;
        let secs = best_of(queue_repeats, || {
            let (s, a) = f();
            allocs = a;
            s
        });
        maybe_with_allocs(Leg::new(name, queue_ops, secs), allocs)
    };
    legs.push(queue_leg(
        "queue_calendar_steady",
        Box::new(move || steady_leg!(EventQueue::<u32>::new(), queue_ops)),
    ));
    legs.push(queue_leg(
        "queue_heap_steady",
        Box::new(move || steady_leg!(BinaryHeapQueue::<u32>::new(), queue_ops)),
    ));
    legs.push(queue_leg(
        "queue_calendar_dense_ties",
        Box::new(move || ties_leg!(EventQueue::<u32>::new(), queue_ops)),
    ));
    legs.push(queue_leg(
        "queue_heap_dense_ties",
        Box::new(move || ties_leg!(BinaryHeapQueue::<u32>::new(), queue_ops)),
    ));

    eprintln!("measuring engine legs (best of {repeats})...");
    legs.push(engine_leg(
        "engine_beacon_500_grid",
        repeats,
        || beacon_engine(500, 1, true),
        engine_secs,
        probe_secs,
    ));
    legs.push(engine_leg(
        "engine_dense_250",
        repeats,
        || dense_engine(250, 1),
        dense_secs,
        probe_secs,
    ));

    eprintln!("measuring stress-matrix leg (best of {repeats})...");
    legs.push(stress_matrix_leg(repeats, engine_secs, stress_seeds));

    let baseline_eps: BTreeMap<String, f64> = match std::env::var("AG_BENCH_MERGE_BASELINE") {
        Ok(path) => {
            let path = resolve(&path);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read merge baseline {}: {e}", path.display()));
            extract_metrics(&text).into_iter().collect()
        }
        Err(_) => BTreeMap::new(),
    };

    let pr: u32 = std::env::var("AG_BENCH_PR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let json = render_json(pr, &legs, &baseline_eps, peak_rss_kb());

    for leg in &legs {
        let allocs = match leg.allocs {
            Some(a) => format!("  {a:>9} allocs"),
            None => String::new(),
        };
        eprintln!(
            "  {:<28} {:>12.0} ev/s  {:>8.1} ns/ev{allocs}",
            leg.name,
            leg.events_per_sec(),
            leg.ns_per_event()
        );
    }

    let out = resolve(&std::env::var("AG_BENCH_OUT").unwrap_or_else(|_| "BENCH_new.json".into()));
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());

    if let Ok(baseline_path) = std::env::var("AG_BENCH_BASELINE") {
        let baseline_path = resolve(&baseline_path);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", baseline_path.display()));
        match compare(&baseline, &json, 0.10) {
            Ok(report) => eprint!("{report}"),
            Err(report) => {
                eprint!("{report}");
                eprintln!("perf regression vs {} (>10% drop)", baseline_path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Resolves a path from the environment against the *workspace* root.
/// Cargo runs bench binaries with cwd = the package dir
/// (`crates/bench`), but callers — the CI gate above all — pass paths
/// like `BENCH_6.json` relative to the repo root.
fn resolve(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}
