//! Neighbour liveness tracking (HELLO-based link sensing).
//!
//! Every frame heard from a neighbour refreshes it; a neighbour that has
//! been silent for `allowed_hello_loss × hello_interval` (2.4 s with the
//! paper's settings) is considered gone and any tree/route state through
//! it is torn down by the caller.

use ag_sim::hash::DetHashMap as HashMap;

use ag_net::NodeId;
use ag_sim::{SimDuration, SimTime};

/// Tracks when each neighbour was last heard.
///
/// # Example
///
/// ```
/// use ag_maodv::neighbors::NeighborTable;
/// use ag_net::NodeId;
/// use ag_sim::{SimTime, SimDuration};
///
/// let timeout = SimDuration::from_millis(2400);
/// let mut nt = NeighborTable::new(timeout);
/// nt.heard(NodeId::new(3), SimTime::ZERO);
/// assert!(nt.is_alive(NodeId::new(3), SimTime::ZERO + SimDuration::from_secs(1)));
/// assert!(!nt.is_alive(NodeId::new(3), SimTime::ZERO + SimDuration::from_secs(3)));
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    last_heard: HashMap<NodeId, SimTime>,
    timeout: SimDuration,
}

impl NeighborTable {
    /// Creates a table with the given liveness timeout.
    pub fn new(timeout: SimDuration) -> Self {
        NeighborTable {
            last_heard: HashMap::default(),
            timeout,
        }
    }

    /// Records that any frame from `who` was heard at `now`.
    pub fn heard(&mut self, who: NodeId, now: SimTime) {
        self.last_heard.insert(who, now);
    }

    /// `true` if `who` has been heard within the timeout.
    pub fn is_alive(&self, who: NodeId, now: SimTime) -> bool {
        self.last_heard
            .get(&who)
            .is_some_and(|&t| now.duration_since(t) < self.timeout)
    }

    /// When `who` was last heard, if ever.
    pub fn last_heard(&self, who: NodeId) -> Option<SimTime> {
        self.last_heard.get(&who).copied()
    }

    /// Removes and returns every neighbour that has timed out by `now`,
    /// in id order (deterministic regardless of hash-map seeding).
    pub fn sweep_dead(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.timeout;
        let mut dead: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, &t)| now.duration_since(t) >= timeout)
            .map(|(n, _)| *n)
            .collect();
        dead.sort_unstable();
        for n in &dead {
            self.last_heard.remove(n);
        }
        dead
    }

    /// Forgets `who` entirely.
    pub fn forget(&mut self, who: NodeId) {
        self.last_heard.remove(&who);
    }

    /// All currently live neighbours at `now`, in id order.
    pub fn alive(&self, now: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, &t)| now.duration_since(t) < self.timeout)
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }

    /// Number of tracked (possibly stale) neighbours.
    pub fn len(&self) -> usize {
        self.last_heard.len()
    }

    /// `true` if no neighbour was ever heard.
    pub fn is_empty(&self) -> bool {
        self.last_heard.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nt() -> NeighborTable {
        NeighborTable::new(SimDuration::from_millis(2400))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fresh_neighbor_is_alive() {
        let mut n = nt();
        n.heard(NodeId::new(1), t(0));
        assert!(n.is_alive(NodeId::new(1), t(2399)));
        assert!(!n.is_alive(NodeId::new(1), t(2400)));
        assert!(!n.is_alive(NodeId::new(2), t(0)));
    }

    #[test]
    fn hearing_refreshes() {
        let mut n = nt();
        n.heard(NodeId::new(1), t(0));
        n.heard(NodeId::new(1), t(2000));
        assert!(n.is_alive(NodeId::new(1), t(4000)));
        assert_eq!(n.last_heard(NodeId::new(1)), Some(t(2000)));
    }

    #[test]
    fn sweep_removes_only_dead() {
        let mut n = nt();
        n.heard(NodeId::new(1), t(0));
        n.heard(NodeId::new(2), t(3000));
        let dead = n.sweep_dead(t(4000));
        assert_eq!(dead, vec![NodeId::new(1)]);
        assert_eq!(n.len(), 1);
        assert!(n.is_alive(NodeId::new(2), t(4000)));
        // Swept neighbours are fully forgotten.
        assert_eq!(n.last_heard(NodeId::new(1)), None);
    }

    #[test]
    fn alive_is_sorted() {
        let mut n = nt();
        n.heard(NodeId::new(5), t(0));
        n.heard(NodeId::new(2), t(0));
        n.heard(NodeId::new(9), t(0));
        assert_eq!(
            n.alive(t(1)),
            vec![NodeId::new(2), NodeId::new(5), NodeId::new(9)]
        );
    }

    #[test]
    fn forget_and_empty() {
        let mut n = nt();
        assert!(n.is_empty());
        n.heard(NodeId::new(1), t(0));
        n.forget(NodeId::new(1));
        assert!(n.is_empty());
    }
}
