//! The discrete-event network engine.
//!
//! [`Engine`] owns the shared wireless channel, every node's MAC, mobility
//! model and RNG streams, and an upper-layer [`Protocol`] instance per
//! node. It advances simulated time by draining an [`EventQueue`] (the
//! calendar-queue scheduler in `ag-sim`); the six event kinds are
//! protocol timers, MAC backoff attempts, transmission completions,
//! mobility leg transitions, spatial-index window refreshes, and (when
//! churn is enabled) radio fail/recover toggles. Cancellable events
//! (`MacAttempt`, `GridRefresh`) carry a generation token and are
//! dropped at dispatch when stale — the queue itself never needs a
//! cancel operation or tombstones.
//!
//! Channel semantics (see crate docs and DESIGN.md §5): unit-disk
//! audibility at `PhyParams::range_m`, any overlapping audible
//! transmission corrupts a reception, unicast is ACKed/retried, broadcast
//! is fire-and-forget.

use ag_mobility::{LegSample, Mobility, Vec2};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::stats::CounterSet;
use ag_sim::{EventQueue, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::ctx::{state_digest, Choice, Dispatch, ProtoCtx, TraceRecord};
use crate::grid::{AirIndex, NodeGrid, TxShot};
use crate::mac::{Mac, MacState, OutFrame};
use crate::{Message, NodeId, PhyParams, Protocol, ReceptionModel, RxKind, TimerKey};

/// Largest node count for which the engine pre-allocates the dense
/// `n × n` per-link shadowing cache (8 MiB of `f64` at the cap). Above
/// this, shadowing decisions recompute the Box–Muller transform per
/// reception, as before.
const SHADOW_CACHE_MAX_NODES: usize = 1024;

/// Node-grid cell size as a fraction of the radio range. Cells at the
/// full range make every disk query fetch a ~3 × 3-cell box — nine
/// times the disk's area in candidates, all paying the dedupe-and-
/// distance test. Half-range cells tighten the fetched box (and halve
/// each node's bucketing-window smear) for a fraction of the per-query
/// work; the exact per-candidate distance test makes the cell size
/// invisible in results. Below one half, per-query cell iteration
/// overhead starts winning back the savings.
const GRID_CELL_FACTOR: f64 = 0.5;

/// One scheduled kernel event.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// An upper-layer timer fires at `node`.
    Timer { node: usize, key: TimerKey },
    /// `node`'s armed backoff expires; `gen` detects staleness.
    MacAttempt { node: usize, gen: u64 },
    /// Transmission `tx_id` leaves the air.
    TxEnd { tx_id: u64 },
    /// `node`'s mobility model reaches a leg transition.
    Mobility { node: usize },
    /// `node`'s grid bucketing window expires; slide it forward. `gen`
    /// detects windows orphaned by a leg change. Touches only the
    /// spatial index — never RNGs or protocol state — so these events
    /// cannot perturb the simulation.
    GridRefresh { node: usize, gen: u64 },
    /// `node`'s radio toggles between up and down (churn; only
    /// scheduled when [`PhyParams::churn`] is set).
    Churn { node: usize },
}

/// The sender and payload of a transmission currently in the air; its
/// timing and geometry live in the [`AirIndex`].
#[derive(Debug)]
struct PendingTx<M> {
    sender: usize,
    frame: OutFrame<M>,
}

/// Fewer live transmissions than this and a parallel precompute pass
/// cannot amortize its fork-join cost; the engine stays serial. Purely
/// a performance knob — results are bit-identical either way, because
/// a precomputed receiver set is only ever used when its validity
/// stamps prove the serial path would compute exactly the same thing.
const PAR_BATCH_FLOOR: usize = 64;

/// One transmission's receiver set, computed ahead of its `TxEnd` by a
/// tile worker, plus the validity stamps recorded when the pass ran.
#[derive(Debug)]
struct TxPrecomp {
    /// Accepted receivers, ascending node order (exactly what
    /// [`World::uncorrupted_receivers`] would return).
    receivers: Vec<usize>,
    /// In-range receptions lost to overlapping transmissions.
    collisions: u64,
    /// In-range, uncollided receptions lost to the reception model.
    channel_drops: u64,
    /// [`NodeGrid::disk_stamp`] over the query disk at pass time.
    grid_stamp: u64,
    /// [`AirIndex::overlap_stamp`] over twice the range at pass time.
    air_stamp: u64,
}

/// One precompute job: a live transmission, snapshotted serially
/// (shot, sender, validity stamps) before the workers fork.
#[derive(Debug, Clone, Copy)]
struct PrecompJob {
    id: u64,
    shot: TxShot,
    sender: u32,
    grid_stamp: u64,
    air_stamp: u64,
}

/// One column-tile's worker state: its share of the pass's jobs, its
/// reusable scan buffers, and its outputs. Owned by [`ParEngine`] so
/// every buffer survives between passes — the pass itself is
/// allocation-free once the buffers reach their steady-state sizes.
#[derive(Debug, Default)]
struct WorkerLane {
    jobs: Vec<PrecompJob>,
    /// Receiver buffers handed out to this lane's jobs (recycled
    /// through [`ParEngine::spare`] after consumption).
    bufs: Vec<Vec<usize>>,
    cands: Vec<u32>,
    overlaps: Vec<Vec2>,
    done: Vec<(u64, TxPrecomp)>,
}

/// The engine's tile-sharded parallel layer (see ARCHITECTURE.md):
/// when enough transmissions are on the air, their receiver sets are
/// precomputed by `threads` workers — the [`NodeGrid`] arena is
/// partitioned into column tiles and each worker owns the
/// transmissions keyed up in its columns — then consumed at each
/// `TxEnd` after a stamp check proves nothing the computation read has
/// changed. Invalid entries fall back to the serial path, so results
/// are bit-identical for every thread count, including 1.
#[derive(Debug)]
struct ParEngine {
    /// Worker/tile count; `< 2` disables the parallel layer.
    threads: usize,
    /// Live-transmission count below which passes don't run.
    batch_floor: usize,
    lanes: Vec<WorkerLane>,
    /// Precomputed receiver sets awaiting their `TxEnd`, by tx id.
    ready: ag_sim::hash::DetHashMap<u64, TxPrecomp>,
    /// Recycled receiver buffers.
    spare: Vec<Vec<usize>>,
    /// `TxEnd`s served from a validated precomputed set (telemetry
    /// only — never part of simulation results).
    hits: u64,
}

impl ParEngine {
    fn new() -> Self {
        ParEngine {
            threads: 1,
            batch_floor: PAR_BATCH_FLOOR,
            lanes: Vec::new(),
            ready: ag_sim::hash::DetHashMap::default(),
            spare: Vec::new(),
            hits: 0,
        }
    }
}

/// The read-only slice of the world a precompute worker needs:
/// positions (via legs), the node grid, the air slab's overlap facts,
/// churn liveness and the reception model. Everything here is plain
/// shared data — no `Message` payloads — so the view is `Send + Sync`
/// and [`std::thread::scope`] can hand it to the tile workers while
/// the event loop waits at the barrier.
#[derive(Clone, Copy)]
struct PrecompView<'a> {
    grid: &'a NodeGrid,
    air: crate::grid::AirOverlaps<'a>,
    legs: &'a [LegSample],
    down: &'a [bool],
    up_since: &'a [SimTime],
    shadow_cache: &'a [f64],
    node_count: usize,
    range: f64,
    reception: ReceptionModel,
    churny: bool,
    channel_seed: u64,
}

impl PrecompView<'_> {
    /// The pure twin of [`World::channel_receives`]: reads the shadow
    /// cache but never fills it (a worker cannot write shared state).
    /// Bit-identical decisions — the cache stores exactly the value
    /// `shadow_eff_range_sq` computes, so a missing entry recomputed
    /// here compares identically.
    fn receives(&self, tx_id: u64, sender: u32, receiver: u32, dist_sq: f64) -> bool {
        if let ReceptionModel::Shadowing {
            sigma_db,
            path_loss_exp,
        } = self.reception
        {
            if !self.shadow_cache.is_empty() {
                let (a, b) = if sender <= receiver {
                    (sender, receiver)
                } else {
                    (receiver, sender)
                };
                let idx = a as usize * self.node_count + b as usize;
                let mut eff_sq = self.shadow_cache[idx];
                if eff_sq.is_nan() {
                    eff_sq = crate::phy::shadow_eff_range_sq(
                        self.channel_seed,
                        sender,
                        receiver,
                        sigma_db,
                        path_loss_exp,
                        self.range,
                    );
                }
                return dist_sq <= eff_sq;
            }
        }
        self.reception.receives(
            self.channel_seed,
            tx_id,
            sender,
            receiver,
            dist_sq,
            self.range,
        )
    }
}

/// Computes one transmission's receiver set on a worker thread —
/// the same candidate query, dedupe, liveness, distance, collision and
/// reception tests as the serial `uncorrupted_receivers` grid path, so
/// (given the stamps validate at use time) the same receivers in the
/// same ascending order and the same collision/drop counts. Dedupe is
/// a sort over the (small) candidate list instead of the serial path's
/// shared visit-stamp array; set-identical candidates, and every
/// per-candidate test is pure, so order of evaluation cannot matter.
fn precompute_one(
    v: &PrecompView<'_>,
    job: &PrecompJob,
    cands: &mut Vec<u32>,
    overlaps: &mut Vec<Vec2>,
    mut receivers: Vec<usize>,
) -> TxPrecomp {
    let shot = &job.shot;
    cands.clear();
    overlaps.clear();
    receivers.clear();
    v.grid.query_disk(shot.pos, v.range, cands);
    cands.sort_unstable();
    cands.dedup();
    if v.air.any_overlapping(job.id, shot.start, shot.end) {
        v.air
            .collect_overlapping(job.id, shot.start, shot.end, overlaps);
    }
    let any_overlap = !overlaps.is_empty();
    let ideal = v.reception.is_ideal();
    let range_sq = v.range * v.range;
    let mut collisions = 0u64;
    let mut channel_drops = 0u64;
    for &rid in cands.iter() {
        let r = rid as usize;
        if r == job.sender as usize {
            continue;
        }
        if v.churny && (v.down[r] || v.up_since[r] > shot.start) {
            continue;
        }
        // The receiver's position when the frame completes: `TxEnd`
        // dispatches at `shot.end`, and the stamp check guarantees the
        // leg this extrapolates along is still the leg the serial path
        // would read at that instant.
        let rpos = v.legs[r].position_at(shot.end);
        let dist_sq = shot.pos.distance_sq(rpos);
        if dist_sq > range_sq {
            continue;
        }
        let corrupted = any_overlap && overlaps.iter().any(|p| p.distance_sq(rpos) <= range_sq);
        if corrupted {
            collisions += 1;
        } else if !ideal && !v.receives(job.id, job.sender, rid, dist_sq) {
            channel_drops += 1;
        } else {
            receivers.push(r);
        }
    }
    TxPrecomp {
        receivers,
        collisions,
        channel_drops,
        grid_stamp: job.grid_stamp,
        air_stamp: job.air_stamp,
    }
}

/// The engine's own hot-path counters, kept as plain fields — a
/// name-keyed map lookup per transmission is measurable at scale.
/// [`Engine::counters`] folds them into the public [`CounterSet`]
/// under their historical names.
#[derive(Debug, Default, Clone, Copy)]
struct HotCounters {
    enqueued: u64,
    queue_drop: u64,
    cs_busy: u64,
    unicast_tx: u64,
    broadcast_tx: u64,
    rx_delivered: u64,
    /// `CounterSet` entries exist once *touched*, even at zero; every
    /// hot counter but `rx_delivered` is only touched when incremented,
    /// but `rx_delivered` historically did `add(len)` with possibly-zero
    /// `len`, so its touched state is tracked separately to keep
    /// [`Engine::counters`] identical to the pre-refactor engine.
    rx_delivered_touched: bool,
    rx_collision: u64,
    unicast_retry: u64,
    send_fail: u64,
    mob_transition: u64,
    /// In-range, uncollided receptions lost to the (non-ideal)
    /// reception model.
    rx_channel_drop: u64,
    /// Frames discarded because the sender's radio was down.
    down_drop: u64,
    churn_fail: u64,
    churn_recover: u64,
}

impl HotCounters {
    /// Folds the touched counters into `set`, matching the entry-
    /// existence semantics of the pre-refactor per-call `CounterSet`
    /// updates.
    fn fold_into(&self, set: &mut CounterSet) {
        for (name, v) in [
            ("mac.enqueued", self.enqueued),
            ("mac.queue_drop", self.queue_drop),
            ("mac.cs_busy", self.cs_busy),
            ("mac.unicast_tx", self.unicast_tx),
            ("mac.broadcast_tx", self.broadcast_tx),
            ("mac.rx_collision", self.rx_collision),
            ("mac.unicast_retry", self.unicast_retry),
            ("mac.send_fail", self.send_fail),
            ("mob.transition", self.mob_transition),
            ("mac.rx_channel_drop", self.rx_channel_drop),
            ("mac.down_drop", self.down_drop),
            ("churn.fail", self.churn_fail),
            ("churn.recover", self.churn_recover),
        ] {
            if v > 0 {
                set.add(name, v);
            }
        }
        if self.rx_delivered_touched {
            set.add("mac.rx_delivered", self.rx_delivered);
        }
    }
}

/// Everything in the simulation except the protocol instances.
///
/// Splitting the world from the protocols lets the engine hand a protocol
/// a mutable [`NodeApi`] view of the world while itself staying borrowed.
struct World<M: Message> {
    now: SimTime,
    queue: EventQueue<Event>,
    phy: PhyParams,
    macs: Vec<Mac<M>>,
    mobility: Vec<Box<dyn Mobility>>,
    /// Per-node cached trajectory legs, refreshed at mobility
    /// transitions; every position the engine uses comes from here, so a
    /// range check never re-enters a boxed mobility model.
    legs: Vec<LegSample>,
    node_rngs: Vec<SmallRng>,
    mac_rngs: Vec<SmallRng>,
    mobility_rngs: Vec<SmallRng>,
    /// Per-node churn interval streams; empty unless churn is enabled.
    churn_rngs: Vec<SmallRng>,
    /// `true` while a node's radio is down (churn).
    down: Vec<bool>,
    /// When each node's radio last came (back) up. A receiver only
    /// decodes a frame whose *entire* airtime it was up for, so a node
    /// that recovers mid-frame cannot deliver it.
    up_since: Vec<SimTime>,
    /// The transmission each node currently has on the air, if any;
    /// cleared when the node fails mid-transmission so the `TxEnd`
    /// handler can tell a truncated frame from a completed one.
    tx_of: Vec<Option<u64>>,
    /// Keyed-hash seed for the (order-independent) reception-model
    /// decisions.
    channel_seed: u64,
    /// Spatial index over nodes; `None` runs the brute-force scans (see
    /// [`PhyParams::with_spatial_index`]).
    grid: Option<NodeGrid>,
    /// Per-node bucketing-window generation; bumped at leg changes so
    /// stale [`Event::GridRefresh`] events are ignored.
    grid_gens: Vec<u64>,
    /// All channel-relevant transmissions (live + recently finished),
    /// carrying each live transmission's sender and frame.
    air: AirIndex<PendingTx<M>>,
    next_tx_id: u64,
    counters: CounterSet,
    hot: HotCounters,
    /// Reusable candidate buffer for grid queries.
    scratch: Vec<u32>,
    /// Reusable receiver buffer (avoids an allocation per `TxEnd`).
    rx_scratch: Vec<usize>,
    /// Reusable buffer for frames a radio failure destroys (avoids an
    /// allocation per churn toggle).
    churn_scratch: Vec<OutFrame<M>>,
    /// Reusable buffer of overlapping-sender positions for one `TxEnd`'s
    /// collision checks (avoids a per-receiver air-index probe *and* a
    /// per-event allocation).
    overlap_scratch: Vec<Vec2>,
    /// Memoized per-link squared effective range for the shadowing
    /// reception model, indexed `a * n + b` with `a <= b` (the gain is
    /// reciprocal and static, so one entry serves both directions for
    /// the whole run). `NaN` marks an uncomputed entry — the gain math
    /// can never legitimately produce `NaN`. Empty unless the model is
    /// `Shadowing` and the node count is small enough to afford `n²`
    /// entries.
    shadow_cache: Vec<f64>,
    /// Per-node visit stamps deduplicating grid candidates without a
    /// sort (a node's leg can span several queried cells).
    stamps: Vec<u64>,
    stamp: u64,
    /// One bit per node, set for each accepted receiver of the `TxEnd`
    /// in flight. Sweeping the words in order emits the receiver list
    /// already ascending, so the grid path never sorts it; the sweep
    /// clears the bits behind itself.
    recv_bits: Vec<u64>,
    /// Indices of the `recv_bits` words the current `TxEnd` actually
    /// touched (pushed on each word's 0 → nonzero transition). The
    /// sweep visits only these — sorted, so output order is unchanged —
    /// instead of walking all `n / 64` words: at metropolis scale the
    /// full walk is ~2 KB of streamed zeros per kernel event, which
    /// dominates the event loop long before the radio work does.
    touched_words: Vec<u32>,
    /// Watermarks asserting (in debug builds) that the scratch buffers
    /// above actually round-trip: a capacity that shrinks between
    /// events means some path leaked the buffer and replaced it with a
    /// fresh allocation.
    rx_scratch_cap: usize,
    scratch_cap: usize,
    /// Conformance trace sink; `None` (the default) keeps tracing off
    /// the hot path entirely. See [`Engine::new_traced`].
    trace: Option<TraceSink<M>>,
}

/// Accumulates [`TraceRecord`]s plus the named-choice outcomes of the
/// protocol dispatch currently executing.
struct TraceSink<M> {
    records: Vec<TraceRecord<M>>,
    pending: Vec<Choice>,
}

impl<M: Message> World<M> {
    fn node_count(&self) -> usize {
        self.macs.len()
    }

    /// Appends one named-choice outcome to the dispatch being traced
    /// (no-op with tracing off).
    #[inline]
    fn record_choice(&mut self, c: Choice) {
        if let Some(t) = &mut self.trace {
            t.pending.push(c);
        }
    }

    /// Seals the current dispatch into a [`TraceRecord`], taking the
    /// accumulated choices with it.
    fn trace_record(&mut self, node: usize, dispatch: Dispatch<M>, digest: u64) {
        let now = self.now;
        if let Some(t) = &mut self.trace {
            t.records.push(TraceRecord {
                node: NodeId::new(node as u32),
                at: now,
                dispatch,
                choices: std::mem::take(&mut t.pending),
                digest,
            });
        }
    }

    fn position(&self, node: usize) -> Vec2 {
        self.legs[node].position_at(self.now)
    }

    /// Re-reads `node`'s current leg into the position cache and
    /// rebuckets the node in the spatial index.
    fn refresh_leg(&mut self, node: usize) {
        self.legs[node] = self.mobility[node].current_leg();
        self.grid_gens[node] = self.grid_gens[node].wrapping_add(1);
        self.slide_window(node);
    }

    /// (Re)buckets `node` for the portion of its leg starting now and
    /// spanning roughly half a grid cell of travel, and schedules the
    /// next [`Event::GridRefresh`] if the leg continues past the window.
    ///
    /// Invariant: at every processed instant, each node's bucketed
    /// segment contains its true position — window ends are inclusive
    /// on both sides, so same-instant event ordering cannot break it.
    fn slide_window(&mut self, node: usize) {
        let Some(grid) = &mut self.grid else {
            return;
        };
        if self.down[node] {
            // A down radio stays detached; recovery rebuckets it.
            grid.remove_node(node);
            return;
        }
        let leg = self.legs[node];
        let now = self.now;
        if leg.is_static() || now >= leg.arrive {
            let p = leg.position_at(now);
            grid.update_segment(node, p, p);
            return;
        }
        let gen = self.grid_gens[node];
        if now < leg.depart {
            // Parked at the leg's start until it departs.
            grid.update_segment(node, leg.from, leg.from);
            self.queue
                .schedule(leg.depart, Event::GridRefresh { node, gen });
            return;
        }
        let p0 = leg.position_at(now);
        // Time to traverse half a cell at the leg's speed (short windows
        // keep each node in ~1–2 cells, so queries see few duplicate
        // candidates), floored to keep event counts sane for absurdly
        // fast movers.
        let secs_per_cell = leg.arrive.duration_since(leg.depart).as_secs_f64()
            * (0.5 * GRID_CELL_FACTOR * self.phy.range_m())
            / leg.from.distance_to(leg.to);
        let window = SimDuration::from_secs_f64(secs_per_cell.max(1e-6));
        let t1 = now.saturating_add(window);
        if t1 >= leg.arrive {
            grid.update_segment(node, p0, leg.to);
        } else {
            grid.update_segment(node, p0, leg.position_at(t1));
            self.queue.schedule(t1, Event::GridRefresh { node, gen });
        }
    }

    /// Queues a frame and kicks the MAC if it was idle. Frames from a
    /// down radio are silently discarded (counted): the hardware is
    /// off, so there is no carrier feedback to report.
    fn enqueue_frame(&mut self, node: usize, dest: Option<NodeId>, msg: M) {
        if self.down[node] {
            self.hot.down_drop += 1;
            return;
        }
        let accepted = self.macs[node].enqueue(OutFrame { dest, msg });
        if !accepted {
            self.hot.queue_drop += 1;
            return;
        }
        self.hot.enqueued += 1;
        if self.macs[node].state() == MacState::Idle {
            self.arm_attempt(node);
        }
    }

    /// Arms a fresh DIFS + backoff attempt for `node`'s head frame.
    fn arm_attempt(&mut self, node: usize) {
        debug_assert!(
            !self.macs[node].is_empty(),
            "arming attempt with empty queue"
        );
        let cw = self.macs[node].cw;
        let slots = self.mac_rngs[node].random_range(0..=cw) as u64;
        let delay = self.phy.difs() + self.phy.slot() * slots;
        let gen = self.macs[node].bump_attempt_gen();
        self.macs[node].set_state(MacState::Contending);
        self.queue
            .schedule(self.now + delay, Event::MacAttempt { node, gen });
    }

    /// Re-arms an attempt to start after the audible busy period ends.
    fn arm_attempt_after(&mut self, node: usize, busy_until: SimTime) {
        let cw = self.macs[node].cw;
        let slots = self.mac_rngs[node].random_range(0..=cw) as u64;
        let delay = self.phy.difs() + self.phy.slot() * slots;
        let gen = self.macs[node].bump_attempt_gen();
        self.macs[node].set_state(MacState::Contending);
        self.queue.schedule(
            busy_until.saturating_add(delay),
            Event::MacAttempt { node, gen },
        );
    }

    /// If any live transmission is audible at `node`, the latest time the
    /// medium stays busy; otherwise `None`.
    fn medium_busy_until(&self, node: usize) -> Option<SimTime> {
        if !self.air.any_live() {
            // Nothing on the air anywhere: skip the position sample.
            return None;
        }
        let pos = self.position(node);
        self.air.busy_until(pos, self.phy.range_m())
    }

    /// Handles an armed attempt firing: carrier-sense, then transmit or
    /// defer.
    fn handle_attempt(&mut self, node: usize, gen: u64) {
        if self.macs[node].attempt_gen != gen || self.macs[node].state() != MacState::Contending {
            return; // stale
        }
        if self.macs[node].is_empty() {
            self.macs[node].set_state(MacState::Idle);
            return;
        }
        if let Some(busy_until) = self.medium_busy_until(node) {
            self.hot.cs_busy += 1;
            self.arm_attempt_after(node, busy_until);
            return;
        }
        self.start_tx(node);
    }

    /// Puts `node`'s head frame on the air.
    fn start_tx(&mut self, node: usize) {
        // The head frame stays queued until ACKed (unicast) or completed
        // (broadcast), so the air record holds a clone — a refcount bump
        // under the `Message` cheap-clone contract, not a payload copy.
        let frame = self.macs[node]
            .head()
            .expect("start_tx with empty queue")
            .clone();
        let unicast = frame.dest.is_some();
        let mut airtime = self.phy.airtime(frame.msg.wire_size());
        if unicast {
            airtime += self.phy.ack_overhead();
        }
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.tx_of[node] = Some(id);
        let end = self.now + airtime;
        self.air.insert(
            id,
            TxShot {
                start: self.now,
                end,
                pos: self.position(node),
            },
            PendingTx {
                sender: node,
                frame,
            },
        );
        self.macs[node].set_state(MacState::Transmitting);
        if unicast {
            self.hot.unicast_tx += 1;
        } else {
            self.hot.broadcast_tx += 1;
        }
        self.queue.schedule(end, Event::TxEnd { tx_id: id });
    }

    /// Keyed-hash reception-model decision for one `(transmission,
    /// receiver)` pair, serving shadowing decisions from the per-link
    /// effective-range cache when one was allocated. Bit-identical to
    /// [`ReceptionModel::receives`]: the cache stores exactly the value
    /// `shadow_eff_range_sq` computes, and the comparison is the same.
    fn channel_receives(
        &mut self,
        model: ReceptionModel,
        tx_id: u64,
        sender: u32,
        receiver: u32,
        dist_sq: f64,
        range_m: f64,
    ) -> bool {
        if let ReceptionModel::Shadowing {
            sigma_db,
            path_loss_exp,
        } = model
        {
            if !self.shadow_cache.is_empty() {
                let n = self.node_count();
                let (a, b) = if sender <= receiver {
                    (sender, receiver)
                } else {
                    (receiver, sender)
                };
                let idx = a as usize * n + b as usize;
                let mut eff_sq = self.shadow_cache[idx];
                if eff_sq.is_nan() {
                    eff_sq = crate::phy::shadow_eff_range_sq(
                        self.channel_seed,
                        sender,
                        receiver,
                        sigma_db,
                        path_loss_exp,
                        range_m,
                    );
                    self.shadow_cache[idx] = eff_sq;
                }
                return dist_sq <= eff_sq;
            }
        }
        model.receives(self.channel_seed, tx_id, sender, receiver, dist_sq, range_m)
    }

    /// All nodes that hear transmission `id` (described by `shot`, sent
    /// by `sender`) uncorrupted, in ascending node order. Also counts
    /// collisions.
    ///
    /// `id` must already be marked finished in the air index.
    ///
    /// Scratch round-trip: this takes `rx_scratch` as the result buffer
    /// and the **caller** must hand it back (`handle_tx_end`, the sole
    /// caller, restores it after the delivery loop); `scratch` and
    /// `overlap_scratch` are taken and restored internally. The
    /// watermark asserts below catch any path that forgets, which would
    /// silently reintroduce a per-event allocation.
    fn uncorrupted_receivers(&mut self, id: u64, shot: &TxShot, sender: usize) -> Vec<usize> {
        let mut out = std::mem::take(&mut self.rx_scratch);
        debug_assert!(
            out.capacity() >= self.rx_scratch_cap,
            "rx_scratch was not returned by the previous TxEnd"
        );
        out.clear();
        let range = self.phy.range_m();
        let grid_path = self.grid.is_some();
        let reception = self.phy.reception();
        let ideal = reception.is_ideal();
        // Without a churn model no radio is ever down and `up_since`
        // stays at time zero, so the per-candidate liveness loads can't
        // fire; hoist that fact out of the loop.
        let churny = self.phy.churn().is_some();
        // If no other transmission overlaps this one's airtime window at
        // all, no receiver anywhere can be corrupted; skip the
        // per-receiver collision checks wholesale (the common case in
        // sparse networks). `corrupts` implies `any_overlapping`, so
        // results are identical. The brute-force baseline runs the
        // pre-index per-receiver scans unconditionally, as the original
        // engine did.
        let contended = !grid_path || self.air.any_overlapping(id, shot.start, shot.end);
        // On the grid path, gather the overlapping senders once and let
        // each receiver answer "am I corrupted?" with a linear scan over
        // that (typically tiny) set, instead of probing the air index's
        // cell grid per receiver. Same predicate as `corrupts`, same
        // results. The brute-force baseline keeps the per-receiver
        // scans as its documented cost baseline.
        let mut overlaps = std::mem::take(&mut self.overlap_scratch);
        overlaps.clear();
        if grid_path && contended {
            self.air
                .collect_overlapping(id, shot.start, shot.end, &mut overlaps);
        }
        // Hoisted so the uncontended (empty-overlap) common case skips
        // even the slice-iterator setup per candidate.
        let any_overlap = !overlaps.is_empty();
        let mut cands = std::mem::take(&mut self.scratch);
        debug_assert!(
            cands.capacity() >= self.scratch_cap,
            "scratch was not restored by the previous event"
        );
        cands.clear();
        if let Some(grid) = &self.grid {
            grid.query_disk(shot.pos, range, &mut cands);
            // A node's bucketed leg segment can span several queried
            // cells; dedupe with visit stamps (cheaper than sorting the
            // candidate list — only the much smaller receiver list needs
            // ordering, below).
            self.stamp += 1;
        } else {
            cands.extend(0..self.node_count() as u32);
        }
        for &rid in &cands {
            let r = rid as usize;
            if r == sender {
                continue;
            }
            if grid_path {
                if self.stamps[r] == self.stamp {
                    continue;
                }
                self.stamps[r] = self.stamp;
            }
            // A down radio hears nothing, and a radio that recovered
            // mid-frame missed the frame's head and cannot decode the
            // rest. Grid queries never return down nodes (they are
            // detached), but the brute-force path scans everyone, so
            // both paths check explicitly.
            if churny && (self.down[r] || self.up_since[r] > shot.start) {
                continue;
            }
            // The brute-force path reproduces the pre-index engine:
            // re-enter the boxed mobility model per range check instead
            // of sampling the cached leg. Bit-identical positions (the
            // models' own `position` *is* `LegSample::position_at`), so
            // this is a cost baseline, not a behaviour switch.
            let rpos = if grid_path {
                self.position(r)
            } else {
                self.mobility[r].position(self.now)
            };
            let dist_sq = shot.pos.distance_sq(rpos);
            if dist_sq > range * range {
                continue;
            }
            let corrupted = if grid_path {
                any_overlap
                    && overlaps
                        .iter()
                        .any(|p| p.distance_sq(rpos) <= range * range)
            } else {
                contended && self.air.corrupts(id, shot.start, shot.end, rpos, range)
            };
            if corrupted {
                self.hot.rx_collision += 1;
            } else if !ideal
                && !self.channel_receives(reception, id, sender as u32, rid, dist_sq, range)
            {
                self.hot.rx_channel_drop += 1;
            } else if grid_path {
                let w = r >> 6;
                if self.recv_bits[w] == 0 {
                    self.touched_words.push(w as u32);
                }
                self.recv_bits[w] |= 1u64 << (r & 63);
            } else {
                out.push(r);
            }
        }
        if grid_path {
            // Sweep the touched receiver-bitset words in ascending word
            // order: the list comes out in the same ascending node
            // order as the brute-force scan, without sorting it and
            // without walking the (at metropolis scale, vast) untouched
            // remainder of the bitset.
            self.touched_words.sort_unstable();
            for &w in &self.touched_words {
                let w = w as usize;
                let mut bits = self.recv_bits[w];
                self.recv_bits[w] = 0;
                while bits != 0 {
                    out.push((w << 6) | bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
            self.touched_words.clear();
        }
        self.scratch_cap = cands.capacity();
        self.scratch = cands;
        self.overlap_scratch = overlaps;
        self.rx_scratch_cap = self.rx_scratch_cap.max(out.capacity());
        out
    }

    /// Completes the head frame (success or final drop) and moves the MAC
    /// on to the next queued frame.
    fn finish_head_frame(&mut self, node: usize) -> OutFrame<M> {
        let frame = self.macs[node].pop_head().expect("no head frame to finish");
        self.macs[node].retries = 0;
        self.macs[node].cw = self.phy.cw_min();
        if self.macs[node].is_empty() {
            self.macs[node].set_state(MacState::Idle);
        } else {
            self.arm_attempt(node);
        }
        frame
    }

    /// Applies unicast failure policy: retry with doubled CW, or give up.
    /// Returns the dropped frame once the retry limit is exhausted.
    fn unicast_retry_or_fail(&mut self, node: usize) -> Option<OutFrame<M>> {
        self.macs[node].retries += 1;
        if self.macs[node].retries > self.phy.retry_limit() {
            self.hot.send_fail += 1;
            Some(self.finish_head_frame(node))
        } else {
            self.hot.unicast_retry += 1;
            self.macs[node].cw = self.phy.next_cw(self.macs[node].cw);
            self.arm_attempt(node);
            None
        }
    }

    /// Advances `node`'s mobility model through the transition due now and
    /// schedules the next one.
    fn handle_mobility(&mut self, node: usize) {
        let now = self.now;
        self.mobility[node].transition(now, &mut self.mobility_rngs[node]);
        self.hot.mob_transition += 1;
        self.refresh_leg(node);
        self.schedule_mobility(node);
    }

    /// Toggles `node`'s radio between up and down and schedules the
    /// next toggle (exponential durations from the node's churn
    /// stream). Failing drops all in-flight MAC state — queued frames,
    /// any armed backoff, a frame mid-air — and detaches the node from
    /// the spatial index; recovering re-attaches it with a clean MAC.
    ///
    /// Leaves the queued frames dropped by a failure (none on recovery)
    /// in `churn_scratch` — a reused buffer, not a per-toggle
    /// allocation — so the engine can report the unicasts among them
    /// through [`Protocol::on_send_failure`] — the stack keeps running
    /// and deserves to hear that its radio took the queue down with it.
    fn handle_churn(&mut self, node: usize) {
        let churn = self.phy.churn().expect("churn event without churn model");
        self.churn_scratch.clear();
        if self.down[node] {
            self.down[node] = false;
            self.up_since[node] = self.now;
            self.hot.churn_recover += 1;
            // Rebucket at the node's current position (mobility kept
            // advancing while the radio was off).
            self.grid_gens[node] = self.grid_gens[node].wrapping_add(1);
            self.slide_window(node);
            let up = churn.sample_up(&mut self.churn_rngs[node]);
            self.queue.schedule(self.now + up, Event::Churn { node });
        } else {
            self.down[node] = true;
            self.hot.churn_fail += 1;
            // Drop in-flight MAC state and invalidate any armed attempt.
            while let Some(frame) = self.macs[node].pop_head() {
                self.churn_scratch.push(frame);
            }
            self.macs[node].retries = 0;
            self.macs[node].cw = self.phy.cw_min();
            self.macs[node].bump_attempt_gen();
            self.macs[node].set_state(MacState::Idle);
            // A frame mid-air is truncated: disown it so `TxEnd`
            // delivers it to nobody (it still occupies its airtime
            // window for interference purposes until pruned).
            self.tx_of[node] = None;
            // Detach from the index; stale window refreshes die on the
            // bumped generation.
            self.grid_gens[node] = self.grid_gens[node].wrapping_add(1);
            if let Some(grid) = &mut self.grid {
                grid.remove_node(node);
            }
            let down = churn.sample_down(&mut self.churn_rngs[node]);
            self.queue.schedule(self.now + down, Event::Churn { node });
        }
    }

    /// Schedules `node`'s next mobility transition, guarding against
    /// zero-length legs.
    fn schedule_mobility(&mut self, node: usize) {
        let next = self.mobility[node].next_transition();
        if next == SimTime::MAX {
            return;
        }
        let at = if next <= self.now {
            self.now + SimDuration::from_nanos(1)
        } else {
            next
        };
        self.queue.schedule(at, Event::Mobility { node });
    }
}

/// The per-node view of the world handed to [`Protocol`] callbacks.
///
/// This is the engine's implementation of [`ProtoCtx`]: sends become
/// MAC-queued frames, timers become kernel events, and every named
/// random choice draws from the node's [`StreamKind::Node`] stream —
/// nothing else touches that stream, which is what makes engine runs
/// replayable choice-for-choice through the pure facade (`ag-check`).
pub struct NodeApi<'a, M: Message> {
    world: &'a mut World<M>,
    node: usize,
}

impl<'a, M: Message> NodeApi<'a, M> {
    /// This node's current position (exposed for tracing/metrics only —
    /// the protocols in this workspace never route on positions, so it
    /// is deliberately *not* part of [`ProtoCtx`]).
    pub fn position(&self) -> Vec2 {
        self.world.position(self.node)
    }
}

impl<'a, M: Message> ProtoCtx<M> for NodeApi<'a, M> {
    fn now(&self) -> SimTime {
        self.world.now
    }

    fn id(&self) -> NodeId {
        NodeId::new(self.node as u32)
    }

    fn node_count(&self) -> usize {
        self.world.node_count()
    }

    /// Queues a unicast frame to `dest` (ACKed; retried up to the retry
    /// limit; [`Protocol::on_send_failure`] fires if it never gets
    /// through — including when a radio failure destroys it while
    /// queued). Exception: a frame sent while this node's own radio is
    /// already down (churn) is discarded without a callback.
    fn send(&mut self, dest: NodeId, msg: M) {
        debug_assert!(
            dest.index() < self.world.node_count(),
            "unknown destination {dest}"
        );
        debug_assert!(dest.index() != self.node, "unicast to self");
        self.world.enqueue_frame(self.node, Some(dest), msg);
    }

    /// Queues a local broadcast frame (heard by every node in range,
    /// unacknowledged).
    fn broadcast(&mut self, msg: M) {
        self.world.enqueue_frame(self.node, None, msg);
    }

    /// Schedules [`Protocol::on_timer`] with `key` after `delay`.
    ///
    /// Timers are not cancellable; see [`TimerKey`] for the idiom.
    fn set_timer(&mut self, delay: SimDuration, key: TimerKey) {
        let at = self.world.now + delay;
        self.world.queue.schedule(
            at,
            Event::Timer {
                node: self.node,
                key,
            },
        );
    }

    fn count(&mut self, name: &'static str) {
        self.world.counters.incr(name);
    }

    fn count_n(&mut self, name: &'static str, n: u64) {
        self.world.counters.add(name, n);
    }

    fn jitter(&mut self, bound: u64) -> u64 {
        let v = self.world.node_rngs[self.node].random_range(0..bound);
        self.world.record_choice(Choice::Jitter(v));
        v
    }

    fn chance(&mut self, p: f64) -> bool {
        // Drawn unconditionally (even for p ∈ {0, 1}) so the node RNG
        // stream is bit-identical to the pre-facade engine.
        let v = self.world.node_rngs[self.node].random_bool(p);
        self.world.record_choice(Choice::Chance(v));
        v
    }

    fn pick_index(&mut self, n: usize) -> usize {
        let v = self.world.node_rngs[self.node].random_range(0..n);
        self.world.record_choice(Choice::Index(v));
        v
    }

    fn pick_weighted<F: Fn(usize) -> f64>(&mut self, n: usize, weight: F) -> usize {
        assert!(n > 0, "weighted pick over no candidates");
        // Two passes instead of a collected weight buffer: the sum
        // visits the weights in the same order an explicit `Vec` would
        // and the walk recomputes the same values, so the single RNG
        // draw and every comparison are bit-identical to the historical
        // allocating implementation (and nothing allocates).
        let total: f64 = (0..n).map(&weight).sum();
        let mut draw = self.world.node_rngs[self.node].random_range(0.0..total);
        let mut picked = n - 1;
        for i in 0..n {
            let w = weight(i);
            if draw < w {
                picked = i;
                break;
            }
            draw -= w;
        }
        self.world.record_choice(Choice::Index(picked));
        picked
    }
}

/// The mobility model and protocol instance for one node.
pub struct NodeSetup<P> {
    /// Trajectory generator for the node.
    pub mobility: Box<dyn Mobility>,
    /// Upper-layer protocol state.
    pub protocol: P,
}

/// The assembled simulation: channel + MACs + mobility + protocols.
///
/// # Example
///
/// ```
/// use ag_net::{Engine, NodeSetup, NodeId, PhyParams, ProtoCtx, Protocol, Message, RxKind, TimerKey};
/// use ag_mobility::{Stationary, Vec2};
/// use ag_sim::{SimTime, SimDuration};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 8 }
/// }
///
/// #[derive(Debug, Default)]
/// struct Hello { got: usize }
/// impl Protocol for Hello {
///     type Msg = Ping;
///     fn start<C: ProtoCtx<Ping>>(&mut self, ctx: &mut C) {
///         if ctx.id() == NodeId::new(0) {
///             ctx.set_timer(SimDuration::from_millis(10), 0);
///         }
///     }
///     fn on_packet<C: ProtoCtx<Ping>>(&mut self, _ctx: &mut C, _from: NodeId, _msg: Ping, _rx: RxKind) {
///         self.got += 1;
///     }
///     fn on_timer<C: ProtoCtx<Ping>>(&mut self, ctx: &mut C, _key: TimerKey) {
///         ctx.broadcast(Ping);
///     }
///     fn on_send_failure<C: ProtoCtx<Ping>>(&mut self, _ctx: &mut C, _to: NodeId, _msg: Ping) {}
/// }
///
/// let nodes = vec![
///     NodeSetup { mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))), protocol: Hello::default() },
///     NodeSetup { mobility: Box::new(Stationary::new(Vec2::new(50.0, 0.0))), protocol: Hello::default() },
/// ];
/// let mut engine = Engine::new(PhyParams::paper_default(75.0), 1, nodes);
/// engine.run_until(SimTime::from_secs(1));
/// assert_eq!(engine.protocol(NodeId::new(1)).got, 1);
/// ```
pub struct Engine<P: Protocol> {
    world: World<P::Msg>,
    protocols: Vec<P>,
    /// The tile-sharded parallel precompute layer; dormant (and
    /// costless) until [`Engine::set_threads`] raises the worker count
    /// above one. Lives beside `world`, not inside it, so a pass can
    /// borrow the world read-only while the lanes are borrowed mutably.
    par: ParEngine,
}

impl<P: Protocol> Engine<P> {
    /// Builds the engine and runs every protocol's [`Protocol::start`] at
    /// time zero (in node-id order).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or has more than `u32::MAX` entries.
    pub fn new(phy: PhyParams, seed: u64, nodes: Vec<NodeSetup<P>>) -> Self {
        Self::build(phy, seed, nodes, false)
    }

    /// Like [`Engine::new`], but with conformance tracing enabled from
    /// the very first [`Protocol::start`] dispatch: every protocol
    /// dispatch is recorded as a [`TraceRecord`] (inputs, named-choice
    /// outcomes, post-dispatch state digest) for replay through the
    /// pure facade in `ag-check`. Tracing accumulates unboundedly —
    /// meant for short conformance runs, not production simulations.
    pub fn new_traced(phy: PhyParams, seed: u64, nodes: Vec<NodeSetup<P>>) -> Self {
        Self::build(phy, seed, nodes, true)
    }

    fn build(phy: PhyParams, seed: u64, nodes: Vec<NodeSetup<P>>, traced: bool) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(nodes.len() <= u32::MAX as usize, "too many nodes");
        let splitter = SeedSplitter::new(seed);
        let n = nodes.len();
        let mut mobility = Vec::with_capacity(n);
        let mut protocols = Vec::with_capacity(n);
        for setup in nodes {
            mobility.push(setup.mobility);
            protocols.push(setup.protocol);
        }
        let legs: Vec<LegSample> = mobility.iter().map(|m| m.current_leg()).collect();
        let grid = phy
            .spatial_index()
            .then(|| NodeGrid::new(GRID_CELL_FACTOR * phy.range_m(), n));
        let mut world = World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            macs: (0..n)
                .map(|_| Mac::new(phy.queue_capacity(), phy.cw_min()))
                .collect(),
            mobility,
            legs,
            node_rngs: (0..n)
                .map(|i| splitter.stream(StreamKind::Node, i as u64))
                .collect(),
            mac_rngs: (0..n)
                .map(|i| splitter.stream(StreamKind::Mac, i as u64))
                .collect(),
            mobility_rngs: (0..n)
                .map(|i| splitter.stream(StreamKind::Mobility, i as u64))
                .collect(),
            churn_rngs: if phy.churn().is_some() {
                (0..n)
                    .map(|i| splitter.stream(StreamKind::Churn, i as u64))
                    .collect()
            } else {
                Vec::new()
            },
            down: vec![false; n],
            up_since: vec![SimTime::ZERO; n],
            tx_of: vec![None; n],
            channel_seed: splitter.derive(StreamKind::Channel, 0),
            grid,
            grid_gens: vec![0; n],
            air: AirIndex::new(phy.range_m(), phy.spatial_index()),
            next_tx_id: 0,
            counters: CounterSet::new(),
            hot: HotCounters::default(),
            // Scratch buffers start at their natural bounds (receivers
            // and overlapping transmissions are each capped by n;
            // grid candidates can repeat across a leg's cells, so 2n)
            // instead of discovering their high-water push by push —
            // each discovery is a rare, late reallocation that would
            // show up in the zero-allocation steady-state gate.
            scratch: Vec::with_capacity(2 * n),
            rx_scratch: Vec::with_capacity(n),
            churn_scratch: Vec::new(),
            overlap_scratch: Vec::with_capacity(n),
            shadow_cache: if matches!(phy.reception(), ReceptionModel::Shadowing { .. })
                && n <= SHADOW_CACHE_MAX_NODES
            {
                vec![f64::NAN; n * n]
            } else {
                Vec::new()
            },
            stamps: vec![0; n],
            stamp: 0,
            recv_bits: vec![0; n.div_ceil(64)],
            touched_words: Vec::with_capacity(n.div_ceil(64)),
            rx_scratch_cap: 0,
            scratch_cap: 0,
            trace: traced.then(|| TraceSink {
                records: Vec::new(),
                pending: Vec::new(),
            }),
            phy,
        };
        for node in 0..n {
            world.slide_window(node);
            world.schedule_mobility(node);
        }
        if let Some(churn) = world.phy.churn() {
            for node in 0..n {
                let up = churn.sample_up(&mut world.churn_rngs[node]);
                world
                    .queue
                    .schedule(SimTime::ZERO + up, Event::Churn { node });
            }
        }
        let mut engine = Engine {
            world,
            protocols,
            par: ParEngine::new(),
        };
        for node in 0..n {
            let mut api = NodeApi {
                world: &mut engine.world,
                node,
            };
            engine.protocols[node].start(&mut api);
            if traced {
                let digest = state_digest(&engine.protocols[node]);
                engine.world.trace_record(node, Dispatch::Start, digest);
            }
        }
        engine
    }

    /// Drains the conformance trace accumulated so far (empty unless
    /// the engine was built with [`Engine::new_traced`]).
    pub fn take_trace(&mut self) -> Vec<TraceRecord<P::Msg>> {
        match &mut self.world.trace {
            Some(t) => std::mem::take(&mut t.records),
            None => Vec::new(),
        }
    }

    /// Sets the worker-thread (column-tile) count for the parallel
    /// receiver-precompute layer; `1` (the default) keeps the engine
    /// fully serial. **Purely a wall-clock knob**: results are
    /// bit-identical for every value, because precomputed receiver
    /// sets are only consumed when their validity stamps prove the
    /// serial path would compute the same thing, and everything else
    /// (event order, RNG streams, merges) is untouched. The layer also
    /// requires the spatial index; on the brute-force path it stays
    /// dormant.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.par.threads = threads;
        self.par
            .lanes
            .resize_with(if threads > 1 { threads } else { 0 }, WorkerLane::default);
    }

    /// Lowers (or raises) the live-transmission count a parallel
    /// precompute pass needs before it runs (default: 64). Exposed so
    /// the differential tests can force passes in tiny scenarios;
    /// results are independent of the value, only wall-clock changes.
    pub fn set_parallel_batch_floor(&mut self, floor: usize) {
        self.par.batch_floor = floor.max(1);
    }

    /// Number of `TxEnd`s served from a stamp-validated precomputed
    /// receiver set so far. Telemetry for tests and tuning only — it
    /// never feeds back into the simulation.
    pub fn parallel_hits(&self) -> u64 {
        self.par.hits
    }

    /// Runs the event loop until simulated time `t` (inclusive). Safe to
    /// call repeatedly with increasing times.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(when) = self.world.queue.peek_time() {
            if when > t {
                break;
            }
            let (when, ev) = self.world.queue.pop().expect("peeked event vanished");
            debug_assert!(when >= self.world.now, "time went backwards");
            self.world.now = when;
            if let Event::TxEnd { tx_id } = ev {
                self.maybe_precompute(tx_id);
            }
            self.dispatch(ev);
        }
        self.world.now = t;
    }

    /// Runs a parallel precompute pass if the upcoming `TxEnd` lacks a
    /// precomputed receiver set and enough transmissions are live to
    /// amortize the fork-join. One pass covers *every* live
    /// transmission, so subsequent `TxEnd`s hit the ready map until
    /// newly started transmissions outrun it.
    fn maybe_precompute(&mut self, tx_id: u64) {
        if self.par.threads < 2
            || self.world.grid.is_none()
            || self.world.air.live_count() < self.par.batch_floor
            || self.par.ready.contains_key(&tx_id)
        {
            return;
        }
        // A transmission truncated by its sender's radio failure is
        // never precomputed (it delivers to nobody); don't let its
        // `TxEnd` trigger passes either.
        let sender = match self.world.air.peek(tx_id) {
            Some(p) => p.sender,
            None => return,
        };
        if self.world.tx_of[sender] != Some(tx_id) {
            return;
        }
        self.precompute_pass();
    }

    /// One tile-sharded precompute pass (see [`ParEngine`]).
    ///
    /// Serial prologue: snapshot each live, unprecomputed transmission
    /// and its validity stamps, and assign it to the tile owning its
    /// sender's grid column. Parallel middle: scoped workers, one per
    /// tile, compute receiver sets against the read-only world view.
    /// Serial epilogue: merge the lanes into the ready map in fixed
    /// tile order. The scratch buffers all live in the lanes and the
    /// spare pool, so a steady-state pass allocates nothing.
    fn precompute_pass(&mut self) {
        let par = &mut self.par;
        let world = &self.world;
        let Some(grid) = &world.grid else {
            return;
        };
        let k = par.threads;
        let range = world.phy.range_m();
        for lane in &mut par.lanes {
            lane.jobs.clear();
            debug_assert!(lane.done.is_empty(), "lane outputs not merged");
        }
        let mut jobs = 0usize;
        world.air.for_each_live(|id, shot, ptx| {
            if world.tx_of[ptx.sender] != Some(id) || par.ready.contains_key(&id) {
                return;
            }
            // Tiles stripe the grid's columns: tile `t` owns every
            // column ≡ t (mod k). `rem_euclid` keeps negative columns
            // (west of the origin cell) in range.
            let tile = grid.column_of(shot.pos).rem_euclid(k as i64) as usize;
            par.lanes[tile].jobs.push(PrecompJob {
                id,
                shot: *shot,
                sender: ptx.sender as u32,
                grid_stamp: grid.disk_stamp(shot.pos, range),
                air_stamp: world.air.overlap_stamp(shot.pos, 2.0 * range),
            });
            jobs += 1;
        });
        if jobs == 0 {
            return;
        }
        // Hand each lane one recycled receiver buffer per job.
        for lane in &mut par.lanes {
            while lane.bufs.len() < lane.jobs.len() {
                lane.bufs.push(par.spare.pop().unwrap_or_default());
            }
        }
        let view = PrecompView {
            grid,
            air: world.air.overlaps_view(),
            legs: &world.legs,
            down: &world.down,
            up_since: &world.up_since,
            shadow_cache: &world.shadow_cache,
            node_count: world.macs.len(),
            range,
            reception: world.phy.reception(),
            churny: world.phy.churn().is_some(),
            channel_seed: world.channel_seed,
        };
        std::thread::scope(|s| {
            for lane in &mut par.lanes {
                if lane.jobs.is_empty() {
                    continue;
                }
                s.spawn(move || {
                    for i in 0..lane.jobs.len() {
                        let job = lane.jobs[i];
                        let buf = lane.bufs.pop().expect("lane handed too few buffers");
                        let pc =
                            precompute_one(&view, &job, &mut lane.cands, &mut lane.overlaps, buf);
                        lane.done.push((job.id, pc));
                    }
                });
            }
        });
        // Merge in fixed tile order. (Entries are keyed by tx id and
        // consumed independently, so the order is for determinism
        // hygiene, not correctness.)
        for lane in &mut par.lanes {
            for (id, pc) in lane.done.drain(..) {
                par.ready.insert(id, pc);
            }
        }
    }

    /// Takes transmission `tx_id`'s precomputed receiver set if its
    /// validity stamps still hold; an invalidated set is recycled and
    /// `None` sends the caller down the serial path.
    fn take_precomp(&mut self, tx_id: u64, shot: &TxShot) -> Option<TxPrecomp> {
        let pc = self.par.ready.remove(&tx_id)?;
        let range = self.world.phy.range_m();
        let valid = self
            .world
            .grid
            .as_ref()
            .is_some_and(|g| g.disk_stamp(shot.pos, range) == pc.grid_stamp)
            && self.world.air.overlap_stamp(shot.pos, 2.0 * range) == pc.air_stamp;
        if valid {
            self.par.hits += 1;
            Some(pc)
        } else {
            let mut buf = pc.receivers;
            buf.clear();
            self.par.spare.push(buf);
            None
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Timer { node, key } => {
                let traced = self.world.trace.is_some();
                let mut api = NodeApi {
                    world: &mut self.world,
                    node,
                };
                self.protocols[node].on_timer(&mut api, key);
                if traced {
                    let digest = state_digest(&self.protocols[node]);
                    self.world
                        .trace_record(node, Dispatch::Timer { key }, digest);
                }
            }
            Event::MacAttempt { node, gen } => {
                self.world.handle_attempt(node, gen);
            }
            Event::Mobility { node } => {
                self.world.handle_mobility(node);
            }
            Event::GridRefresh { node, gen } => {
                if self.world.grid_gens[node] == gen {
                    self.world.slide_window(node);
                }
            }
            Event::Churn { node } => {
                // Unicast frames destroyed by a radio failure are
                // reported to the (still running) stack, which relies
                // on send failures as its link-break signal. The buffer
                // is borrowed out of the world (the callback needs the
                // world mutably) and handed back afterwards for reuse.
                self.world.handle_churn(node);
                let mut dropped = std::mem::take(&mut self.world.churn_scratch);
                for frame in dropped.drain(..) {
                    if let Some(dest) = frame.dest {
                        let disp = self.world.trace.is_some().then(|| Dispatch::SendFailure {
                            to: dest,
                            msg: frame.msg.clone(),
                        });
                        let mut api = NodeApi {
                            world: &mut self.world,
                            node,
                        };
                        self.protocols[node].on_send_failure(&mut api, dest, frame.msg);
                        if let Some(d) = disp {
                            let digest = state_digest(&self.protocols[node]);
                            self.world.trace_record(node, d, digest);
                        }
                    }
                }
                self.world.churn_scratch = dropped;
            }
            Event::TxEnd { tx_id } => self.handle_tx_end(tx_id),
        }
    }

    fn handle_tx_end(&mut self, tx_id: u64) {
        let Some((shot, rec)) = self.world.air.finish(tx_id) else {
            debug_assert!(false, "TxEnd for unknown transmission");
            return;
        };
        if self.world.tx_of[rec.sender] != Some(tx_id) {
            // The sender's radio failed mid-transmission (churn): the
            // frame was truncated on the air, nobody decodes it, and
            // the sender's MAC state is long gone. Discard any receiver
            // set precomputed before the failure (the failure bumped
            // the grid stamps, so it would not validate anyway).
            if let Some(pc) = self.par.ready.remove(&tx_id) {
                let mut buf = pc.receivers;
                buf.clear();
                self.par.spare.push(buf);
            }
            self.world.air.prune();
            return;
        }
        self.world.tx_of[rec.sender] = None;
        // Consume the precomputed receiver set if its stamps prove it
        // is exactly what the serial path would compute; otherwise
        // compute serially. (`finish` and `prune` never change stamps,
        // so the ordering around them is immaterial.)
        let mut from_pool = false;
        let receivers = match self.take_precomp(tx_id, &shot) {
            Some(pc) => {
                self.world.hot.rx_collision += pc.collisions;
                self.world.hot.rx_channel_drop += pc.channel_drops;
                from_pool = true;
                pc.receivers
            }
            None => self.world.uncorrupted_receivers(tx_id, &shot, rec.sender),
        };
        self.world.air.prune();
        let sender = rec.sender;
        let from = NodeId::new(sender as u32);
        match rec.frame.dest {
            None => {
                // Broadcast: the sender is done with this frame regardless
                // of who heard it. The per-receiver clone is the
                // `Message` cheap-clone contract at work: for `Arc`-backed
                // payloads it is a refcount bump, not a deep copy.
                self.world.finish_head_frame(sender);
                self.world.hot.rx_delivered += receivers.len() as u64;
                self.world.hot.rx_delivered_touched = true;
                for &r in &receivers {
                    let traced = self.world.trace.is_some();
                    let mut api = NodeApi {
                        world: &mut self.world,
                        node: r,
                    };
                    self.protocols[r].on_packet(
                        &mut api,
                        from,
                        rec.frame.msg.clone(),
                        RxKind::Broadcast,
                    );
                    if traced {
                        let digest = state_digest(&self.protocols[r]);
                        self.world.trace_record(
                            r,
                            Dispatch::Packet {
                                from,
                                msg: rec.frame.msg.clone(),
                                rx: RxKind::Broadcast,
                            },
                            digest,
                        );
                    }
                }
            }
            Some(dest) => {
                let ok = receivers.contains(&dest.index());
                if ok {
                    self.world.hot.rx_delivered += 1;
                    self.world.hot.rx_delivered_touched = true;
                    self.world.finish_head_frame(sender);
                    let disp = self.world.trace.is_some().then(|| Dispatch::Packet {
                        from,
                        msg: rec.frame.msg.clone(),
                        rx: RxKind::Unicast,
                    });
                    let mut api = NodeApi {
                        world: &mut self.world,
                        node: dest.index(),
                    };
                    // Exactly one receiver: the air record's copy of the
                    // frame is moved, not cloned.
                    self.protocols[dest.index()].on_packet(
                        &mut api,
                        from,
                        rec.frame.msg,
                        RxKind::Unicast,
                    );
                    if let Some(d) = disp {
                        let digest = state_digest(&self.protocols[dest.index()]);
                        self.world.trace_record(dest.index(), d, digest);
                    }
                } else if let Some(dropped) = self.world.unicast_retry_or_fail(sender) {
                    let disp = self.world.trace.is_some().then(|| Dispatch::SendFailure {
                        to: dest,
                        msg: dropped.msg.clone(),
                    });
                    let mut api = NodeApi {
                        world: &mut self.world,
                        node: sender,
                    };
                    self.protocols[sender].on_send_failure(&mut api, dest, dropped.msg);
                    if let Some(d) = disp {
                        let digest = state_digest(&self.protocols[sender]);
                        self.world.trace_record(sender, d, digest);
                    }
                }
            }
        }
        // Hand the receiver buffer back for the next `TxEnd` — the other
        // half of the `uncorrupted_receivers` scratch round-trip. Every
        // exit from the delivery code above passes through here; the
        // truncated-frame early return happens before the buffer is
        // taken, so it cannot leak it. A precomputed buffer goes back
        // to the parallel layer's pool instead — `rx_scratch` was never
        // taken on that path.
        if from_pool {
            let mut buf = receivers;
            buf.clear();
            self.par.spare.push(buf);
        } else {
            self.world.rx_scratch = receivers;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.world.node_count()
    }

    /// Total kernel events dispatched so far (timers, MAC attempts,
    /// transmission completions, mobility transitions, index refreshes,
    /// churn toggles). The events/second figure in `BENCH_<pr>.json`
    /// divides this by wall-clock time.
    pub fn events_processed(&self) -> u64 {
        self.world.queue.popped_count()
    }

    /// Total kernel events ever scheduled (processed + still pending).
    pub fn events_scheduled(&self) -> u64 {
        self.world.queue.scheduled_count()
    }

    /// Engine-global counters: MAC statistics plus anything protocols
    /// record through [`NodeApi::count`]. The MAC hot path bumps plain
    /// fields, not map entries; this folds those accumulated deltas
    /// into the persistent [`CounterSet`] (draining them, so repeated
    /// calls stay correct) and returns a borrow — no clone of the map
    /// per snapshot.
    pub fn counters(&mut self) -> &CounterSet {
        let hot = std::mem::take(&mut self.world.hot);
        hot.fold_into(&mut self.world.counters);
        &self.world.counters
    }

    /// The protocol instance of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn protocol(&self, node: NodeId) -> &P {
        &self.protocols[node.index()]
    }

    /// All protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Current position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position_of(&self, node: NodeId) -> Vec2 {
        self.world.position(node.index())
    }

    /// Sum of MAC tail drops across all nodes.
    pub fn total_queue_drops(&self) -> u64 {
        self.world.macs.iter().map(|m| m.tail_drops).sum()
    }

    /// `true` while `node`'s radio is down (churn). Always `false`
    /// without a churn model.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.world.down[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_mobility::{Field, PauseRange, RandomWaypoint, SpeedRange, Stationary};

    /// A test payload with an explicit wire size.
    #[derive(Clone, Debug, PartialEq)]
    struct TMsg {
        tag: u32,
        size: usize,
    }

    impl Message for TMsg {
        fn wire_size(&self) -> usize {
            self.size
        }
    }

    /// What a scripted node should do when a timer fires.
    #[derive(Clone, Debug)]
    enum Action {
        Broadcast(TMsg),
        Send(NodeId, TMsg),
    }

    /// A scripted protocol: runs `script` actions at given delays, records
    /// everything it receives.
    #[derive(Debug, Default)]
    struct Scripted {
        script: Vec<(SimDuration, Action)>,
        received: Vec<(SimTime, NodeId, TMsg, RxKind)>,
        failures: Vec<(NodeId, TMsg)>,
        timer_fires: Vec<(SimTime, TimerKey)>,
    }

    impl Scripted {
        fn with_script(script: Vec<(SimDuration, Action)>) -> Self {
            Scripted {
                script,
                ..Default::default()
            }
        }
    }

    impl Protocol for Scripted {
        type Msg = TMsg;

        fn start<C: ProtoCtx<TMsg>>(&mut self, ctx: &mut C) {
            for (i, (delay, _)) in self.script.iter().enumerate() {
                ctx.set_timer(*delay, i as TimerKey);
            }
        }

        fn on_packet<C: ProtoCtx<TMsg>>(
            &mut self,
            ctx: &mut C,
            from: NodeId,
            msg: TMsg,
            rx: RxKind,
        ) {
            self.received.push((ctx.now(), from, msg, rx));
        }

        fn on_timer<C: ProtoCtx<TMsg>>(&mut self, ctx: &mut C, key: TimerKey) {
            self.timer_fires.push((ctx.now(), key));
            if let Some((_, action)) = self.script.get(key as usize).cloned() {
                match action {
                    Action::Broadcast(m) => ctx.broadcast(m),
                    Action::Send(to, m) => ctx.send(to, m),
                }
            }
        }

        fn on_send_failure<C: ProtoCtx<TMsg>>(&mut self, _ctx: &mut C, to: NodeId, msg: TMsg) {
            self.failures.push((to, msg));
        }
    }

    fn stationary(x: f64) -> Box<dyn Mobility> {
        Box::new(Stationary::new(Vec2::new(x, 0.0)))
    }

    fn msg(tag: u32) -> TMsg {
        TMsg { tag, size: 64 }
    }

    #[test]
    fn unicast_delivery_between_neighbors() {
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Send(NodeId::new(1), msg(7)),
                )]),
            },
            NodeSetup {
                mobility: stationary(10.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 1, nodes);
        e.run_until(SimTime::from_secs(2));
        let rx = &e.protocol(NodeId::new(1)).received;
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].1, NodeId::new(0));
        assert_eq!(rx[0].2.tag, 7);
        assert_eq!(rx[0].3, RxKind::Unicast);
        assert_eq!(e.counters().get("mac.unicast_tx"), 1);
        assert_eq!(e.counters().get("mac.send_fail"), 0);
    }

    #[test]
    fn broadcast_respects_range() {
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Broadcast(msg(1)),
                )]),
            },
            NodeSetup {
                mobility: stationary(50.0),
                protocol: Scripted::default(),
            },
            NodeSetup {
                mobility: stationary(200.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 2, nodes);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.protocol(NodeId::new(1)).received.len(), 1);
        assert_eq!(e.protocol(NodeId::new(1)).received[0].3, RxKind::Broadcast);
        assert!(e.protocol(NodeId::new(2)).received.is_empty());
    }

    #[test]
    fn unicast_out_of_range_reports_failure() {
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Send(NodeId::new(1), msg(9)),
                )]),
            },
            NodeSetup {
                mobility: stationary(500.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 3, nodes);
        e.run_until(SimTime::from_secs(5));
        assert!(e.protocol(NodeId::new(1)).received.is_empty());
        let fails = &e.protocol(NodeId::new(0)).failures;
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].0, NodeId::new(1));
        assert_eq!(fails[0].1.tag, 9);
        assert_eq!(e.counters().get("mac.send_fail"), 1);
        // retry limit 7 => 8 transmissions total
        assert_eq!(e.counters().get("mac.unicast_tx"), 8);
    }

    #[test]
    fn hidden_terminal_collides_at_middle_node() {
        // A(0) and C(200) cannot hear each other (range 110) but both reach
        // B(100). Long frames guarantee overlap despite random backoff.
        let long = TMsg { tag: 5, size: 2000 };
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Broadcast(long.clone()),
                )]),
            },
            NodeSetup {
                mobility: stationary(100.0),
                protocol: Scripted::default(),
            },
            NodeSetup {
                mobility: stationary(200.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Broadcast(long.clone()),
                )]),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(110.0), 4, nodes);
        e.run_until(SimTime::from_secs(2));
        assert!(
            e.protocol(NodeId::new(1)).received.is_empty(),
            "middle node should lose both frames to the collision"
        );
        assert_eq!(e.counters().get("mac.rx_collision"), 2);
    }

    #[test]
    fn carrier_sense_serializes_audible_senders() {
        // A(0) and B(30) hear each other; both broadcast at t=1. Carrier
        // sense + backoff must serialize them so C(60) receives both.
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Broadcast(msg(1)),
                )]),
            },
            NodeSetup {
                mobility: stationary(30.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(1),
                    Action::Broadcast(msg(2)),
                )]),
            },
            NodeSetup {
                mobility: stationary(60.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 5, nodes);
        e.run_until(SimTime::from_secs(2));
        let tags: Vec<u32> = e
            .protocol(NodeId::new(2))
            .received
            .iter()
            .map(|r| r.2.tag)
            .collect();
        assert_eq!(tags.len(), 2, "both frames should arrive, got {tags:?}");
    }

    #[test]
    fn mac_queue_drains_in_order() {
        let script: Vec<_> = (0..5)
            .map(|i| (SimDuration::from_secs(1), Action::Broadcast(msg(i))))
            .collect();
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(script),
            },
            NodeSetup {
                mobility: stationary(10.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 6, nodes);
        e.run_until(SimTime::from_secs(2));
        let tags: Vec<u32> = e
            .protocol(NodeId::new(1))
            .received
            .iter()
            .map(|r| r.2.tag)
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn timers_fire_at_requested_times() {
        let nodes = vec![NodeSetup {
            mobility: stationary(0.0),
            protocol: Scripted::with_script(vec![
                (SimDuration::from_millis(250), Action::Broadcast(msg(0))),
                (SimDuration::from_millis(100), Action::Broadcast(msg(1))),
            ]),
        }];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 7, nodes);
        e.run_until(SimTime::from_secs(1));
        let fires = &e.protocol(NodeId::new(0)).timer_fires;
        assert_eq!(fires.len(), 2);
        assert_eq!(fires[0], (SimTime::ZERO + SimDuration::from_millis(100), 1));
        assert_eq!(fires[1], (SimTime::ZERO + SimDuration::from_millis(250), 0));
    }

    #[test]
    fn mobility_breaks_links_over_time() {
        // Node 1 moves from x=10 (in range) to far away; a unicast at t=0.5
        // succeeds, one at t=400 fails.
        let f = Field::new(2000.0, 1.0);
        let mut rng = SeedSplitter::new(9).stream(StreamKind::Mobility, 99);
        // Deterministic "mobility": start at 10 and walk; with a narrow
        // field the node drifts along x. We use waypoint with fixed speed.
        let m = RandomWaypoint::from_point(
            f,
            SpeedRange::fixed(5.0),
            PauseRange::none(),
            Vec2::new(10.0, 0.0),
            &mut rng,
        );
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![
                    (
                        SimDuration::from_millis(500),
                        Action::Send(NodeId::new(1), msg(1)),
                    ),
                    (
                        SimDuration::from_secs(400),
                        Action::Send(NodeId::new(1), msg(2)),
                    ),
                ]),
            },
            NodeSetup {
                mobility: Box::new(m),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 10, nodes);
        e.run_until(SimTime::from_secs(500));
        let got: Vec<u32> = e
            .protocol(NodeId::new(1))
            .received
            .iter()
            .map(|r| r.2.tag)
            .collect();
        let failed: Vec<u32> = e
            .protocol(NodeId::new(0))
            .failures
            .iter()
            .map(|f| f.1.tag)
            .collect();
        // Whatever the trajectory, message 1 (at 10 m) must arrive. If the
        // node wandered out of range by t=400, message 2 must show up as a
        // failure instead of silently vanishing.
        assert!(got.contains(&1));
        assert!(got.contains(&2) || failed.contains(&2));
    }

    #[test]
    fn graded_loss_drops_some_broadcasts_near_the_edge() {
        // 200 broadcasts over a 70 m link with a harsh edge PER: some
        // must get through, some must be lost, and the loss shows up in
        // the channel-drop counter — never as a collision.
        let script: Vec<_> = (0..200)
            .map(|i| {
                (
                    SimDuration::from_millis(100 * (i as u64 + 1)),
                    Action::Broadcast(msg(i)),
                )
            })
            .collect();
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(script),
            },
            NodeSetup {
                mobility: stationary(70.0),
                protocol: Scripted::default(),
            },
        ];
        let phy = PhyParams::paper_default(75.0)
            .with_reception(crate::ReceptionModel::DistanceGraded { edge_per: 0.9 });
        let mut e = Engine::new(phy, 21, nodes);
        e.run_until(SimTime::from_secs(30));
        let got = e.protocol(NodeId::new(1)).received.len() as u64;
        let dropped = e.counters().get("mac.rx_channel_drop");
        assert_eq!(got + dropped, 200);
        assert!(got > 0, "some frames must survive");
        assert!(dropped > 50, "a 0.9-edge PER at 70/75 m must hurt");
        assert_eq!(e.counters().get("mac.rx_collision"), 0);
    }

    #[test]
    fn shadowing_blocks_obstructed_links_entirely() {
        // With a static per-link fade, a given link either always works
        // or always fails at a fixed distance. Sweep several receivers:
        // each must see all 20 frames or none.
        let script: Vec<_> = (0..20)
            .map(|i| {
                (SimDuration::from_millis(200 * (i as u64 + 1)), {
                    Action::Broadcast(msg(i))
                })
            })
            .collect();
        let mut nodes = vec![NodeSetup {
            mobility: stationary(0.0),
            protocol: Scripted::with_script(script),
        }];
        for r in 1..10u32 {
            // All at 65 m, just inside the 75 m disk, spread on a ring.
            let ang = r as f64;
            nodes.push(NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(
                    65.0 * ang.cos(),
                    65.0 * ang.sin(),
                ))),
                protocol: Scripted::default(),
            });
        }
        let phy = PhyParams::paper_default(75.0).with_reception(crate::ReceptionModel::Shadowing {
            sigma_db: 10.0,
            path_loss_exp: 3.0,
        });
        let mut e = Engine::new(phy, 5, nodes);
        e.run_until(SimTime::from_secs(30));
        let counts: Vec<usize> = (1..10u32)
            .map(|r| e.protocol(NodeId::new(r)).received.len())
            .collect();
        assert!(
            counts.iter().all(|&c| c == 0 || c == 20),
            "static shadowing must be all-or-nothing per link: {counts:?}"
        );
        assert!(counts.contains(&20), "{counts:?}");
        assert!(counts.contains(&0), "{counts:?}");
    }

    #[test]
    fn churn_toggles_radios_and_drops_traffic() {
        // A steady broadcast stream under aggressive churn: the
        // receiver misses a chunk of frames, fail/recover counters
        // move, and runs stay deterministic.
        let script: Vec<_> = (0..300)
            .map(|i| {
                (
                    SimDuration::from_millis(100 * (i as u64 + 1)),
                    Action::Broadcast(msg(i)),
                )
            })
            .collect();
        let build = || {
            let nodes = vec![
                NodeSetup {
                    mobility: stationary(0.0),
                    protocol: Scripted::with_script(script.clone()),
                },
                NodeSetup {
                    mobility: stationary(10.0),
                    protocol: Scripted::default(),
                },
            ];
            let phy = PhyParams::paper_default(75.0).with_churn(crate::ChurnParams::new(5.0, 5.0));
            Engine::new(phy, 31, nodes)
        };
        let mut e = build();
        e.run_until(SimTime::from_secs(40));
        let c = e.counters();
        assert!(c.get("churn.fail") > 0, "{c}");
        assert!(c.get("churn.recover") > 0, "{c}");
        // ~half the time either endpoint is down: substantial loss,
        // via sender-side drops and/or deaf receiver windows.
        let got = e.protocol(NodeId::new(1)).received.len();
        assert!(got < 290, "churn must lose traffic, got {got}");
        assert!(got > 0, "some frames must land in up-up windows");
        // Deterministic replay.
        let mut e2 = build();
        e2.run_until(SimTime::from_secs(40));
        assert_eq!(
            e.protocol(NodeId::new(1)).received,
            e2.protocol(NodeId::new(1)).received
        );
        let ca: Vec<_> = e.counters().iter().collect();
        let cb: Vec<_> = e2.counters().iter().collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn churn_accounts_for_every_unicast_frame() {
        // Under churn, every unicast the protocol attempts ends in
        // exactly one of three ways: delivered to the receiver, a
        // failure callback (retry exhaustion or queue destroyed by a
        // radio failure), or discarded because the sender was already
        // down (counted). Nothing may vanish silently.
        let script: Vec<_> = (0..100)
            .map(|i| {
                (
                    SimDuration::from_millis(100 * (i as u64 + 1)),
                    Action::Send(NodeId::new(1), msg(i)),
                )
            })
            .collect();
        for seed in [1, 7, 42] {
            let nodes = vec![
                NodeSetup {
                    mobility: stationary(0.0),
                    protocol: Scripted::with_script(script.clone()),
                },
                NodeSetup {
                    mobility: stationary(10.0),
                    protocol: Scripted::default(),
                },
            ];
            let phy = PhyParams::paper_default(75.0).with_churn(crate::ChurnParams::new(3.0, 2.0));
            let mut e = Engine::new(phy, seed, nodes);
            e.run_until(SimTime::from_secs(60));
            let delivered = e.protocol(NodeId::new(1)).received.len() as u64;
            let failed = e.protocol(NodeId::new(0)).failures.len() as u64;
            let down_drops = e.counters().get("mac.down_drop");
            assert_eq!(
                delivered + failed + down_drops,
                100,
                "seed {seed}: {delivered} delivered + {failed} failed + {down_drops} down-drops"
            );
            assert!(failed > 0, "seed {seed}: churn must destroy some frames");
        }
    }

    #[test]
    fn churned_unicast_to_dead_node_reports_failure() {
        // Receiver mean-up is tiny and mean-down is huge: it dies
        // almost immediately and stays dead, so the unicast at t=5 s
        // exhausts its retries.
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![(
                    SimDuration::from_secs(5),
                    Action::Send(NodeId::new(1), msg(3)),
                )]),
            },
            NodeSetup {
                mobility: stationary(10.0),
                protocol: Scripted::default(),
            },
        ];
        let phy = PhyParams::paper_default(75.0).with_churn(crate::ChurnParams::new(0.001, 1e6));
        let mut e = Engine::new(phy, 8, nodes);
        e.run_until(SimTime::from_secs(20));
        assert!(e.is_down(NodeId::new(0)));
        assert!(e.is_down(NodeId::new(1)));
        // Node 0 was also dead by t=5 s, so its send was dropped at the
        // (off) radio; nothing was received anywhere.
        assert_eq!(e.counters().get("mac.down_drop"), 1);
        assert!(e.protocol(NodeId::new(1)).received.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        fn build() -> Engine<Scripted> {
            let f = Field::paper();
            let splitter = SeedSplitter::new(77);
            let nodes = (0..10u32)
                .map(|i| {
                    let mut rng = splitter.stream(StreamKind::Placement, i as u64);
                    let script = if i == 0 {
                        (0..20)
                            .map(|k| {
                                (
                                    SimDuration::from_millis(100 * k as u64 + 1),
                                    Action::Broadcast(msg(k)),
                                )
                            })
                            .collect()
                    } else {
                        vec![]
                    };
                    NodeSetup {
                        mobility: Box::new(RandomWaypoint::new(
                            f,
                            SpeedRange::new(0.0, 5.0),
                            PauseRange::paper(),
                            &mut rng,
                        )) as Box<dyn Mobility>,
                        protocol: Scripted::with_script(script),
                    }
                })
                .collect();
            Engine::new(PhyParams::paper_default(75.0), 42, nodes)
        }
        let mut a = build();
        let mut b = build();
        a.run_until(SimTime::from_secs(30));
        b.run_until(SimTime::from_secs(30));
        for i in 0..10u32 {
            let ra: Vec<_> = a
                .protocol(NodeId::new(i))
                .received
                .iter()
                .map(|r| (r.0, r.1, r.2.tag))
                .collect();
            let rb: Vec<_> = b
                .protocol(NodeId::new(i))
                .received
                .iter()
                .map(|r| (r.0, r.1, r.2.tag))
                .collect();
            assert_eq!(ra, rb, "node {i} diverged");
        }
        let ca: Vec<_> = a.counters().iter().collect();
        let cb: Vec<_> = b.counters().iter().collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn queue_drop_counter() {
        // Capacity-4 queue, 10 back-to-back frames from one timer burst.
        let script: Vec<_> = (0..10)
            .map(|i| (SimDuration::from_secs(1), Action::Broadcast(msg(i))))
            .collect();
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(script),
            },
            NodeSetup {
                mobility: stationary(10.0),
                protocol: Scripted::default(),
            },
        ];
        let phy = PhyParams::paper_default(75.0).with_queue_capacity(4);
        let mut e = Engine::new(phy, 8, nodes);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.total_queue_drops(), 6);
        assert_eq!(e.counters().get("mac.queue_drop"), 6);
        assert_eq!(e.protocol(NodeId::new(1)).received.len(), 4);
    }

    #[test]
    fn run_until_is_resumable() {
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0),
                protocol: Scripted::with_script(vec![
                    (SimDuration::from_secs(1), Action::Broadcast(msg(1))),
                    (SimDuration::from_secs(3), Action::Broadcast(msg(2))),
                ]),
            },
            NodeSetup {
                mobility: stationary(10.0),
                protocol: Scripted::default(),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 11, nodes);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.protocol(NodeId::new(1)).received.len(), 1);
        assert_eq!(e.now(), SimTime::from_secs(2));
        e.run_until(SimTime::from_secs(4));
        assert_eq!(e.protocol(NodeId::new(1)).received.len(), 2);
    }
}
