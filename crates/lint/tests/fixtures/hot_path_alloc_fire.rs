//! must-fire: allocation written inside a manifest hot-path function,
//! plus the manifest-rot finding — the fixture manifest also names a
//! `renamed_hot_fn` this file deliberately does not define.

pub fn emit_receivers(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (w, &bits) in words.iter().enumerate() {
        if bits != 0 {
            out.push(w);
        }
    }
    let labels: Vec<String> = out.iter().map(|i| format!("rx{i}")).collect();
    drop(labels);
    out.to_vec()
}

pub fn cold_path_allocates_freely() -> Vec<u8> {
    Vec::new()
}
