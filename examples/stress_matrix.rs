//! The cross-protocol stress matrix: every protocol stack under every
//! stress level, one comparison table.
//!
//! The paper's evaluation (§5) runs an ideal unit-disk channel. This
//! example turns on the opt-in hostility knobs — distance-graded packet
//! loss, log-normal shadowing, and radio fail/recover churn — and sweeps
//! {MAODV + gossip, bare MAODV, ODMRP} across
//! {loss model} × {churn level} × {speed}, pooling each cell over
//! independent seeds on the parallel harness. Output is deterministic
//! for any `AG_THREADS` value.
//!
//! Run (full paper scale: 27-cell default matrix × 2 speeds, 10 seeds,
//! 600 s; budget accordingly):
//!
//! ```text
//! cargo run --release --example stress_matrix
//! ```
//!
//! or reduced, as CI does:
//!
//! ```text
//! AG_SEEDS=2 AG_SIM_SECS=30 cargo run --release --example stress_matrix
//! ```

// Wall-clock use here is driver-side progress reporting only; the
// simulation itself tells time exclusively via SimTime (the ag-lint
// waivers at each call site say the same to the first lint layer).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_harness::matrix::MatrixSpec;
use ag_harness::report;

fn main() {
    let seeds = report::env_seeds();
    let secs = report::env_sim_secs();
    let spec = MatrixSpec::paper_stress(seeds, secs);
    eprintln!(
        "stress matrix: {} protocols x {} loss x {} churn x {} speeds = {} cells, \
         {seeds} seeds each, {secs} s simulated",
        spec.protocols.len(),
        spec.losses.len(),
        spec.churns.len(),
        spec.speeds.len(),
        spec.cell_count(),
    );
    // ag-lint: allow(wall-clock) -- driver-side progress timing, outside the simulation
    let t0 = Instant::now();
    let result = spec.run();
    eprintln!("completed in {:.1} s wall", t0.elapsed().as_secs_f64());
    println!("{}", report::render_matrix(&result));

    // The paper's qualitative claim, restated on the hostile grid:
    // gossip's delivery advantage over bare MAODV per stress level.
    println!("# gossip mean delivery advantage over bare MAODV, per cell:");
    for row in result.cells.chunks(result.protocols.len()) {
        let gossip = row
            .iter()
            .find(|c| c.protocol == ag_harness::ProtocolKind::Gossip);
        let maodv = row
            .iter()
            .find(|c| c.protocol == ag_harness::ProtocolKind::Maodv);
        if let (Some(g), Some(m)) = (gossip, maodv) {
            println!(
                "  {:>11} {:>11} {:>4.1} m/s: {:+.1} pp",
                g.loss,
                g.churn,
                g.max_speed,
                g.delivery_percent() - m.delivery_percent()
            );
        }
    }
}
