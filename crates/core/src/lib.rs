//! # ag-core: Anonymous Gossip
//!
//! The primary contribution of *Anonymous Gossip: Improving Multicast
//! Reliability in Mobile Ad-Hoc Networks* (Chandra, Ramasubramanian,
//! Birman — ICDCS 2001), implemented over the `ag-maodv` substrate.
//!
//! The protocol runs in two concurrent phases:
//!
//! 1. **Multicast phase** — messages are multicast unreliably over the
//!    MAODV tree.
//! 2. **Gossip phase** — every member runs a periodic background gossip
//!    round that *pulls* packets it believes it has lost from some other
//!    member — without knowing who that member is.
//!
//! Each round is either (paper §4.3):
//!
//! * **Anonymous gossip** (probability `p_anon`) — the request takes a
//!   random walk along the multicast tree. Every relay forwards it to a
//!   random next hop, biased toward the smaller `nearest_member`
//!   distance (§4.2 locality); a member relay flips a coin to accept it
//!   instead. The accepting member — whose identity the initiator never
//!   needed to know — unicasts any requested packets back.
//! * **Cached gossip** — the request is unicast directly to a member
//!   drawn from the bounded [`MemberCache`], which fills itself for free
//!   from data packets, route replies and earlier gossip (§4.3).
//!
//! The pull state is the per-member [`LostTable`] (believed-missing
//! sequence numbers) and [`HistoryTable`] (recent packets kept for
//! answering), both bounded exactly as §4.4 describes.
//!
//! [`AnonymousGossip`] is the full node stack ([`ag_net::Protocol`]
//! implementation) used by the examples, the experiment harness, the
//! benchmarks and the `ag-check` model checker (handlers are written
//! against the pure [`ag_net::ProtoCtx`] facade, so the identical code
//! runs under the engine and the exhaustive explorer — see
//! `docs/MODEL_CHECKING.md`).
//!
//! # Example
//!
//! See [`AnonymousGossip`] for a runnable three-node example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod history;
mod lost;
mod member_cache;
mod message;
mod metrics;
mod protocol;

pub use config::AgConfig;
pub use history::HistoryTable;
pub use lost::LostTable;
pub use member_cache::{CacheEntry, MemberCache};
pub use message::{AgMsg, GossipReply, GossipRequest, PacketId, PacketRecord};
pub use metrics::GossipMetrics;
pub use protocol::AnonymousGossip;
