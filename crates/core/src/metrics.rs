//! Gossip-layer measurement: the paper's goodput metric (§5.5) plus
//! round/walk accounting for the overhead analysis.

use serde::Serialize;

/// Counters describing one member's gossip activity.
///
/// **Goodput** (§5.5) is "the percentage of non-duplicate messages
/// received through gossip replies to the total number of messages
/// received through gossip replies" — the fraction of recovery traffic
/// that was actually useful.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct GossipMetrics {
    /// Gossip rounds that chose anonymous gossip.
    pub rounds_anonymous: u64,
    /// Gossip rounds that chose cached gossip.
    pub rounds_cached: u64,
    /// Rounds skipped (no eligible next hop / empty cache fallback
    /// unavailable).
    pub rounds_skipped: u64,
    /// Walking requests this node accepted as a member.
    pub requests_accepted: u64,
    /// Walking requests this node propagated onward.
    pub requests_propagated: u64,
    /// Walking requests dropped (TTL exhausted / nowhere to go).
    pub requests_dropped: u64,
    /// Gossip replies sent, in packets.
    pub reply_packets_sent: u64,
    /// Packets received inside gossip replies (duplicates included).
    pub reply_packets_received: u64,
    /// Of those, packets this member did not already have.
    pub reply_packets_useful: u64,
}

impl GossipMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The §5.5 goodput percentage, or `None` if no reply packet has
    /// arrived yet (nothing to measure).
    pub fn goodput_percent(&self) -> Option<f64> {
        if self.reply_packets_received == 0 {
            None
        } else {
            Some(100.0 * self.reply_packets_useful as f64 / self.reply_packets_received as f64)
        }
    }

    /// Total gossip rounds attempted.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_anonymous + self.rounds_cached + self.rounds_skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_none_without_replies() {
        assert_eq!(GossipMetrics::new().goodput_percent(), None);
    }

    #[test]
    fn goodput_percentage() {
        let m = GossipMetrics {
            reply_packets_received: 50,
            reply_packets_useful: 49,
            ..Default::default()
        };
        assert!((m.goodput_percent().unwrap() - 98.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_total_sums() {
        let m = GossipMetrics {
            rounds_anonymous: 3,
            rounds_cached: 2,
            rounds_skipped: 1,
            ..Default::default()
        };
        assert_eq!(m.rounds_total(), 6);
    }
}
