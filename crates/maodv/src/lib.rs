//! # ag-maodv: Multicast Ad-hoc On-demand Distance Vector routing
//!
//! A from-scratch implementation of the MAODV subset the paper's §3
//! describes (IETF draft-05 behaviour), plus the unicast AODV core it is
//! built on. This is the *unreliable multicast substrate* that Anonymous
//! Gossip (`ag-core`) recovers losses for.
//!
//! ## What is implemented
//!
//! * **Unicast AODV** — route table with destination sequence numbers,
//!   RREQ flood / RREP reverse-path route discovery, per-use lifetime
//!   refresh, and buffered sends while discovery is in flight
//!   ([`route_table`], parts of [`Maodv`]).
//! * **Multicast tree** — the Multicast Route Table with enabled/inactive
//!   next hops ([`mrt`]), Join-RREQ → RREP → MACT activation, prune,
//!   duplicate-suppressed data forwarding along tree edges, HELLO-based
//!   neighbour liveness ([`neighbors`]), downstream link repair with the
//!   hop-count-to-leader extension, leader takeover on partition and
//!   GRPH-based leader merge.
//! * **The AG hooks** — the `nearest_member` field on every next hop with
//!   its split-horizon min-propagation rule (paper §4.2), one-hop and
//!   routed extension payloads for the gossip layer, and
//!   [`Upcall`]-based delivery/membership notifications.
//!
//! ## Layering
//!
//! [`Maodv`] is a plain state machine driven through `Protocol`-shaped
//! methods that *return* [`Upcall`]s instead of taking a callback trait;
//! the Anonymous Gossip layer wraps it by composition. For bare-MAODV
//! baselines (the paper's comparison series), [`MaodvProtocol`] adapts
//! [`Maodv`] directly to [`ag_net::Protocol`].
//!
//! # Example
//!
//! See [`MaodvProtocol`] for a runnable two-member example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod messages;
mod node;
mod protocol;

pub mod delivery;
pub mod mrt;
pub mod neighbors;
pub mod route_table;
pub mod seen;

pub use config::MaodvConfig;
pub use messages::{
    DataHeader, GrphPayload, MactKind, MactPayload, MaodvMsg, NoExt, RoutedExt, RrepPayload,
    RreqPayload,
};
pub use node::{
    Maodv, MaodvCtx, Upcall, TIMER_GRPH, TIMER_HELLO, TIMER_JOIN_START, TIMER_TICK, TIMER_USER_BASE,
};
pub use protocol::{MaodvProtocol, TrafficSource};

/// A multicast group address.
///
/// The paper evaluates a single group; the type keeps call sites honest
/// and leaves room for multi-group scenarios.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct GroupId(pub u16);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}
