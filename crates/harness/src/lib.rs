//! # ag-harness: the paper's evaluation, regenerated
//!
//! Everything in §5 of *Anonymous Gossip* (ICDCS 2001) is reproducible
//! from this crate:
//!
//! * [`Scenario`] — the §5.1 simulation environment (200 m × 200 m
//!   field, random waypoint with `U(0, 80 s)` pauses, ⅓ of nodes in one
//!   group, a single CBR source emitting 2201 64-byte packets, 802.11 at
//!   2 Mbps) with every paper knob (range, speed, node count) exposed.
//! * [`RunResult`] / [`run_gossip`] / [`run_maodv`] — one simulation run
//!   of either protocol stack, reduced to per-member delivery counts and
//!   gossip metrics.
//! * [`experiment`] — multi-seed parameter sweeps producing the paper's
//!   "average with min/max error bars across receivers" series.
//! * [`figures`] — one [`figures::FigureSpec`] per paper figure (2–8).
//! * [`report`] — ASCII/CSV rendering of a regenerated figure.
//!
//! * [`parallel`] — the multi-seed worker pool; seeds of a sweep point
//!   run concurrently and merge deterministically in seed order.
//! * [`matrix`] — beyond the paper: the cross-protocol stress matrix
//!   sweeping {gossip, bare MAODV, ODMRP} × {loss model, churn level,
//!   speed} over the opt-in channel/churn knobs
//!   ([`Scenario::with_reception`], [`Scenario::with_churn`],
//!   [`Scenario::lossy`]).
//!
//! The `fig2` … `fig8` binaries print each figure's series; environment
//! variables `AG_SEEDS` (default 10) and `AG_SIM_SECS` (default 600)
//! scale the sweep down for quick runs, and `AG_THREADS` caps the
//! worker-thread count (default: all available cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod result;
mod scenario;

pub mod experiment;
pub mod figures;
pub mod matrix;
pub mod parallel;
pub mod report;

pub use ag_net::{ChurnParams, ReceptionModel};
pub use parallel::{run_seeds, Parallelism};
pub use result::{MemberStats, RunResult, RunStats};
pub use scenario::{
    run, run_counting, run_gossip, run_gossip_counting, run_maodv, run_maodv_counting, run_odmrp,
    run_odmrp_counting, ProtocolKind, Scenario, GROUP,
};
