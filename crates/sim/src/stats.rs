//! Measurement primitives used by the experiment harness.
//!
//! The paper plots, for every parameter point, the *average* number of
//! packets received per group member with *min/max error bars* across
//! members (§5.1). [`Summary`] captures exactly that triple (plus variance,
//! used in EXPERIMENTS.md to verify the "decreased variation" claim), and
//! [`Histogram`] backs the goodput distribution of Figure 8.
//!
//! Everything here is *streaming*: accumulators are constant-size
//! regardless of how many observations they absorb, and every type has
//! an associative `merge`, so metropolis-scale runs can fold millions
//! of per-member observations without the reduced result growing with
//! the node count ([`SummarySet`] is the labelled bundle the harness
//! uses for exactly that).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use ag_sim::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running summary of a stream of observations: count, mean, min, max and
/// (Welford) variance — no sample storage.
///
/// # Example
///
/// ```
/// use ag_sim::stats::Summary;
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Max − min; the length of the paper's error bar.
    pub fn spread(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} max={:.2} sd={:.2}",
            self.count,
            self.mean(),
            self.min(),
            self.max(),
            self.stddev()
        )
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with saturating edge bins.
///
/// # Example
///
/// ```
/// use ag_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(95.0);
/// h.record(95.0);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(9), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation; values outside the range clamp to edge bins.
    pub fn record(&mut self, x: f64) {
        let n = self.bins.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// Lower edge of bin `idx`.
    pub fn bin_lo(&self, idx: usize) -> f64 {
        self.lo + (self.hi - self.lo) * idx as f64 / self.bins.len() as f64
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bins[i]))
    }

    /// Merges another histogram into this one bin-by-bin, so per-run
    /// histograms can be combined associatively (like [`Summary::merge`]
    /// and [`CounterSet::merge`]) regardless of which worker produced
    /// them.
    ///
    /// # Panics
    ///
    /// Panics unless both histograms share the same range and bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "merging incompatible histograms"
        );
        for (b, ob) in self.bins.iter_mut().zip(&other.bins) {
            *b += ob;
        }
        self.total += other.total;
    }
}

/// A labelled collection of streaming [`Summary`] accumulators.
///
/// The metropolis-scale harness paths fold per-member observations
/// (packets received, gossip rounds, goodput…) straight into named
/// summaries instead of materialising one record per member, so the
/// reduced result of a run is a handful of fixed-size accumulators no
/// matter how many nodes the scenario has. Like [`CounterSet`], keys
/// are static strings so call sites stay greppable; like [`Summary`],
/// merging is associative, so per-worker sets pooled in a fixed order
/// reproduce the serial fold bit-for-bit on count/min/max (and to
/// floating-point merge tolerance on mean/variance).
///
/// # Example
///
/// ```
/// use ag_sim::stats::SummarySet;
/// let mut s = SummarySet::new();
/// s.record("received", 3.0);
/// s.record("received", 5.0);
/// assert_eq!(s.get("received").mean(), 4.0);
/// assert_eq!(s.get("missing").count(), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize)]
pub struct SummarySet {
    summaries: BTreeMap<&'static str, Summary>,
}

impl SummarySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation under `name`, creating the summary if
    /// absent.
    pub fn record(&mut self, name: &'static str, x: f64) {
        self.summaries.entry(name).or_default().record(x);
    }

    /// The summary for `name` (an empty summary if never touched).
    pub fn get(&self, name: &str) -> Summary {
        self.summaries.get(name).copied().unwrap_or_default()
    }

    /// Iterates over `(name, summary)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Summary)> + '_ {
        self.summaries.iter().map(|(k, v)| (*k, v))
    }

    /// Merges another set into this one, summary by summary.
    pub fn merge(&mut self, other: &SummarySet) {
        for (k, v) in other.iter() {
            self.summaries.entry(k).or_default().merge(v);
        }
    }
}

impl fmt::Display for SummarySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.summaries.is_empty() {
            return write!(f, "(no summaries)");
        }
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

/// A labelled collection of counters, used for per-run protocol statistics
/// (packets sent, collisions, RREQs, gossip replies…).
///
/// Keys are static strings so call sites stay greppable.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, Counter>,
}

impl CounterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.counters.entry(name).or_default().add(n);
    }

    /// Adds one to counter `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.value())
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, v.value()))
    }

    /// Merges another set into this one by summing matching counters.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return write!(f, "(no counters)");
        }
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.spread(), 0.0);
    }

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.spread(), 3.0);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let mut a: Summary = [1.0, 5.0, 2.0].into_iter().collect();
        let b: Summary = [9.0, 3.0].into_iter().collect();
        a.merge(&b);
        let all: Summary = [1.0, 5.0, 2.0, 9.0, 3.0].into_iter().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        let b: Summary = [4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 4.0);
        let mut c: Summary = [4.0].into_iter().collect();
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn histogram_clamps_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-100.0);
        h.record(100.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(4), 1);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(2), 50.0);
        assert_eq!(h.bin_len(), 4);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        let mut b = Histogram::new(0.0, 100.0, 10);
        let mut whole = Histogram::new(0.0, 100.0, 10);
        for &x in &[5.0, 15.0, 15.0, 95.0] {
            a.record(x);
            whole.record(x);
        }
        for &x in &[15.0, 55.0, -3.0] {
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for i in 0..10 {
            assert_eq!(a.bin_count(i), whole.bin_count(i), "bin {i}");
        }
    }

    #[test]
    fn histogram_merge_empty_into_empty() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        let b = Histogram::new(0.0, 100.0, 10);
        a.merge(&b);
        assert_eq!(a.total(), 0);
        assert!(a.iter().all(|(_, c)| c == 0));
    }

    #[test]
    fn histogram_merge_empty_and_nonempty_both_ways() {
        // empty ⊕ non-empty: counts adopted wholesale.
        let mut empty = Histogram::new(0.0, 100.0, 10);
        let mut full = Histogram::new(0.0, 100.0, 10);
        full.record(15.0);
        full.record(95.0);
        empty.merge(&full);
        assert_eq!(empty.total(), 2);
        assert_eq!(empty.bin_count(1), 1);
        assert_eq!(empty.bin_count(9), 1);
        // non-empty ⊕ empty: a no-op.
        let before: Vec<_> = full.iter().collect();
        full.merge(&Histogram::new(0.0, 100.0, 10));
        assert_eq!(full.total(), 2);
        assert_eq!(full.iter().collect::<Vec<_>>(), before);
    }

    #[test]
    #[should_panic]
    fn histogram_merge_rejects_mismatched_range() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        let b = Histogram::new(0.0, 50.0, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn histogram_merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        let b = Histogram::new(0.0, 100.0, 5);
        a.merge(&b);
    }

    #[test]
    fn summary_set_merge_matches_sequential() {
        let mut a = SummarySet::new();
        let mut b = SummarySet::new();
        let mut whole = SummarySet::new();
        for &x in &[1.0, 5.0, 2.0] {
            a.record("rx", x);
            whole.record("rx", x);
        }
        a.record("rounds", 7.0);
        whole.record("rounds", 7.0);
        for &x in &[9.0, 3.0] {
            b.record("rx", x);
            whole.record("rx", x);
        }
        a.merge(&b);
        assert_eq!(a.get("rx").count(), whole.get("rx").count());
        assert!((a.get("rx").mean() - whole.get("rx").mean()).abs() < 1e-12);
        assert_eq!(a.get("rx").min(), whole.get("rx").min());
        assert_eq!(a.get("rx").max(), whole.get("rx").max());
        assert_eq!(a.get("rounds").count(), 1);
        assert_eq!(a.get("missing").count(), 0);
    }

    #[test]
    fn summary_set_merge_brings_new_keys() {
        let mut a = SummarySet::new();
        let mut b = SummarySet::new();
        b.record("only_b", 4.0);
        a.merge(&b);
        assert_eq!(a.get("only_b").mean(), 4.0);
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["only_b"]);
    }

    #[test]
    fn summary_set_display() {
        let mut s = SummarySet::new();
        s.record("rx", 2.0);
        assert!(s.to_string().starts_with("rx: n=1"));
        assert_eq!(SummarySet::new().to_string(), "(no summaries)");
    }

    #[test]
    fn counter_set_merge_and_display() {
        let mut a = CounterSet::new();
        a.incr("tx");
        let mut b = CounterSet::new();
        b.add("tx", 2);
        b.incr("rx");
        a.merge(&b);
        assert_eq!(a.get("tx"), 3);
        assert_eq!(a.get("rx"), 1);
        assert_eq!(a.get("missing"), 0);
        assert!(a.to_string().contains("tx: 3"));
        assert_eq!(CounterSet::new().to_string(), "(no counters)");
    }

    proptest! {
        /// Welford mean/min/max agree with naive computation.
        #[test]
        fn prop_summary_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: Summary = xs.iter().copied().collect();
            let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * naive_mean.abs().max(1.0));
            prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }

        /// Histogram total equals number of records, regardless of values.
        #[test]
        fn prop_histogram_conserves_mass(xs in prop::collection::vec(-1e3f64..1e3, 0..200)) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            for &x in &xs {
                h.record(x);
            }
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), xs.len() as u64);
        }

        /// Merging summaries in any split matches the sequential result.
        #[test]
        fn prop_summary_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..100), split in 1usize..99) {
            let split = split.min(xs.len() - 1);
            let mut left: Summary = xs[..split].iter().copied().collect();
            let right: Summary = xs[split..].iter().copied().collect();
            left.merge(&right);
            let whole: Summary = xs.iter().copied().collect();
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }
}
