//! # Anonymous Gossip — workspace umbrella crate
//!
//! Reproduction of *Anonymous Gossip: Improving Multicast Reliability in
//! Mobile Ad-Hoc Networks* (Chandra, Ramasubramanian, Birman — ICDCS
//! 2001). This top-level package carries the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`), and re-exports
//! every workspace crate so downstream users can depend on a single
//! name.
//!
//! The actual implementation lives in the `crates/` members:
//!
//! * [`sim`] — deterministic discrete-event kernel, RNG streams, stats.
//! * [`mobility`] — analytic random-waypoint and stationary models.
//! * [`net`] — unit-disk PHY, 802.11 DCF MAC, the network [`net::Engine`].
//! * [`maodv`] — the MAODV multicast tree substrate (paper §3).
//! * [`odmrp`] — the mesh-based ODMRP comparison protocol (§2).
//! * [`core`] — the Anonymous Gossip protocol itself (§4).
//! * [`harness`] — the §5 evaluation: scenarios, sweeps, figures 2–8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ag_core as core;
pub use ag_harness as harness;
pub use ag_maodv as maodv;
pub use ag_mobility as mobility;
pub use ag_net as net;
pub use ag_odmrp as odmrp;
pub use ag_sim as sim;
