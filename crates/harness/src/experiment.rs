//! Multi-seed parameter sweeps: the machinery behind every figure.
//!
//! Each sweep point runs both protocol stacks over `seeds` independent
//! seeds and pools the per-receiver packet counts; the pooled summary's
//! mean is the paper's plotted line and its min/max are the error bars
//! ("the range of measured data values obtained for the full set of
//! receivers", §5.1).
//!
//! Seeds are independent runs, so a sweep point farms them across a
//! worker pool (see [`crate::parallel`]) and merges the per-seed
//! summaries **in seed order regardless of completion order** — the
//! pooled result is bit-for-bit identical whether it ran on one thread
//! or sixteen.

use ag_sim::stats::Summary;
use serde::Serialize;

use crate::parallel::{run_seeds, Parallelism};
use crate::{run, run_gossip, run_maodv, ProtocolKind, Scenario};

/// One x-position of a figure: pooled receiver summaries for both
/// protocol series.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Packets the source sent at this point.
    pub sent: u64,
    /// Pooled receiver packet counts, bare MAODV.
    pub maodv: Summary,
    /// Pooled receiver packet counts, MAODV + gossip.
    pub gossip: Summary,
    /// Pooled per-member goodput observations (gossip runs).
    pub goodput: Summary,
}

/// The per-seed slice of a sweep point, produced by one worker.
struct SeedOutcome {
    maodv: Summary,
    gossip: Summary,
    goodput: Vec<f64>,
    sent: u64,
}

/// Runs one sweep point over `seeds` seeds with
/// [`Parallelism::auto`]-sized parallelism.
pub fn sweep_point(sc: &Scenario, x: f64, seeds: u64) -> SweepPoint {
    sweep_point_par(sc, x, seeds, Parallelism::auto())
}

/// Runs one sweep point over `seeds` seeds on `par` worker threads.
///
/// Per-seed outcomes are merged in seed order, so the result is
/// identical for every thread count.
pub fn sweep_point_par(sc: &Scenario, x: f64, seeds: u64, par: Parallelism) -> SweepPoint {
    let outcomes = run_seeds(seeds, par, |seed| {
        let m = run_maodv(sc, seed);
        let g = run_gossip(sc, seed);
        SeedOutcome {
            maodv: m.received_summary(),
            gossip: g.received_summary(),
            goodput: g.receivers().filter_map(|ms| ms.goodput_percent).collect(),
            sent: g.sent,
        }
    });
    let mut maodv = Summary::new();
    let mut gossip = Summary::new();
    let mut goodput = Summary::new();
    let mut sent = 0;
    for o in &outcomes {
        maodv.merge(&o.maodv);
        gossip.merge(&o.gossip);
        goodput.extend(o.goodput.iter().copied());
        sent = o.sent;
    }
    SweepPoint {
        x,
        sent,
        maodv,
        gossip,
        goodput,
    }
}

/// Pools *one* protocol's per-receiver delivery counts at one
/// configuration over `seeds` seeds on `par` worker threads, merging in
/// seed order (thread-count invariant, like [`sweep_point_par`]).
/// Returns `(packets sent, pooled receiver summary)`.
///
/// [`sweep_point_par`] serves the paper's two-series figures; this is
/// the building block for single-series sweeps such as the
/// [`crate::matrix`] stress matrix, where each protocol is its own
/// axis.
pub fn protocol_point_par(
    sc: &Scenario,
    kind: ProtocolKind,
    seeds: u64,
    par: Parallelism,
) -> (u64, Summary) {
    let outcomes = run_seeds(seeds, par, |seed| {
        let r = run(sc, seed, kind);
        (r.sent, r.received_summary())
    });
    let mut pooled = Summary::new();
    let mut sent = 0;
    for (s, summary) in &outcomes {
        pooled.merge(summary);
        debug_assert!(
            sent == 0 || sent == *s,
            "packets-sent varies across seeds ({sent} vs {s}); \
             delivery percentages would be computed against the wrong total"
        );
        sent = *s;
    }
    (sent, pooled)
}

/// Sweeps `xs`, applying `apply(scenario, x)` to a fresh copy of `base`
/// at each point, with [`Parallelism::auto`]-sized parallelism per
/// point.
pub fn sweep(
    base: &Scenario,
    xs: &[f64],
    apply: fn(&mut Scenario, f64),
    seeds: u64,
) -> Vec<SweepPoint> {
    sweep_par(base, xs, apply, seeds, Parallelism::auto())
}

/// Sweeps `xs` on `par` worker threads (seeds of one point run
/// concurrently; points run in order so output streams deterministically).
pub fn sweep_par(
    base: &Scenario,
    xs: &[f64],
    apply: fn(&mut Scenario, f64),
    seeds: u64,
    par: Parallelism,
) -> Vec<SweepPoint> {
    xs.iter()
        .map(|&x| {
            let mut sc = base.clone();
            apply(&mut sc, x);
            sweep_point_par(&sc, x, seeds, par)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_pools_across_seeds_and_members() {
        let sc = Scenario::paper(8, 100.0, 0.2).with_duration_secs(40);
        let p = sweep_point(&sc, 100.0, 2);
        // 8 nodes → 2 members min(8/3,2)=2 members → 1 receiver per run,
        // 2 seeds → 2 pooled observations per protocol.
        assert_eq!(p.maodv.count(), 2);
        assert_eq!(p.gossip.count(), 2);
        assert!(p.sent > 0);
        assert!(p.gossip.mean() >= 0.0);
    }

    #[test]
    fn sweep_applies_parameter() {
        let base = Scenario::paper(6, 50.0, 0.2).with_duration_secs(30);
        let pts = sweep(&base, &[60.0, 90.0], |sc, x| sc.range_m = x, 1);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].x, 60.0);
        assert_eq!(pts[1].x, 90.0);
    }

    #[test]
    fn protocol_point_matches_single_runs() {
        let sc = Scenario::paper(8, 100.0, 0.2).with_duration_secs(40);
        let (sent, pooled) = protocol_point_par(&sc, ProtocolKind::Maodv, 2, Parallelism::new(2));
        let mut expect = Summary::new();
        for seed in 0..2 {
            expect.merge(&crate::run_maodv(&sc, seed).received_summary());
        }
        assert_eq!(sent, sc.packets_sent());
        assert_eq!(format!("{pooled:?}"), format!("{expect:?}"));
    }

    #[test]
    fn parallel_merge_is_bit_identical_to_serial() {
        let sc = Scenario::paper(8, 100.0, 0.5).with_duration_secs(40);
        let serial = sweep_point_par(&sc, 1.0, 3, Parallelism::serial());
        let par = sweep_point_par(&sc, 1.0, 3, Parallelism::new(3));
        // Debug formatting prints the exact bits of every float, so this
        // is a bit-for-bit comparison of the pooled summaries.
        assert_eq!(format!("{serial:?}"), format!("{par:?}"));
    }
}
