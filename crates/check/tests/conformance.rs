//! Engine-trace conformance: the model the checker explores is the
//! code the simulator runs.
//!
//! Each test builds a small engine simulation with tracing enabled,
//! runs it, then replays the recorded dispatch/choice log through
//! fresh protocol instances via the pure [`ProtoCtx`] facade —
//! asserting state-digest equality after **every single dispatch**.
//! Any drift between what runs under `ag_net::Engine` and what the
//! model checker executes (an unrecorded RNG draw, a handler peeking
//! at ambient state) fails here with the exact divergent step.

use ag_check::replay_trace;
use ag_core::{AgConfig, AnonymousGossip};
use ag_maodv::{GroupId, MaodvConfig, MaodvProtocol, TrafficSource};
use ag_mobility::{Stationary, Vec2};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_odmrp::{OdmrpConfig, OdmrpProtocol};
use ag_sim::{SimDuration, SimTime};

/// Five stationary nodes on a line, 40 m apart (75 m radio range, so
/// only adjacent nodes hear each other).
fn line_positions(n: u32) -> Vec<Box<dyn ag_mobility::Mobility>> {
    (0..n)
        .map(|i| {
            Box::new(Stationary::new(Vec2::new(40.0 * f64::from(i), 0.0)))
                as Box<dyn ag_mobility::Mobility>
        })
        .collect()
}

#[test]
fn maodv_trace_replays_through_the_facade() {
    let cfg = MaodvConfig::paper_default();
    let g = GroupId(0);
    let traffic = TrafficSource::compact(
        SimTime::from_secs(30),
        SimDuration::from_millis(200),
        20,
        64,
    );
    let build = |i: u32| {
        MaodvProtocol::new(
            cfg,
            NodeId::new(i),
            g,
            i == 0 || i == 4,
            (i == 0).then_some(traffic),
        )
    };
    let nodes = line_positions(5)
        .into_iter()
        .enumerate()
        .map(|(i, mobility)| NodeSetup {
            mobility,
            protocol: build(i as u32),
        })
        .collect();
    let mut e = Engine::new_traced(PhyParams::paper_default(75.0), 7, nodes);
    e.run_until(SimTime::from_secs(40));
    let trace = e.take_trace();

    let mut fresh: Vec<MaodvProtocol> = (0..5).map(build).collect();
    let steps = replay_trace(&mut fresh, &trace);
    println!("maodv conformance: {steps} dispatches replayed in lockstep");
    assert!(steps > 500, "trace suspiciously short: {steps}");
}

#[test]
fn odmrp_trace_replays_through_the_facade() {
    let cfg = OdmrpConfig::default_paper();
    let g = GroupId(0);
    let traffic = TrafficSource::compact(
        SimTime::from_secs(10),
        SimDuration::from_millis(200),
        20,
        64,
    );
    let build =
        |i: u32| OdmrpProtocol::new(cfg, NodeId::new(i), g, i != 2, (i == 0).then_some(traffic));
    let nodes = line_positions(5)
        .into_iter()
        .enumerate()
        .map(|(i, mobility)| NodeSetup {
            mobility,
            protocol: build(i as u32),
        })
        .collect();
    let mut e = Engine::new_traced(PhyParams::paper_default(75.0), 11, nodes);
    e.run_until(SimTime::from_secs(20));
    let trace = e.take_trace();

    let mut fresh: Vec<OdmrpProtocol> = (0..5).map(build).collect();
    let steps = replay_trace(&mut fresh, &trace);
    println!("odmrp conformance: {steps} dispatches replayed in lockstep");
    assert!(steps > 200, "trace suspiciously short: {steps}");
}

#[test]
fn gossip_trace_replays_through_the_facade() {
    let cfg = AgConfig::paper_default();
    let maodv_cfg = MaodvConfig::paper_default();
    let g = GroupId(0);
    let traffic = TrafficSource::compact(
        SimTime::from_secs(30),
        SimDuration::from_millis(200),
        30,
        64,
    );
    let build = |i: u32| {
        AnonymousGossip::new(
            cfg,
            maodv_cfg,
            NodeId::new(i),
            g,
            i == 0 || i == 4,
            (i == 0).then_some(traffic),
        )
    };
    let nodes = line_positions(5)
        .into_iter()
        .enumerate()
        .map(|(i, mobility)| NodeSetup {
            mobility,
            protocol: build(i as u32),
        })
        .collect();
    let mut e = Engine::new_traced(PhyParams::paper_default(75.0), 23, nodes);
    e.run_until(SimTime::from_secs(45));
    let trace = e.take_trace();

    let mut fresh: Vec<AnonymousGossip> = (0..5).map(build).collect();
    let steps = replay_trace(&mut fresh, &trace);
    println!("gossip conformance: {steps} dispatches replayed in lockstep");
    assert!(steps > 500, "trace suspiciously short: {steps}");
}
