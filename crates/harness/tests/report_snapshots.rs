//! Golden snapshots for the report renderers.
//!
//! The figure pipeline's output formats are load-bearing: the
//! committed golden figures (`tests/golden/*.json`) are compared
//! byte-for-byte, and `render_json` promises exact-float-bits
//! rendering. These tests pin the *renderers themselves* against a
//! fixed synthetic input, so an innocent-looking formatting tweak
//! (precision change, column shuffle, serde-style escape) fails
//! `cargo test` here instead of silently invalidating every committed
//! golden downstream.
//!
//! The inputs deliberately use values with non-terminating binary
//! fractions (thirds, sevenths) so shortest-roundtrip float formatting
//! is actually exercised, not just `x.0` integers.
//!
//! Regenerating after an *intentional* format change:
//!
//! ```text
//! AG_UPDATE_SNAPSHOTS=1 cargo test -p ag-harness --test report_snapshots
//! ```
//!
//! then review the diff under `crates/harness/tests/snapshots/` and
//! commit it together with the renderer change.

use ag_harness::experiment::SweepPoint;
use ag_harness::matrix::{MatrixCell, MatrixReport};
use ag_harness::{report, ProtocolKind};
use ag_sim::stats::Summary;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

/// Compares `rendered` with the committed snapshot, or rewrites the
/// snapshot when `AG_UPDATE_SNAPSHOTS` is set.
fn assert_snapshot(name: &str, rendered: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("AG_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert!(
        rendered == golden,
        "{name} drifted from its committed snapshot.\n\
         If the format change is intentional, regenerate with\n\
         AG_UPDATE_SNAPSHOTS=1 cargo test -p ag-harness --test report_snapshots\n\
         and commit the diff.\n--- committed ---\n{golden}\n--- rendered ---\n{rendered}"
    );
}

/// Fixed sweep points with awkward float bits in every summary field.
fn sweep_points() -> Vec<SweepPoint> {
    let mk = |x: f64, sent: u64, maodv: [f64; 3], gossip: [f64; 3], goodput: [f64; 3]| SweepPoint {
        x,
        sent,
        maodv: maodv.into_iter().collect(),
        gossip: gossip.into_iter().collect(),
        goodput: goodput.into_iter().collect(),
    };
    vec![
        mk(
            45.0,
            200,
            [100.0 / 3.0, 50.0, 190.0 / 7.0],
            [180.2, 199.0, 1000.0 / 6.0],
            [89.9, 100.0, 250.0 / 3.0],
        ),
        mk(
            1.0 / 3.0,
            200,
            [0.1, 0.2, 0.3],
            [120.0, 130.0, 140.0],
            [60.06, 72.5, 81.25],
        ),
    ]
}

fn matrix_report() -> MatrixReport {
    let cell = |protocol, loss: &str, churn: &str, max_speed, received: [f64; 3]| MatrixCell {
        protocol,
        loss: loss.into(),
        churn: churn.into(),
        max_speed,
        sent: 300,
        received: received.into_iter().collect::<Summary>(),
    };
    MatrixReport {
        protocols: vec![
            ProtocolKind::Maodv,
            ProtocolKind::Gossip,
            ProtocolKind::Odmrp,
        ],
        cells: vec![
            cell(
                ProtocolKind::Maodv,
                "ideal",
                "none",
                0.2,
                [150.0, 200.0, 500.0 / 3.0],
            ),
            cell(
                ProtocolKind::Gossip,
                "ideal",
                "none",
                0.2,
                [280.0, 299.0, 2000.0 / 7.0],
            ),
            cell(
                ProtocolKind::Odmrp,
                "ideal",
                "none",
                0.2,
                [260.0, 290.0, 800.0 / 3.0],
            ),
            cell(
                ProtocolKind::Maodv,
                "shadowing",
                "harsh",
                10.0,
                [40.0, 90.0, 61.5],
            ),
            cell(
                ProtocolKind::Gossip,
                "shadowing",
                "harsh",
                10.0,
                [200.5, 250.0, 666.0 / 3.0],
            ),
            cell(
                ProtocolKind::Odmrp,
                "shadowing",
                "harsh",
                10.0,
                [150.0, 230.0, 190.0],
            ),
        ],
    }
}

#[test]
fn render_json_matches_snapshot() {
    assert_snapshot("sweep.json", &report::render_json(&sweep_points()));
}

#[test]
fn render_matrix_matches_snapshot() {
    assert_snapshot("matrix.txt", &report::render_matrix(&matrix_report()));
}

#[test]
fn render_table_matches_snapshot() {
    assert_snapshot(
        "table.txt",
        &report::render_table(
            "Figure 2: packets received vs. transmission range",
            "range (m)",
            &sweep_points(),
        ),
    );
}

#[test]
fn render_csv_matches_snapshot() {
    assert_snapshot("sweep.csv", &report::render_csv(&sweep_points()));
}
