//! Scaling benchmarks for the PR-2 engine refactor.
//!
//! Two questions, matching the two halves of the refactor:
//!
//! 1. **Engine throughput vs node count** — the same beaconing network
//!    at N ∈ {50, 200, 500} (constant density), once through the grid
//!    spatial index and once through the brute-force receiver/collision
//!    scans. The grid's advantage must *grow* with N; at N = 500 it is
//!    the difference between tractable and not.
//! 2. **Serial vs parallel sweeps** — the same multi-seed sweep point on
//!    one worker thread and on four. Results are bit-identical (see
//!    `tests/parallel_determinism.rs`); only wall-clock may differ, and
//!    by how much depends on the host's core count.
//! 3. **Stress-knob overhead** — the full gossip stack on the ideal
//!    channel vs the distance-graded/shadowed/churny ones. The opt-in
//!    realism must price in as a small constant on the reception path
//!    (a keyed hash per delivery), not a new scaling regime.

use ag_bench::beacon_engine;
use ag_harness::experiment::sweep_point_par;
use ag_harness::{run_gossip, Parallelism, ReceptionModel, Scenario};
use ag_sim::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Simulated seconds per engine-throughput iteration: long enough to
/// amortize start-up transients (initial bucketing, allocator growth)
/// into steady state, short enough that even the brute-force 500-node
/// run finishes in sensible bench time.
const ENGINE_SIM_SECS: u64 = 30;

fn engine_scaling(c: &mut Criterion) {
    for &n in &[50usize, 200, 500] {
        for (label, spatial) in [("grid", true), ("brute", false)] {
            c.bench_function(
                &format!("engine_{n}_nodes_{ENGINE_SIM_SECS}s_{label}"),
                |b| {
                    b.iter(|| {
                        let mut e = beacon_engine(n, 1, spatial);
                        e.run_until(SimTime::from_secs(ENGINE_SIM_SECS));
                        black_box(e.protocols().iter().map(|p| p.heard).sum::<u64>())
                    });
                },
            );
        }
    }
}

fn sweep_parallelism(c: &mut Criterion) {
    let sc = Scenario::paper(12, 75.0, 1.0).with_duration_secs(40);
    for (label, threads) in [("serial", 1usize), ("4_threads", 4)] {
        c.bench_function(&format!("sweep_point_4_seeds_{label}"), |b| {
            b.iter(|| black_box(sweep_point_par(&sc, 75.0, 4, Parallelism::new(threads))));
        });
    }
}

fn stress_overhead(c: &mut Criterion) {
    let base = Scenario::paper(20, 75.0, 1.0).with_duration_secs(40);
    let variants: [(&str, Scenario); 4] = [
        ("ideal", base.clone()),
        (
            "graded_per",
            base.clone()
                .with_reception(ReceptionModel::DistanceGraded { edge_per: 0.5 }),
        ),
        (
            "shadowing",
            base.clone().with_reception(ReceptionModel::Shadowing {
                sigma_db: 8.0,
                path_loss_exp: 3.0,
            }),
        ),
        ("churn", base.clone().with_churn(120.0, 15.0)),
    ];
    for (label, sc) in &variants {
        c.bench_function(&format!("gossip_20_nodes_40s_{label}"), |b| {
            b.iter(|| black_box(run_gossip(sc, 1)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = engine_scaling, sweep_parallelism, stress_overhead
}
criterion_main!(benches);
