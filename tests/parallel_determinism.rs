//! Cross-crate guarantees of the parallel sweep harness and the spatial
//! index: thread count and index choice may change wall-clock, never
//! results.

use ag_harness::experiment::sweep_point_par;
use ag_harness::figures::fig8_par;
use ag_harness::{report, run_gossip, run_maodv, Parallelism, Scenario};

/// The same figure point run with 1 and with 4 worker threads must
/// produce byte-identical serialized `SweepPoint`s (same CSV bytes and
/// the same float bits under `Debug`).
#[test]
fn sweep_point_is_byte_identical_across_thread_counts() {
    let sc = Scenario::paper(10, 90.0, 0.5).with_duration_secs(50);
    let one = sweep_point_par(&sc, 90.0, 4, Parallelism::new(1));
    let four = sweep_point_par(&sc, 90.0, 4, Parallelism::new(4));
    assert_eq!(
        report::render_csv(std::slice::from_ref(&one)).into_bytes(),
        report::render_csv(std::slice::from_ref(&four)).into_bytes()
    );
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
}

/// Figure 8's pooled goodput series (observations and the merged
/// histogram) is likewise thread-count invariant.
#[test]
fn fig8_is_byte_identical_across_thread_counts() {
    let one = fig8_par(2, 30, Parallelism::new(1));
    let four = fig8_par(2, 30, Parallelism::new(4));
    assert_eq!(
        report::render_goodput(&one).into_bytes(),
        report::render_goodput(&four).into_bytes()
    );
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
    for s in &one {
        assert_eq!(s.goodput_hist.total(), s.member_goodput.len() as u64);
    }
}

/// Full-stack differential check at the harness level: grid-indexed and
/// brute-force engines produce identical `RunResult`s for both protocol
/// stacks.
#[test]
fn spatial_index_does_not_change_run_results() {
    let base = Scenario::paper(12, 75.0, 2.0).with_duration_secs(60);
    let grid_sc = base.clone().with_spatial_index(true);
    let brute_sc = base.with_spatial_index(false);
    for seed in 0..2 {
        let gg = run_gossip(&grid_sc, seed);
        let gb = run_gossip(&brute_sc, seed);
        assert_eq!(format!("{gg:?}"), format!("{gb:?}"), "gossip seed {seed}");
        let mg = run_maodv(&grid_sc, seed);
        let mb = run_maodv(&brute_sc, seed);
        assert_eq!(format!("{mg:?}"), format!("{mb:?}"), "maodv seed {seed}");
    }
}
