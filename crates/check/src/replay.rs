//! Engine-trace conformance: replaying a recorded run through the pure
//! facade.
//!
//! The engine (built with [`Engine::new_traced`](ag_net::Engine)) logs
//! every dispatch it makes into a protocol instance together with the
//! named-choice outcomes drawn and a digest of the state afterwards.
//! [`replay_trace`] re-executes that log against *fresh* protocol
//! instances through [`ReplayCtx`] — a [`ProtoCtx`] that feeds back the
//! recorded choices and discards effects — asserting digest equality
//! after every dispatch. If the pure `transition(state, action)` facade
//! ever drifted from what runs under the engine (a handler reading
//! ambient state, an RNG draw outside the named-choice surface), the
//! first divergent dispatch pinpoints it.

use ag_net::{state_digest, Choice, Dispatch, Message, NodeId, ProtoCtx, Protocol, TraceRecord};
use ag_sim::{SimDuration, SimTime};

/// A [`ProtoCtx`] that replays recorded named-choice outcomes and
/// swallows effects (the trace already reflects their consequences).
pub struct ReplayCtx<'a> {
    now: SimTime,
    id: NodeId,
    node_count: usize,
    choices: &'a [Choice],
    pos: usize,
}

impl<'a> ReplayCtx<'a> {
    /// A context replaying `choices` for a dispatch at `now` on `id`.
    pub fn new(now: SimTime, id: NodeId, node_count: usize, choices: &'a [Choice]) -> Self {
        ReplayCtx {
            now,
            id,
            node_count,
            choices,
            pos: 0,
        }
    }

    /// Number of choices consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    fn pull(&mut self) -> Choice {
        let c = *self.choices.get(self.pos).unwrap_or_else(|| {
            panic!(
                "replay drew choice #{} but trace has {}",
                self.pos,
                self.choices.len()
            )
        });
        self.pos += 1;
        c
    }
}

impl<M: Message> ProtoCtx<M> for ReplayCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn id(&self) -> NodeId {
        self.id
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn send(&mut self, _dest: NodeId, _msg: M) {}

    fn broadcast(&mut self, _msg: M) {}

    fn set_timer(&mut self, _delay: SimDuration, _key: u64) {}

    fn count(&mut self, _name: &'static str) {}

    fn count_n(&mut self, _name: &'static str, _n: u64) {}

    fn jitter(&mut self, _bound: u64) -> u64 {
        match self.pull() {
            Choice::Jitter(v) => v,
            other => panic!("trace expected jitter, got {other:?}"),
        }
    }

    fn chance(&mut self, _p: f64) -> bool {
        match self.pull() {
            Choice::Chance(b) => b,
            other => panic!("trace expected chance, got {other:?}"),
        }
    }

    fn pick_index(&mut self, n: usize) -> usize {
        match self.pull() {
            Choice::Index(i) if i < n => i,
            other => panic!("trace expected index < {n}, got {other:?}"),
        }
    }

    fn pick_weighted<F: Fn(usize) -> f64>(&mut self, n: usize, _weight: F) -> usize {
        <Self as ProtoCtx<M>>::pick_index(self, n)
    }
}

/// Replays an engine trace against fresh protocol instances (built
/// with the same constructor arguments as the engine run), asserting
/// lockstep state-digest equality after every dispatch. Returns the
/// number of dispatches checked.
///
/// # Panics
///
/// Panics on the first divergence: a digest mismatch, a handler
/// drawing more/fewer choices than recorded, or a choice-kind
/// mismatch.
pub fn replay_trace<P: Protocol>(protocols: &mut [P], trace: &[TraceRecord<P::Msg>]) -> usize {
    for (step, rec) in trace.iter().enumerate() {
        let i = rec.node.index();
        let mut ctx = ReplayCtx::new(rec.at, rec.node, protocols.len(), &rec.choices);
        match &rec.dispatch {
            Dispatch::Start => protocols[i].start(&mut ctx),
            Dispatch::Packet { from, msg, rx } => {
                protocols[i].on_packet(&mut ctx, *from, msg.clone(), *rx);
            }
            Dispatch::Timer { key } => protocols[i].on_timer(&mut ctx, *key),
            Dispatch::SendFailure { to, msg } => {
                protocols[i].on_send_failure(&mut ctx, *to, msg.clone());
            }
        }
        assert_eq!(
            ctx.consumed(),
            rec.choices.len(),
            "dispatch #{step} ({:?} at {:?} on {}): consumed {} of {} recorded choices",
            rec.dispatch,
            rec.at,
            rec.node,
            ctx.consumed(),
            rec.choices.len(),
        );
        let digest = state_digest(&protocols[i]);
        assert_eq!(
            digest, rec.digest,
            "dispatch #{step} ({:?} at {:?} on {}): replayed state diverged from engine",
            rec.dispatch, rec.at, rec.node,
        );
    }
    trace.len()
}
