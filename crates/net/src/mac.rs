//! Per-node MAC state for the simplified 802.11 DCF.
//!
//! The MAC is a small state machine per node:
//!
//! ```text
//!          enqueue (idle)                 channel idle at attempt time
//!   Idle ────────────────▶ Contending ───────────────────────────────▶ Transmitting
//!    ▲                        ▲   │ channel busy: re-arm attempt           │
//!    │                        └───┘                                        │
//!    └──────────── queue empty ◀──────────── TxEnd (+ACK outcome) ◀────────┘
//! ```
//!
//! The state machine data lives here; the transition logic lives in the
//! [`crate::Engine`], which owns the shared channel.

use std::collections::VecDeque;

use crate::{Message, NodeId};

/// An outbound frame waiting in (or at the head of) the MAC queue.
#[derive(Debug, Clone)]
pub struct OutFrame<M> {
    /// `Some(dest)` for unicast (ACKed, retried), `None` for broadcast.
    pub dest: Option<NodeId>,
    /// The upper-layer payload.
    pub msg: M,
}

/// MAC operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacState {
    /// Nothing queued.
    Idle,
    /// A backoff attempt is armed (generation tag distinguishes stale
    /// attempt events from live ones).
    Contending,
    /// A frame is in the air.
    Transmitting,
}

/// The per-node MAC: a drop-tail transmit queue plus DCF contention state.
#[derive(Debug)]
pub struct Mac<M> {
    queue: VecDeque<OutFrame<M>>,
    state: MacState,
    /// Current contention window (backoff drawn uniformly from `0..=cw`).
    pub cw: u32,
    /// Retransmissions already used for the head-of-line unicast frame.
    pub retries: u32,
    /// Generation counter for attempt events; bump to invalidate stale ones.
    pub attempt_gen: u64,
    capacity: usize,
    /// Frames dropped because the queue was full.
    pub tail_drops: u64,
}

impl<M: Message> Mac<M> {
    /// Creates an idle MAC with the given queue capacity and initial
    /// contention window.
    pub fn new(capacity: usize, cw_min: u32) -> Self {
        Mac {
            queue: VecDeque::new(),
            state: MacState::Idle,
            cw: cw_min,
            retries: 0,
            attempt_gen: 0,
            capacity,
            tail_drops: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> MacState {
        self.state
    }

    /// Sets the state (engine use).
    pub fn set_state(&mut self, s: MacState) {
        self.state = s;
    }

    /// Appends a frame; returns `false` (and counts a tail drop) if full.
    pub fn enqueue(&mut self, frame: OutFrame<M>) -> bool {
        if self.queue.len() >= self.capacity {
            self.tail_drops += 1;
            return false;
        }
        self.queue.push_back(frame);
        true
    }

    /// The frame currently being worked on, if any.
    pub fn head(&self) -> Option<&OutFrame<M>> {
        self.queue.front()
    }

    /// Removes and returns the head frame.
    pub fn pop_head(&mut self) -> Option<OutFrame<M>> {
        self.queue.pop_front()
    }

    /// Number of queued frames (including the head).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Invalidates any armed attempt event and returns the new generation.
    pub fn bump_attempt_gen(&mut self) -> u64 {
        self.attempt_gen += 1;
        self.attempt_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Message for u32 {
        fn wire_size(&self) -> usize {
            4
        }
    }

    fn mac() -> Mac<u32> {
        Mac::new(2, 31)
    }

    #[test]
    fn starts_idle_and_empty() {
        let m = mac();
        assert_eq!(m.state(), MacState::Idle);
        assert!(m.is_empty());
        assert_eq!(m.queue_len(), 0);
        assert!(m.head().is_none());
    }

    #[test]
    fn enqueue_respects_capacity() {
        let mut m = mac();
        assert!(m.enqueue(OutFrame { dest: None, msg: 1 }));
        assert!(m.enqueue(OutFrame { dest: None, msg: 2 }));
        assert!(!m.enqueue(OutFrame { dest: None, msg: 3 }));
        assert_eq!(m.tail_drops, 1);
        assert_eq!(m.queue_len(), 2);
    }

    #[test]
    fn fifo_order() {
        let mut m = mac();
        m.enqueue(OutFrame {
            dest: Some(NodeId::new(9)),
            msg: 1,
        });
        m.enqueue(OutFrame { dest: None, msg: 2 });
        assert_eq!(m.head().unwrap().msg, 1);
        assert_eq!(m.pop_head().unwrap().msg, 1);
        assert_eq!(m.pop_head().unwrap().msg, 2);
        assert!(m.pop_head().is_none());
    }

    #[test]
    fn attempt_generation_increments() {
        let mut m = mac();
        let g1 = m.bump_attempt_gen();
        let g2 = m.bump_attempt_gen();
        assert!(g2 > g1);
    }
}
