//! # ag-net: the wireless network substrate
//!
//! Replaces GloMoSim's PHY/MAC layers for the Anonymous Gossip
//! reproduction. It provides:
//!
//! * [`PhyParams`] — a unit-disk radio at 2 Mbps with IEEE 802.11b DSSS
//!   timing constants (slot/DIFS/SIFS/preamble) and per-frame airtime.
//! * a simplified **802.11 DCF MAC** (module [`mac`]): carrier sense,
//!   DIFS + slotted random backoff with binary exponential contention
//!   window, per-receiver collision corruption, unicast ACK + retransmit
//!   with a retry limit and a link-failure upcall, unacknowledged broadcast.
//! * [`Engine`] — the discrete-event network engine. It owns every node's
//!   MAC, mobility model and RNG streams, and drives an upper-layer
//!   [`Protocol`] implementation per node (MAODV in `ag-maodv`, Anonymous
//!   Gossip over MAODV in `ag-core`).
//! * [`ProtoCtx`] (module [`ctx`]) — the pure facade protocol handlers
//!   are written against: effects (frames, timers, counters) and *named
//!   random choices* flow through the context, never directly into the
//!   world. The same handler code therefore also runs under `ag-check`'s
//!   model checker and its conformance replayer ([`Engine::new_traced`]
//!   records the per-dispatch [`TraceRecord`]s the replay consumes).
//!
//! ## Fidelity notes (see DESIGN.md §5)
//!
//! * Propagation is unit-disk: a frame is audible exactly within
//!   `range_m` of the sender. The paper sweeps this "transmission range"
//!   as its connectivity knob, so the binary model is the faithful one.
//! * A receiver is corrupted by *any* overlapping audible transmission
//!   (no capture effect), which naturally produces hidden-terminal loss.
//! * Unicast ACKs succeed instantaneously when the data frame is received
//!   uncorrupted; ACK airtime is charged to the channel but ACK loss is
//!   not modelled. Retries re-contend with a doubled contention window.
//!
//! # Example
//!
//! See [`Engine`] for a complete two-node example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod grid;
mod types;

pub mod ctx;
pub mod mac;
pub mod phy;

pub use ctx::{state_digest, Choice, Dispatch, ProtoCtx, TraceRecord};
pub use engine::{Engine, NodeApi, NodeSetup};
pub use phy::{ChurnParams, PhyParams, ReceptionModel};
pub use types::{Message, NodeId, Protocol, RxKind, TimerKey};
