//! Shared helpers for the benchmark suite.
//!
//! Benchmarks run *scaled-down* versions of the paper's experiments: the
//! same code paths as the `fig2`–`fig8` binaries, but fewer nodes, fewer
//! seeds and shorter simulated time, so `cargo bench` finishes in
//! minutes while still measuring realistic full-stack workloads. The
//! benched value is the wall-clock cost of regenerating (a slice of)
//! each figure; the *science* lives in the harness binaries and
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ag_harness::Scenario;

/// Seconds of simulated time per benchmark run.
pub const BENCH_SECS: u64 = 60;

/// Nodes per benchmark scenario (figure benches override where the
/// figure sweeps node count).
pub const BENCH_NODES: usize = 20;

/// A scaled-down paper scenario for benchmarking.
pub fn bench_scenario(range_m: f64, max_speed: f64) -> Scenario {
    Scenario::paper(BENCH_NODES, range_m, max_speed).with_duration_secs(BENCH_SECS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_scaled() {
        let sc = bench_scenario(75.0, 0.2);
        assert_eq!(sc.nodes, BENCH_NODES);
        assert!(sc.packets_sent() < 2201);
    }
}
