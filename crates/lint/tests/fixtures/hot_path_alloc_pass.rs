//! must-pass: the manifest function reuses caller-owned scratch (the
//! take/restore pattern the engine uses); cold paths allocate freely.

pub fn emit_receivers(scratch: &mut Vec<usize>, words: &[u64]) {
    scratch.clear();
    for (w, &bits) in words.iter().enumerate() {
        if bits != 0 {
            scratch.push(w);
        }
    }
}

pub fn cold_setup() -> Vec<usize> {
    let mut v = Vec::new();
    v.push(1);
    v
}
