//! must-pass: collect-then-sort before rendering, and a waived
//! order-independent fold.

use ag_sim::hash::DetHashMap;

pub fn render(per_node: &DetHashMap<u32, u64>) -> String {
    let mut rows: Vec<(u32, u64)> = per_node.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_unstable();
    let mut out = String::new();
    for (node, goodput) in rows {
        out.push_str(&format!("{node} {goodput}\n"));
    }
    out
}

pub fn total(per_node: &DetHashMap<u32, u64>) -> u64 {
    // ag-lint: allow(ordered-iteration) -- fixture: order-independent sum
    per_node.values().sum()
}
