//! Exhaustive check of the gossip layer on a 4-node chain.
//!
//! `A — B — C — D` with members at both ends; A is the CBR source.
//! The world is warmed up deterministically until the multicast tree
//! has formed (t = 5.5 s), then explored exhaustively: two data
//! packets (t = 5.5 s, 6.5 s), one adversarial drop anywhere, and a
//! gossip round at t = 7.5 s. Both anonymous-walk and accept
//! probabilities are forced (1.0) so the only nondeterminism is the
//! adversary's.
//!
//! Checked properties:
//!
//! * **Accounting** (`leads_to`): every packet the source originates
//!   is eventually delivered at the far member, detected as lost
//!   (gap in the origin sequence), or excused — the adversary dropped
//!   a frame and the member has no later packet from that origin that
//!   would reveal the gap.
//! * **Loop freedom** of the embedded MAODV tree, for free.
//! * Non-vacuity: lossless full delivery happens, and on some path the
//!   gossip round actually *recovers* a dropped packet (delivery via
//!   gossip, not tree).

use ag_check::{always, exists, explore, leads_to, Limits, Machine, NetModel, NetState};
use ag_core::{AgConfig, AnonymousGossip, PacketId};
use ag_maodv::{GroupId, MaodvConfig, TrafficSource};
use ag_net::NodeId;
use ag_sim::{SimDuration, SimTime};

const N: usize = 4;

fn ag_cfg() -> AgConfig {
    AgConfig {
        gossip_interval: SimDuration::from_millis(7500),
        p_anon: 1.0,
        p_accept: 1.0,
        lost_buffer_max: 10,
        member_cache_capacity: 10,
        lost_table_capacity: 64,
        history_capacity: 64,
        gossip_ttl: 4,
        reply_max_packets: 10,
        tail_recovery_max: 5,
        locality_weighting: true,
    }
}

fn maodv_cfg() -> MaodvConfig {
    MaodvConfig {
        // One hello round at t = 0 and none before the horizon ends:
        // liveness inside the window is carried by data/control frames.
        hello_interval: SimDuration::from_secs(8),
        allowed_hello_loss: 1,
        group_hello_interval: SimDuration::from_secs(4),
        tick_interval: SimDuration::from_secs(1),
        rrep_wait: SimDuration::from_secs(1),
        rreq_retries: 1,
        flood_ttl: 4,
        active_route_timeout: SimDuration::from_secs(20),
        join_jitter: SimDuration::from_secs(1),
        data_seen_capacity: 64,
        rreq_seen_capacity: 64,
        discovery_buffer: 4,
        nearest_member_infinity: 32,
    }
}

/// Chain model warmed up to a formed tree at t = 5.5 s.
fn warmed_model() -> NetModel<AnonymousGossip> {
    let traffic =
        TrafficSource::compact(SimTime::from_millis(5500), SimDuration::from_secs(1), 2, 64);
    let protocols: Vec<AnonymousGossip> = (0..N as u32)
        .map(|i| {
            AnonymousGossip::new(
                ag_cfg(),
                maodv_cfg(),
                NodeId::new(i),
                GroupId(0),
                i == 0 || i == 3,
                (i == 0).then_some(traffic),
            )
        })
        .collect();
    let model = NetModel::new(
        protocols,
        &[(0, 1), (1, 2), (2, 3)],
        SimTime::from_millis(7800),
        SimTime::from_millis(7800),
    )
    .with_drop_budget(1);
    let warm = model.warm_up(model.initial(), SimTime::from_millis(5500));
    // The tree must be formed before any data flows: D and A on the
    // tree, with the chain as upstream pointers toward the leader.
    for (i, p) in warm.nodes.iter().enumerate() {
        assert!(p.maodv().on_tree(), "node {i} not on tree after warm-up");
    }
    model.with_root(warm)
}

#[derive(Debug, Clone)]
struct Obs {
    parked: bool,
    originated: [bool; 2],
    /// Far member's view of packet `seq`: delivered / known-lost.
    delivered: [bool; 2],
    lost: [bool; 2],
    /// Next sequence the far member expects from the origin (1 = has
    /// seen nothing; a gap can only be *detected* once a later packet
    /// arrives).
    expected: u32,
    recovered_via_gossip: bool,
    drops_used: u8,
    upstream: [Option<u32>; N],
}

fn observe(model: &NetModel<AnonymousGossip>) -> impl Fn(&NetState<AnonymousGossip>) -> Obs + '_ {
    let origin = NodeId::new(0);
    move |st| {
        let d = &st.nodes[3];
        Obs {
            parked: st.parked,
            originated: core::array::from_fn(|q| {
                st.nodes[0].delivery().contains(origin, q as u32 + 1)
            }),
            delivered: core::array::from_fn(|q| d.delivery().contains(origin, q as u32 + 1)),
            lost: core::array::from_fn(|q| {
                d.lost_table().is_lost(&PacketId::new(origin, q as u32 + 1))
            }),
            expected: d.lost_table().expected_for(origin),
            recovered_via_gossip: d.delivery().via_gossip() > 0,
            drops_used: st.drops_used(model),
            upstream: core::array::from_fn(|i| {
                st.nodes[i].maodv().mrt().upstream().map(|u| u.raw())
            }),
        }
    }
}

fn upstream_acyclic(upstream: &[Option<u32>; N]) -> bool {
    for start in 0..N {
        let mut cur = start;
        for _ in 0..=N {
            match upstream[cur] {
                Some(next) => cur = next as usize,
                None => break,
            }
            if cur == start {
                return false;
            }
        }
    }
    true
}

#[test]
fn gossip_chain_accounts_for_every_packet() {
    let model = warmed_model();
    let ex = explore(
        &model,
        Limits {
            max_states: 600_000,
        },
        observe(&model),
    );
    assert!(ex.complete, "state space must be explored to fixpoint");
    println!(
        "gossip chain: {} states, {} terminal",
        ex.len(),
        ex.terminals().count()
    );

    // Embedded-MAODV loop freedom rides along.
    let v = always(&ex, |o: &Obs| upstream_acyclic(&o.upstream));
    assert!(v.holds(), "route loop under the gossip layer");

    // Accounting: every originated packet ends up delivered, detected
    // as lost, or excused by an undetectable adversarial tail drop.
    for q in 0..2 {
        let seq = q as u32 + 1;
        let v = leads_to(
            &ex,
            |o: &Obs| o.originated[q],
            move |o| o.delivered[q] || o.lost[q] || (o.drops_used > 0 && o.expected <= seq),
        );
        assert!(v.holds(), "packet {seq} unaccounted for");
    }

    // Non-vacuity: the lossless run delivers everything over the tree.
    assert!(
        exists(&ex, |o: &Obs| o.delivered[0]
            && o.delivered[1]
            && o.drops_used == 0)
        .is_some(),
        "lossless full delivery unreachable"
    );
    // Non-vacuity: some adversarial drop is actually *repaired* by the
    // gossip round — the paper's mechanism, observed in the model.
    assert!(
        exists(&ex, |o: &Obs| o.recovered_via_gossip).is_some(),
        "gossip recovery never fires — the round is dead weight"
    );
    // The strongest result in this window, and the paper's §1 claim in
    // miniature: even with the adversarial drop, *every* terminal world
    // has full delivery — one loss anywhere (data, walk, or reply) is
    // always repaired by the next gossip round or never mattered.
    let v = always(&ex, |o: &Obs| {
        !o.parked || (o.delivered[0] && o.delivered[1])
    });
    assert!(
        v.holds(),
        "a single drop defeated gossip recovery inside the window"
    );
}
