//! State-space sizing probe (`#[ignore]`d; not part of the suite).
//!
//! Measures how the reachable MAODV state space scales with the
//! adversary's drop/churn budgets and the horizon — the numbers
//! recorded in `docs/MODEL_CHECKING.md` ("budgets multiply"). Run it
//! when sizing a new checked configuration:
//!
//! ```text
//! cargo test -p ag-check --release --test probe -- --ignored --nocapture
//! ```
//!
//! Set `AG_CHECK_PROGRESS=1` to watch BFS expansion on configurations
//! that might not close.

// Wall-clock timing is this probe's whole point: it measures real BFS
// exploration speed, is `#[ignore]`d, and never runs in `cargo test -q`.
// This file is on the documented wall-clock allowlist (docs/LINTS.md);
// the attribute grants the same exception to the clippy layer.
#![allow(clippy::disallowed_methods)]

use ag_check::{explore, Limits, Machine, NetModel, NetState};
use ag_maodv::{GroupId, MaodvConfig, MaodvProtocol};
use ag_net::NodeId;
use ag_sim::{SimDuration, SimTime};

fn cfg(hello_ms: u64, retries: u32, grph_ms: u64) -> MaodvConfig {
    MaodvConfig {
        hello_interval: SimDuration::from_millis(hello_ms),
        allowed_hello_loss: 2,
        group_hello_interval: SimDuration::from_millis(grph_ms),
        tick_interval: SimDuration::from_secs(1),
        rrep_wait: SimDuration::from_secs(1),
        rreq_retries: retries,
        flood_ttl: 2,
        active_route_timeout: SimDuration::from_secs(20),
        join_jitter: SimDuration::from_secs(1),
        data_seen_capacity: 64,
        rreq_seen_capacity: 64,
        discovery_buffer: 4,
        nearest_member_infinity: 32,
    }
}

fn protos(n: u32, members: &[u32], c: MaodvConfig) -> Vec<MaodvProtocol> {
    (0..n)
        .map(|i| MaodvProtocol::new(c, NodeId::new(i), GroupId(0), members.contains(&i), None))
        .collect()
}

fn obs(st: &NetState<MaodvProtocol>) -> (SimTime, Vec<Option<u32>>, Vec<bool>) {
    (
        st.now,
        st.nodes
            .iter()
            .map(|p| p.node().mrt().upstream().map(|u| u.raw()))
            .collect(),
        st.nodes.iter().map(|p| p.node().is_leader()).collect(),
    )
}

#[test]
#[ignore]
fn probe_sizes() {
    // Quiet config: one hello round at t=0, no RREQ retries (leaders at
    // t=1), GRPH at t=2 drives the merge, tree formed ~t=3.
    for (label, drop, churn, horizon_ms) in [
        ("quiet drop0 churn0 h3500", 0u8, 0u8, 3500u64),
        ("quiet drop1 churn0 h3500", 1, 0, 3500),
        ("quiet drop1 churn1 h3500", 1, 1, 3500),
    ] {
        let model = NetModel::new(
            protos(3, &[0, 2], cfg(10_000, 0, 2_000)),
            &[(0, 1), (1, 2)],
            SimTime::from_millis(horizon_ms),
            SimTime::from_millis(horizon_ms),
        )
        .with_drop_budget(drop)
        .with_churn_budget(churn);
        let t0 = std::time::Instant::now();
        let ex = explore(
            &model,
            Limits {
                max_states: 1_000_000,
            },
            obs,
        );
        let formed = ex
            .obs
            .iter()
            .any(|(_, ups, lead)| lead[0] && ups[1] == Some(0) && ups[2] == Some(1));
        println!(
            "3-node {label}: {} states complete={} formed={} in {:?}",
            ex.len(),
            ex.complete,
            formed,
            t0.elapsed()
        );
    }

    // 4-node warmed chain for the canary scenario: hellos every 2s so
    // the break is detected, no retries, short post-warm window.
    let (label, churn, horizon_ms, warm_ms) = ("4n churn1 h7000 w4500", 1u8, 7000u64, 4500u64);
    let model = NetModel::new(
        protos(4, &[0, 3], cfg(2_000, 0, 2_000)),
        &[(0, 1), (1, 2), (2, 3)],
        SimTime::from_millis(horizon_ms),
        SimTime::from_millis(horizon_ms),
    )
    .with_churn_budget(churn);
    let warm = model.warm_up(model.initial(), SimTime::from_millis(warm_ms));
    println!("warm obs: {:?}", obs(&warm));
    let model = model.with_root(warm);
    let t0 = std::time::Instant::now();
    let ex = explore(
        &model,
        Limits {
            max_states: 1_000_000,
        },
        obs,
    );
    println!(
        "4-node warmed {label}: {} states complete={} in {:?}",
        ex.len(),
        ex.complete,
        t0.elapsed()
    );
}
