//! Regression fixture: the exact shape of the PR-7 `RandomState` bug.
//!
//! Before PR 7, protocol tables used std's default-hasher maps. The
//! simulation *results* were iteration-order independent, but the
//! per-process SipHash keys changed map growth patterns, wobbling
//! allocation counts by a handful per run — which the exact-integer
//! alloc gate cannot tolerate. det-hash must flag every piece of this
//! shape: the import, and each default-hasher constructor.

use std::collections::{HashMap, HashSet};

pub struct Node {
    pending_joins: HashMap<(u32, u32), u8>,
    seen: HashSet<(u64, u32)>,
}

impl Node {
    pub fn new() -> Self {
        Node {
            pending_joins: HashMap::new(),
            seen: HashSet::new(),
        }
    }
}
