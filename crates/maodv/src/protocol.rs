//! The bare-MAODV protocol stack: the paper's *baseline* series.
//!
//! [`MaodvProtocol`] adapts [`Maodv`] to [`ag_net::Protocol`] with no
//! gossip layer: whatever the tree delivers is what a member gets. The
//! optional [`TrafficSource`] reproduces the paper's traffic model (64-
//! byte payloads every 200 ms from t = 120 s to t = 560 s).

use ag_net::{NodeId, ProtoCtx, Protocol, RxKind, TimerKey};
use ag_sim::{SimDuration, SimTime};

use crate::delivery::{DeliveryLog, DeliveryPath};
use crate::node::{Maodv, Upcall, TIMER_USER_BASE};
use crate::{GroupId, MaodvConfig, MaodvMsg, NoExt};

/// Timer key used by the traffic generator.
const TIMER_TRAFFIC: TimerKey = TIMER_USER_BASE;

/// The paper's constant-bit-rate multicast source.
///
/// # Example
///
/// ```
/// use ag_maodv::TrafficSource;
/// let t = TrafficSource::paper();
/// assert_eq!(t.packet_count(), 2201);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrafficSource {
    /// First packet at this time.
    pub start: SimTime,
    /// Last packet at or before this time.
    pub end: SimTime,
    /// Inter-packet interval.
    pub interval: SimDuration,
    /// Payload bytes per packet.
    pub payload_len: u16,
}

impl TrafficSource {
    /// The paper's §5.1 source: 64-byte packets every 200 ms from 120 s
    /// to 560 s (2201 packets).
    pub fn paper() -> Self {
        TrafficSource {
            start: SimTime::from_secs(120),
            end: SimTime::from_secs(560),
            interval: SimDuration::from_millis(200),
            payload_len: 64,
        }
    }

    /// A compressed source for tests/benches: `n` packets every
    /// `interval` starting at `start`.
    pub fn compact(start: SimTime, interval: SimDuration, n: u32, payload_len: u16) -> Self {
        TrafficSource {
            start,
            end: start + interval * (n.saturating_sub(1)) as u64,
            interval,
            payload_len,
        }
    }

    /// Number of packets this source will emit.
    pub fn packet_count(&self) -> u64 {
        if self.end < self.start {
            return 0;
        }
        self.end.duration_since(self.start).as_nanos() / self.interval.as_nanos() + 1
    }
}

/// MAODV + (optional) traffic source + delivery accounting.
///
/// # Example
///
/// ```
/// use ag_maodv::{MaodvProtocol, MaodvConfig, GroupId, TrafficSource};
/// use ag_net::{Engine, NodeSetup, NodeId, PhyParams};
/// use ag_mobility::{Stationary, Vec2};
/// use ag_sim::{SimTime, SimDuration};
///
/// let cfg = MaodvConfig::paper_default();
/// let g = GroupId(0);
/// let src = TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 20, 64);
/// let nodes = vec![
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
///         protocol: MaodvProtocol::new(cfg, NodeId::new(0), g, true, Some(src)),
///     },
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(40.0, 0.0))),
///         protocol: MaodvProtocol::new(cfg, NodeId::new(1), g, true, None),
///     },
/// ];
/// let mut e = Engine::new(PhyParams::paper_default(75.0), 7, nodes);
/// e.run_until(SimTime::from_secs(40));
/// let member = e.protocol(NodeId::new(1));
/// assert_eq!(member.delivery().distinct(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct MaodvProtocol {
    node: Maodv<NoExt>,
    delivery: DeliveryLog,
    traffic: Option<TrafficSource>,
    members_observed: u64,
    /// Reused per-delivery upcall buffer (a fresh `Vec` per engine
    /// callback was a steady-state allocation).
    up_scratch: Vec<Upcall<NoExt>>,
}

impl MaodvProtocol {
    /// Creates a node; `traffic` makes it the group's CBR source.
    pub fn new(
        cfg: MaodvConfig,
        id: NodeId,
        group: GroupId,
        is_member: bool,
        traffic: Option<TrafficSource>,
    ) -> Self {
        MaodvProtocol {
            node: Maodv::new(cfg, id, group, is_member),
            delivery: DeliveryLog::new(),
            traffic,
            members_observed: 0,
            up_scratch: Vec::new(),
        }
    }

    /// The underlying routing state.
    pub fn node(&self) -> &Maodv<NoExt> {
        &self.node
    }

    /// Mutable access to the underlying routing state, exposed only so
    /// the `ag-check` canary tests can arm seeded bugs before a run.
    #[cfg(any(test, feature = "bug-canary"))]
    pub fn node_mut(&mut self) -> &mut Maodv<NoExt> {
        &mut self.node
    }

    /// Packets this member has received (distinct, de-duplicated).
    pub fn delivery(&self) -> &DeliveryLog {
        &self.delivery
    }

    /// Number of `MemberObserved` upcalls seen (free membership info the
    /// gossip layer would have fed on).
    pub fn members_observed(&self) -> u64 {
        self.members_observed
    }

    fn process(&mut self, upcalls: &mut Vec<Upcall<NoExt>>) {
        for up in upcalls.drain(..) {
            match up {
                Upcall::DataReceived { origin, seq, .. } => {
                    self.delivery.record(origin, seq, DeliveryPath::Tree);
                }
                Upcall::MemberObserved { .. } => self.members_observed += 1,
                Upcall::ExtNeighbor { msg, .. } | Upcall::ExtRouted { msg, .. } => match msg {},
                Upcall::JoinedTree | Upcall::BecameLeader => {}
            }
        }
    }
}

impl Protocol for MaodvProtocol {
    type Msg = MaodvMsg<NoExt>;

    fn start<C: ProtoCtx<Self::Msg>>(&mut self, api: &mut C) {
        self.node.start(api);
        if let Some(t) = self.traffic {
            api.set_timer(t.start.duration_since(SimTime::ZERO), TIMER_TRAFFIC);
        }
    }

    fn on_packet<C: ProtoCtx<Self::Msg>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        msg: Self::Msg,
        rx: RxKind,
    ) {
        // Borrow the warm upcall buffer out of `self` and hand it back
        // after the drain (the engine's scratch idiom).
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        self.node.on_packet(api, from, msg, rx, &mut up);
        self.process(&mut up);
        self.up_scratch = up;
    }

    fn on_timer<C: ProtoCtx<Self::Msg>>(&mut self, api: &mut C, key: TimerKey) {
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        if self.node.on_timer(api, key, &mut up) {
            self.process(&mut up);
            self.up_scratch = up;
            return;
        }
        if key == TIMER_TRAFFIC {
            if let Some(t) = self.traffic {
                if api.now() <= t.end {
                    let seq = self.node.send_data(api, t.payload_len);
                    // The origin trivially "receives" its own packet.
                    self.delivery
                        .record(self.node.id(), seq, DeliveryPath::Tree);
                    api.set_timer(t.interval, TIMER_TRAFFIC);
                }
            }
        }
        self.process(&mut up);
        self.up_scratch = up;
    }

    fn on_send_failure<C: ProtoCtx<Self::Msg>>(&mut self, api: &mut C, to: NodeId, msg: Self::Msg) {
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        self.node.on_send_failure(api, to, msg, &mut up);
        self.process(&mut up);
        self.up_scratch = up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_mobility::{Mobility, Vec2};
    use ag_net::{Engine, NodeSetup, PhyParams};
    use ag_sim::SimTime;
    use rand::rngs::SmallRng;

    fn stationary(x: f64, y: f64) -> Box<dyn Mobility> {
        Box::new(ag_mobility::Stationary::new(Vec2::new(x, y)))
    }

    /// Teleports from `a` to `b` at time `at` (deterministic link break).
    #[derive(Debug)]
    struct TeleportAt {
        a: Vec2,
        b: Vec2,
        at: SimTime,
        done: bool,
    }

    impl Mobility for TeleportAt {
        fn position(&self, t: SimTime) -> Vec2 {
            if t >= self.at {
                self.b
            } else {
                self.a
            }
        }
        fn current_leg(&self) -> ag_mobility::LegSample {
            // The jump leg describes the whole trajectory exactly (the
            // 1 ns "travel" window contains no queryable instant).
            ag_mobility::LegSample::jump(self.a, self.b, self.at)
        }
        fn next_transition(&self) -> SimTime {
            if self.done {
                SimTime::MAX
            } else {
                self.at
            }
        }
        fn transition(&mut self, _now: SimTime, _rng: &mut SmallRng) {
            self.done = true;
        }
    }

    fn build(
        positions: &[(f64, f64)],
        members: &[usize],
        source: usize,
        traffic: TrafficSource,
        range: f64,
        seed: u64,
    ) -> Engine<MaodvProtocol> {
        let cfg = MaodvConfig::paper_default();
        let g = GroupId(0);
        let nodes = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| NodeSetup {
                mobility: stationary(x, y),
                protocol: MaodvProtocol::new(
                    cfg,
                    NodeId::new(i as u32),
                    g,
                    members.contains(&i),
                    (i == source).then_some(traffic),
                ),
            })
            .collect();
        Engine::new(PhyParams::paper_default(range), seed, nodes)
    }

    #[test]
    fn traffic_source_packet_counts() {
        assert_eq!(TrafficSource::paper().packet_count(), 2201);
        let c = TrafficSource::compact(SimTime::from_secs(1), SimDuration::from_millis(100), 7, 64);
        assert_eq!(c.packet_count(), 7);
        assert_eq!(
            TrafficSource::compact(SimTime::from_secs(1), SimDuration::from_millis(100), 1, 64)
                .packet_count(),
            1
        );
    }

    #[test]
    fn single_member_becomes_leader() {
        let t =
            TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 1, 64);
        let mut e = build(&[(0.0, 0.0), (40.0, 0.0)], &[0], 0, t, 75.0, 1);
        e.run_until(SimTime::from_secs(20));
        assert!(e.protocol(NodeId::new(0)).node().is_leader());
        assert!(e.protocol(NodeId::new(0)).node().on_tree());
        // The non-member never joins on its own.
        assert!(!e.protocol(NodeId::new(1)).node().on_tree());
    }

    #[test]
    fn two_members_form_tree_and_deliver() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            25,
            64,
        );
        let mut e = build(&[(0.0, 0.0), (40.0, 0.0)], &[0, 1], 0, t, 75.0, 2);
        e.run_until(SimTime::from_secs(40));
        let a = e.protocol(NodeId::new(0)).node();
        let b = e.protocol(NodeId::new(1)).node();
        assert!(a.on_tree() && b.on_tree());
        // Exactly one leader.
        assert_eq!(
            [a.is_leader(), b.is_leader()]
                .iter()
                .filter(|&&l| l)
                .count(),
            1
        );
        // All 25 packets at the non-source member.
        assert_eq!(e.protocol(NodeId::new(1)).delivery().distinct(), 25);
    }

    #[test]
    fn chain_delivery_through_router() {
        // A(member/source) — R(router) — B(member); 80 m hops, 100 m range:
        // A and B cannot hear each other directly (160 m apart).
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            30,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
            &[0, 2],
            0,
            t,
            100.0,
            3,
        );
        e.run_until(SimTime::from_secs(40));
        let r = e.protocol(NodeId::new(1)).node();
        assert!(r.on_tree(), "router must be grafted");
        assert!(!r.is_member());
        let b = e.protocol(NodeId::new(2));
        assert_eq!(b.delivery().distinct(), 30, "all packets relayed through R");
        // The router's nearest_member values: members on both sides, 1 hop.
        let nm: Vec<u8> = r.mrt().enabled().map(|h| h.nearest_member).collect();
        assert_eq!(nm.len(), 2);
        assert!(
            nm.iter().all(|&v| v == 1),
            "both tree neighbours are members: {nm:?}"
        );
    }

    #[test]
    fn nearest_member_propagates_down_a_chain() {
        // M(member) — R1 — R2 — M2(member): four hops of 70 m, range 90.
        // R2's nearest member via R1 must converge to 2.
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(500),
            10,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (70.0, 0.0), (140.0, 0.0), (210.0, 0.0)],
            &[0, 3],
            0,
            t,
            90.0,
            4,
        );
        e.run_until(SimTime::from_secs(40));
        let r2 = e.protocol(NodeId::new(2)).node();
        assert!(r2.on_tree());
        let via_r1 = r2.mrt().next_hop(NodeId::new(1)).expect("tree edge to R1");
        assert_eq!(via_r1.nearest_member, 2, "member M is 2 hops past R1");
        let via_m2 = r2.mrt().next_hop(NodeId::new(3)).expect("tree edge to M2");
        assert_eq!(via_m2.nearest_member, 1);
    }

    #[test]
    fn partition_elects_second_leader() {
        // A and B adjacent; B teleports out of range at t=60 s. B must
        // detect the break and become leader of its own partition.
        let cfg = MaodvConfig::paper_default();
        let g = GroupId(0);
        let t =
            TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 5, 64);
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0, 0.0),
                protocol: MaodvProtocol::new(cfg, NodeId::new(0), g, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(TeleportAt {
                    a: Vec2::new(40.0, 0.0),
                    b: Vec2::new(1000.0, 0.0),
                    at: SimTime::from_secs(60),
                    done: false,
                }),
                protocol: MaodvProtocol::new(cfg, NodeId::new(1), g, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 5, nodes);
        e.run_until(SimTime::from_secs(120));
        let a = e.protocol(NodeId::new(0)).node();
        let b = e.protocol(NodeId::new(1)).node();
        assert!(a.is_leader() || b.is_leader());
        // Both partitions end up led: each node is its own partition now.
        assert!(a.is_leader(), "A alone must lead its partition");
        assert!(b.is_leader(), "B must take over after losing its upstream");
    }

    #[test]
    fn grph_merges_two_partitions() {
        // Members A(0 m) and B(160 m) are out of range (range 100) and both
        // become leaders; router R(80 m) hears both. GRPH floods relayed by
        // R must make the higher-id leader defer and graft through R.
        let t = TrafficSource::compact(
            SimTime::from_secs(60),
            SimDuration::from_millis(200),
            40,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
            &[0, 2],
            0,
            t,
            100.0,
            6,
        );
        e.run_until(SimTime::from_secs(90));
        let a = e.protocol(NodeId::new(0)).node();
        let b = e.protocol(NodeId::new(2)).node();
        let leaders = [a.is_leader(), b.is_leader()]
            .iter()
            .filter(|&&l| l)
            .count();
        assert_eq!(leaders, 1, "exactly one leader after merge");
        // Data must flow across the merged tree.
        assert!(
            e.protocol(NodeId::new(2)).delivery().distinct() >= 35,
            "most packets must cross the merged tree, got {}",
            e.protocol(NodeId::new(2)).delivery().distinct()
        );
    }

    #[test]
    fn source_counts_its_own_packets() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            10,
            64,
        );
        let mut e = build(&[(0.0, 0.0), (40.0, 0.0)], &[0, 1], 0, t, 75.0, 7);
        e.run_until(SimTime::from_secs(40));
        assert_eq!(e.protocol(NodeId::new(0)).delivery().distinct(), 10);
    }

    #[test]
    fn tree_connected_tracks_grph_flow() {
        // In a stable 2-member pair, both ends must report a proven path
        // to the leader once group hellos have flowed.
        let t =
            TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 5, 64);
        let mut e = build(&[(0.0, 0.0), (40.0, 0.0)], &[0, 1], 0, t, 75.0, 31);
        e.run_until(SimTime::from_secs(40));
        let now = e.now();
        assert!(e.protocol(NodeId::new(0)).node().tree_connected(now));
        assert!(e.protocol(NodeId::new(1)).node().tree_connected(now));
    }

    #[test]
    fn partitioned_node_loses_tree_connectivity_before_leading() {
        // After B teleports away it must first observe loss of tree
        // connectivity, then become its own leader (and thus connected
        // again). Run long enough for the takeover: B ends up leader.
        let cfg = MaodvConfig::paper_default();
        let g = GroupId(0);
        let t =
            TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 5, 64);
        let nodes = vec![
            NodeSetup {
                mobility: stationary(0.0, 0.0),
                protocol: MaodvProtocol::new(cfg, NodeId::new(0), g, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(TeleportAt {
                    a: Vec2::new(40.0, 0.0),
                    b: Vec2::new(1500.0, 0.0),
                    at: SimTime::from_secs(50),
                    done: false,
                }),
                protocol: MaodvProtocol::new(cfg, NodeId::new(1), g, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 33, nodes);
        e.run_until(SimTime::from_secs(120));
        let b = e.protocol(NodeId::new(1)).node();
        assert!(b.is_leader());
        assert!(b.tree_connected(e.now()), "a leader is trivially connected");
    }

    #[test]
    fn useless_router_prunes_itself_after_member_leaves() {
        // A(member) — R — B(member). When B leaves the group, R becomes a
        // non-member leaf and must prune itself off the tree.
        // We drive leave via a custom wrapper: easiest is to check the
        // prune machinery directly through counters after B's protocol
        // is replaced — instead, reuse leave_group by wrapping MaodvProtocol.
        // Simpler equivalent: 2-hop chain where B simply never joins, so
        // R never grafts — the tree must not contain R.
        let t =
            TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(500), 5, 64);
        let mut e = build(
            &[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
            &[0],
            0,
            t,
            100.0,
            34,
        );
        e.run_until(SimTime::from_secs(60));
        assert!(
            !e.protocol(NodeId::new(1)).node().on_tree(),
            "router with no member below must not persist on tree"
        );
        assert!(!e.protocol(NodeId::new(2)).node().on_tree());
    }

    #[test]
    fn rrep_loops_are_cut() {
        // Sanity: the loop guard counter exists and stays zero in a
        // healthy static network (no stale reverse routes).
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            10,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (60.0, 0.0), (120.0, 0.0)],
            &[0, 2],
            0,
            t,
            90.0,
            35,
        );
        e.run_until(SimTime::from_secs(60));
        assert_eq!(e.counters().get("maodv.rrep_loop_dropped"), 0);
    }

    #[test]
    fn spurious_prune_recovers_via_rejoin() {
        // Even if transient collisions cause spurious link breaks and
        // prunes, members must end fully re-joined in a static topology.
        let t = TrafficSource::compact(
            SimTime::from_secs(60),
            SimDuration::from_millis(200),
            300,
            64,
        );
        let mut e = build(
            &[
                (0.0, 0.0),
                (70.0, 0.0),
                (140.0, 0.0),
                (70.0, 70.0),
                (140.0, 70.0),
            ],
            &[0, 2, 4],
            0,
            t,
            90.0,
            36,
        );
        e.run_until(SimTime::from_secs(180));
        for m in [0u32, 2, 4] {
            assert!(
                e.protocol(NodeId::new(m)).node().on_tree(),
                "member {m} must be (re)joined"
            );
        }
        // Delivery must be near-total despite any transient churn.
        for m in [2u32, 4] {
            let got = e.protocol(NodeId::new(m)).delivery().distinct();
            assert!(got >= 290, "member {m} got only {got}/300");
        }
    }

    #[test]
    fn runs_deterministic_end_to_end() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            20,
            64,
        );
        let run = |seed| {
            let mut e = build(
                &[(0.0, 0.0), (60.0, 0.0), (120.0, 0.0), (60.0, 60.0)],
                &[0, 2, 3],
                0,
                t,
                90.0,
                seed,
            );
            e.run_until(SimTime::from_secs(45));
            (
                e.protocol(NodeId::new(2)).delivery().distinct(),
                e.protocol(NodeId::new(3)).delivery().distinct(),
                e.counters().iter().collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
        // Different seed may differ in details but must still deliver.
        let (d2, d3, _) = run(12);
        assert!(d2 > 0 && d3 > 0);
    }
}
