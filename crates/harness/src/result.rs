//! Reduced results of one simulation run.

use std::collections::BTreeMap;

use ag_net::NodeId;
use ag_sim::stats::{Histogram, Summary, SummarySet};
use serde::{Deserialize, Serialize};

use crate::ProtocolKind;

/// One member's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberStats {
    /// The member.
    pub node: NodeId,
    /// Distinct data packets received (the paper's y-axis).
    pub received: u64,
    /// Of those, first delivered along the multicast tree.
    pub via_tree: u64,
    /// Of those, first delivered by a gossip reply.
    pub via_gossip: u64,
    /// §5.5 goodput, if any reply traffic was received.
    pub goodput_percent: Option<f64>,
    /// Gossip rounds this member ran.
    pub gossip_rounds: u64,
}

/// The reduced outcome of one `(scenario, seed, protocol)` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Which stack ran.
    pub protocol: ProtocolKind,
    /// The master seed.
    pub seed: u64,
    /// The source member.
    pub source: NodeId,
    /// Packets the source emitted.
    pub sent: u64,
    /// Per-member outcomes (source included).
    pub members: Vec<MemberStats>,
    /// Engine counters at the end of the run.
    pub counters: Vec<(String, u64)>,
}

impl RunResult {
    /// Member stats excluding the source (which trivially has all its
    /// own packets); this is what the figures aggregate.
    pub fn receivers(&self) -> impl Iterator<Item = &MemberStats> {
        let source = self.source;
        self.members.iter().filter(move |m| m.node != source)
    }

    /// Summary of packets received across receivers (the paper's data
    /// point: mean plus min/max error bar).
    pub fn received_summary(&self) -> Summary {
        self.receivers().map(|m| m.received as f64).collect()
    }

    /// Mean delivery ratio across receivers, in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.received_summary().mean() / self.sent as f64
    }

    /// Value of an engine counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Constant-memory reduction of one or more runs.
///
/// [`RunResult`] keeps one [`MemberStats`] record per group member, so
/// pooling a metropolis-scale sweep (`seeds × members` records) makes
/// the *result* grow with the node count even though each run's engine
/// memory is bounded. `RunStats` is the streaming alternative: member
/// outcomes fold into fixed-size [`SummarySet`]/[`Histogram`]
/// accumulators the moment a run finishes, so a fold over any number of
/// seeds and any population is a few hundred bytes.
///
/// Merging is associative; `run_seeds` workers can each build a
/// `RunStats` and the seed-ordered merge reproduces the serial fold.
#[derive(Debug, Clone, Serialize)]
pub struct RunStats {
    /// Runs absorbed.
    pub runs: u64,
    /// Packets sent by the sources, summed over runs.
    pub sent: u64,
    /// Per-receiver streams: `received`, `via_tree`, `via_gossip`,
    /// `gossip_rounds`, `goodput` (members with reply traffic only).
    pub receivers: SummarySet,
    /// §5.5 goodput distribution (percent), Figure-8 binning.
    pub goodput_hist: Histogram,
    /// Engine counters summed over runs.
    pub counters: BTreeMap<String, u64>,
}

impl Default for RunStats {
    fn default() -> Self {
        RunStats::new()
    }
}

impl RunStats {
    /// Creates an empty accumulator (goodput binned as in Figure 8).
    pub fn new() -> Self {
        RunStats {
            runs: 0,
            sent: 0,
            receivers: SummarySet::new(),
            goodput_hist: Histogram::new(0.0, 100.0, 20),
            counters: BTreeMap::new(),
        }
    }

    /// Folds one run into the accumulator and drops nothing but the
    /// per-member vector: receivers stream into the summaries, counters
    /// sum.
    pub fn absorb(&mut self, run: &RunResult) {
        self.runs += 1;
        self.sent += run.sent;
        for m in run.receivers() {
            self.receivers.record("received", m.received as f64);
            self.receivers.record("via_tree", m.via_tree as f64);
            self.receivers.record("via_gossip", m.via_gossip as f64);
            self.receivers
                .record("gossip_rounds", m.gossip_rounds as f64);
            if let Some(g) = m.goodput_percent {
                self.receivers.record("goodput", g);
                self.goodput_hist.record(g);
            }
        }
        for (k, v) in &run.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.runs += other.runs;
        self.sent += other.sent;
        self.receivers.merge(&other.receivers);
        self.goodput_hist.merge(&other.goodput_hist);
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Mean delivery ratio across all pooled receivers, in `[0, 1]`
    /// (packets received per receiver over mean packets sent per run).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 || self.runs == 0 {
            return 0.0;
        }
        self.receivers.get("received").mean() * self.runs as f64 / self.sent as f64
    }

    /// Value of a pooled engine counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(node: u32, received: u64) -> MemberStats {
        MemberStats {
            node: NodeId::new(node),
            received,
            via_tree: received,
            via_gossip: 0,
            goodput_percent: None,
            gossip_rounds: 0,
        }
    }

    fn result() -> RunResult {
        RunResult {
            protocol: ProtocolKind::Maodv,
            seed: 0,
            source: NodeId::new(0),
            sent: 100,
            members: vec![stats(0, 100), stats(1, 80), stats(2, 60)],
            counters: vec![("x".into(), 5)],
        }
    }

    #[test]
    fn receivers_exclude_source() {
        let r = result();
        let ids: Vec<NodeId> = r.receivers().map(|m| m.node).collect();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn summary_and_ratio() {
        let r = result();
        let s = r.received_summary();
        assert_eq!(s.mean(), 70.0);
        assert_eq!(s.min(), 60.0);
        assert_eq!(s.max(), 80.0);
        assert!((r.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn counter_lookup() {
        let r = result();
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn run_stats_absorb_matches_run_result() {
        let r = result();
        let mut s = RunStats::new();
        s.absorb(&r);
        assert_eq!(s.runs, 1);
        assert_eq!(s.sent, 100);
        let rx = s.receivers.get("received");
        assert_eq!(rx.count(), 2);
        assert_eq!(rx.mean(), r.received_summary().mean());
        assert_eq!(rx.min(), 60.0);
        assert_eq!(rx.max(), 80.0);
        assert!((s.delivery_ratio() - r.delivery_ratio()).abs() < 1e-12);
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("missing"), 0);
        // No goodput on these members: the histogram stays empty.
        assert_eq!(s.goodput_hist.total(), 0);
        assert_eq!(s.receivers.get("goodput").count(), 0);
    }

    #[test]
    fn run_stats_merge_matches_serial_fold() {
        let mut r2 = result();
        r2.seed = 1;
        r2.members[1].received = 40;
        r2.members[2].goodput_percent = Some(62.5);

        let mut serial = RunStats::new();
        serial.absorb(&result());
        serial.absorb(&r2);

        let mut left = RunStats::new();
        left.absorb(&result());
        let mut right = RunStats::new();
        right.absorb(&r2);
        left.merge(&right);

        assert_eq!(left.runs, serial.runs);
        assert_eq!(left.sent, serial.sent);
        assert_eq!(
            left.receivers.get("received").count(),
            serial.receivers.get("received").count()
        );
        assert_eq!(
            left.receivers.get("received").min(),
            serial.receivers.get("received").min()
        );
        assert!(
            (left.receivers.get("received").mean() - serial.receivers.get("received").mean()).abs()
                < 1e-12
        );
        assert_eq!(left.goodput_hist.total(), serial.goodput_hist.total());
        assert_eq!(left.counter("x"), serial.counter("x"));
    }
}
