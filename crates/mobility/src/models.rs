//! The mobility models themselves.
//!
//! All models are *leg-based*: a node is always either pausing at a point or
//! moving along a straight segment at constant speed. Positions inside a leg
//! are interpolated analytically, and each model reports the absolute time
//! of its next leg transition so the simulation kernel can schedule exactly
//! one event per transition.

use ag_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Field, Vec2};

/// Minimum effective speed (m/s) used when a model draws a speed of ~0.
///
/// The paper's random-waypoint runs use a minimum speed of 0; a literal zero
/// would make travel time infinite. 10⁻⁴ m/s moves a node < 0.1 m over the
/// whole 600 s run — behaviourally stationary, numerically safe.
pub const MIN_EFFECTIVE_SPEED: f64 = 1e-4;

/// A uniform speed distribution `[min, max]` in m/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedRange {
    min: f64,
    max: f64,
}

impl SpeedRange {
    /// Creates a speed range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min ≤ max` and `max > 0`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min >= 0.0 && min <= max && max > 0.0,
            "invalid speed range [{min}, {max}]"
        );
        SpeedRange { min, max }
    }

    /// A fixed speed.
    pub fn fixed(speed: f64) -> Self {
        SpeedRange::new(speed, speed)
    }

    /// Lower bound (m/s).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound (m/s).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Draws a speed; never returns less than [`MIN_EFFECTIVE_SPEED`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let s = if self.min == self.max {
            self.max
        } else {
            rng.random_range(self.min..=self.max)
        };
        s.max(MIN_EFFECTIVE_SPEED)
    }
}

/// A uniform pause-time distribution, `[lo, hi]`.
///
/// The paper pauses each node for `U(0, 80)` seconds at every waypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauseRange {
    lo: SimDuration,
    hi: SimDuration,
}

impl PauseRange {
    /// Creates a pause range from durations.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo <= hi, "invalid pause range");
        PauseRange { lo, hi }
    }

    /// Creates a pause range from float seconds.
    pub fn uniform_secs(lo: f64, hi: f64) -> Self {
        PauseRange::new(
            SimDuration::from_secs_f64(lo),
            SimDuration::from_secs_f64(hi),
        )
    }

    /// The paper's `U(0, 80) s` pause distribution.
    pub fn paper() -> Self {
        PauseRange::uniform_secs(0.0, 80.0)
    }

    /// No pausing at all.
    pub fn none() -> Self {
        PauseRange::new(SimDuration::ZERO, SimDuration::ZERO)
    }

    /// Draws a pause duration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.lo == self.hi {
            return self.lo;
        }
        SimDuration::from_nanos(rng.random_range(self.lo.as_nanos()..=self.hi.as_nanos()))
    }
}

/// An analytic sample of one trajectory leg: linear motion from `from`
/// (held before `depart`) to `to` (held after `arrive`).
///
/// This is the currency of leg-aware position sampling: instead of
/// re-entering a boxed [`Mobility`] model on every range check, the
/// network engine caches each node's [`LegSample`] at mobility
/// transitions and interpolates positions inline. [`LegSample::position_at`]
/// is the *single* interpolation routine shared with the models
/// themselves, so cached sampling is bit-identical to querying the model.
///
/// A pause is a degenerate leg with `from == to`; an instantaneous jump
/// (used by test doubles) is a leg whose `depart`/`arrive` are one
/// nanosecond apart.
///
/// # Example
///
/// ```
/// use ag_mobility::{LegSample, Vec2};
/// use ag_sim::SimTime;
///
/// let leg = LegSample::moving(
///     Vec2::new(0.0, 0.0),
///     Vec2::new(10.0, 0.0),
///     SimTime::ZERO,
///     SimTime::from_secs(10),
/// );
/// assert_eq!(leg.position_at(SimTime::from_secs(5)), Vec2::new(5.0, 0.0));
/// assert_eq!(leg.position_at(SimTime::from_secs(99)), Vec2::new(10.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LegSample {
    /// Position at (and before) `depart`.
    pub from: Vec2,
    /// Position at (and after) `arrive`.
    pub to: Vec2,
    /// When the leg leaves `from`.
    pub depart: SimTime,
    /// When the leg reaches `to`.
    pub arrive: SimTime,
}

impl LegSample {
    /// A leg that never moves: the node sits at `at` forever.
    pub fn fixed(at: Vec2) -> Self {
        LegSample {
            from: at,
            to: at,
            depart: SimTime::ZERO,
            arrive: SimTime::ZERO,
        }
    }

    /// A straight constant-speed leg.
    pub fn moving(from: Vec2, to: Vec2, depart: SimTime, arrive: SimTime) -> Self {
        LegSample {
            from,
            to,
            depart,
            arrive,
        }
    }

    /// An instantaneous jump: `from` strictly before `at`, `to` at and
    /// after `at`. Because simulated time has nanosecond granularity, no
    /// queryable instant falls inside the one-nanosecond "travel"
    /// window. A jump at time zero has no "before" and degenerates to a
    /// fixed leg at `to`.
    pub fn jump(from: Vec2, to: Vec2, at: SimTime) -> Self {
        if at == SimTime::ZERO {
            return LegSample::fixed(to);
        }
        LegSample {
            from,
            to,
            depart: at - SimDuration::from_nanos(1),
            arrive: at,
        }
    }

    /// Exact position at instant `t`; times outside `[depart, arrive]`
    /// clamp to the leg's endpoints.
    pub fn position_at(&self, t: SimTime) -> Vec2 {
        if t <= self.depart || self.arrive <= self.depart {
            self.from
        } else if t >= self.arrive {
            self.to
        } else {
            let num = t.duration_since(self.depart).as_nanos() as f64;
            let den = self.arrive.duration_since(self.depart).as_nanos() as f64;
            self.from.lerp(self.to, num / den)
        }
    }

    /// `true` if the position never changes over the leg's lifetime.
    pub fn is_static(&self) -> bool {
        self.from == self.to || self.arrive <= self.depart
    }
}

/// A node's trajectory generator.
///
/// Object-safe so the network engine can mix models in one run.
pub trait Mobility: std::fmt::Debug + Send {
    /// Exact position at instant `t`.
    ///
    /// `t` may be anywhere; times before the current leg return the leg's
    /// start point and times after it return its end point, so stale queries
    /// degrade gracefully.
    fn position(&self, t: SimTime) -> Vec2;

    /// Absolute time of the next leg transition, or [`SimTime::MAX`] if the
    /// model never changes state again.
    fn next_transition(&self) -> SimTime;

    /// Advances past the transition due at `now`, drawing any randomness
    /// from `rng`. Calling it early or late is harmless.
    fn transition(&mut self, now: SimTime, rng: &mut SmallRng);

    /// The current leg as an analytic sample.
    ///
    /// The sample must agree exactly with [`Mobility::position`] at every
    /// instant up to (at least) [`Mobility::next_transition`]; models whose
    /// whole remaining trajectory is linear may return a longer-lived
    /// sample. The engine re-queries after every transition.
    fn current_leg(&self) -> LegSample;
}

#[derive(Debug, Clone, Copy)]
enum Leg {
    Pausing {
        at: Vec2,
        until: SimTime,
    },
    Moving {
        from: Vec2,
        to: Vec2,
        depart: SimTime,
        arrive: SimTime,
    },
}

impl Leg {
    /// The leg as an analytic sample; [`Leg::position`] delegates to
    /// [`LegSample::position_at`] so the two can never drift apart.
    fn sample(&self) -> LegSample {
        match *self {
            Leg::Pausing { at, until } => LegSample {
                from: at,
                to: at,
                depart: until,
                arrive: until,
            },
            Leg::Moving {
                from,
                to,
                depart,
                arrive,
            } => LegSample {
                from,
                to,
                depart,
                arrive,
            },
        }
    }

    fn position(&self, t: SimTime) -> Vec2 {
        self.sample().position_at(t)
    }

    fn end(&self) -> SimTime {
        match *self {
            Leg::Pausing { until, .. } => until,
            Leg::Moving { arrive, .. } => arrive,
        }
    }
}

/// The random-waypoint model (paper §5.1).
///
/// The node repeats: pick a uniform destination, travel to it at a speed
/// drawn from `speeds`, pause for a time drawn from `pauses`.
///
/// # Example
///
/// ```
/// use ag_mobility::{Field, RandomWaypoint, Mobility, SpeedRange, PauseRange};
/// use ag_sim::rng::{SeedSplitter, StreamKind};
/// use ag_sim::SimTime;
///
/// let mut rng = SeedSplitter::new(3).stream(StreamKind::Mobility, 0);
/// let m = RandomWaypoint::new(Field::paper(), SpeedRange::new(0.0, 2.0),
///                             PauseRange::paper(), &mut rng);
/// assert!(Field::paper().contains(m.position(SimTime::ZERO)));
/// ```
#[derive(Debug)]
pub struct RandomWaypoint {
    field: Field,
    speeds: SpeedRange,
    pauses: PauseRange,
    leg: Leg,
}

impl RandomWaypoint {
    /// Creates a node placed uniformly in `field`, already moving toward its
    /// first waypoint at time zero.
    pub fn new<R: Rng + ?Sized>(
        field: Field,
        speeds: SpeedRange,
        pauses: PauseRange,
        rng: &mut R,
    ) -> Self {
        let start = field.sample_uniform(rng);
        let leg = Self::new_move(field, speeds, start, SimTime::ZERO, rng);
        RandomWaypoint {
            field,
            speeds,
            pauses,
            leg,
        }
    }

    /// Creates a node at an explicit starting point (useful in tests).
    pub fn from_point<R: Rng + ?Sized>(
        field: Field,
        speeds: SpeedRange,
        pauses: PauseRange,
        start: Vec2,
        rng: &mut R,
    ) -> Self {
        let start = field.clamp(start);
        let leg = Self::new_move(field, speeds, start, SimTime::ZERO, rng);
        RandomWaypoint {
            field,
            speeds,
            pauses,
            leg,
        }
    }

    fn new_move<R: Rng + ?Sized>(
        field: Field,
        speeds: SpeedRange,
        from: Vec2,
        depart: SimTime,
        rng: &mut R,
    ) -> Leg {
        let to = field.sample_uniform(rng);
        let speed = speeds.sample(rng);
        let dist = from.distance_to(to);
        let travel = SimDuration::from_secs_f64(dist / speed);
        Leg::Moving {
            from,
            to,
            depart,
            arrive: depart.saturating_add(travel),
        }
    }
}

impl Mobility for RandomWaypoint {
    fn position(&self, t: SimTime) -> Vec2 {
        self.leg.position(t)
    }

    fn current_leg(&self) -> LegSample {
        self.leg.sample()
    }

    fn next_transition(&self) -> SimTime {
        self.leg.end()
    }

    fn transition(&mut self, now: SimTime, rng: &mut SmallRng) {
        let here = self.leg.position(now);
        self.leg = match self.leg {
            Leg::Moving { .. } => {
                let pause = self.pauses.sample(rng);
                if pause.is_zero() {
                    Self::new_move(self.field, self.speeds, here, now, rng)
                } else {
                    Leg::Pausing {
                        at: here,
                        until: now.saturating_add(pause),
                    }
                }
            }
            Leg::Pausing { .. } => Self::new_move(self.field, self.speeds, here, now, rng),
        };
    }
}

/// A bounded random walk: fixed-length epochs in uniformly random
/// directions, destinations clipped to the field.
///
/// Not used by the paper's headline experiments; provided for ablations and
/// as a second model exercising the same engine interface.
#[derive(Debug)]
pub struct RandomWalk {
    field: Field,
    speeds: SpeedRange,
    epoch: SimDuration,
    leg: Leg,
}

impl RandomWalk {
    /// Creates a walker placed uniformly in `field`; each leg lasts at most
    /// `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new<R: Rng + ?Sized>(
        field: Field,
        speeds: SpeedRange,
        epoch: SimDuration,
        rng: &mut R,
    ) -> Self {
        assert!(!epoch.is_zero(), "random walk epoch must be positive");
        let start = field.sample_uniform(rng);
        let leg = Self::new_leg(field, speeds, epoch, start, SimTime::ZERO, rng);
        RandomWalk {
            field,
            speeds,
            epoch,
            leg,
        }
    }

    fn new_leg<R: Rng + ?Sized>(
        field: Field,
        speeds: SpeedRange,
        epoch: SimDuration,
        from: Vec2,
        depart: SimTime,
        rng: &mut R,
    ) -> Leg {
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        let speed = speeds.sample(rng);
        let reach = speed * epoch.as_secs_f64();
        let raw_to = from + Vec2::new(theta.cos(), theta.sin()) * reach;
        let to = field.clamp(raw_to);
        let dist = from.distance_to(to);
        let travel = SimDuration::from_secs_f64(dist / speed);
        Leg::Moving {
            from,
            to,
            depart,
            arrive: depart.saturating_add(travel),
        }
    }
}

impl Mobility for RandomWalk {
    fn position(&self, t: SimTime) -> Vec2 {
        self.leg.position(t)
    }

    fn current_leg(&self) -> LegSample {
        self.leg.sample()
    }

    fn next_transition(&self) -> SimTime {
        self.leg.end()
    }

    fn transition(&mut self, now: SimTime, rng: &mut SmallRng) {
        let here = self.leg.position(now);
        self.leg = Self::new_leg(self.field, self.speeds, self.epoch, here, now, rng);
    }
}

/// A node that never moves.
#[derive(Debug, Clone, Copy)]
pub struct Stationary {
    at: Vec2,
}

impl Stationary {
    /// Creates a node pinned at `at`.
    pub fn new(at: Vec2) -> Self {
        Stationary { at }
    }

    /// Creates a node pinned at a uniformly random point of `field`.
    pub fn random<R: Rng + ?Sized>(field: Field, rng: &mut R) -> Self {
        Stationary {
            at: field.sample_uniform(rng),
        }
    }
}

impl Mobility for Stationary {
    fn position(&self, _t: SimTime) -> Vec2 {
        self.at
    }

    fn current_leg(&self) -> LegSample {
        LegSample::fixed(self.at)
    }

    fn next_transition(&self) -> SimTime {
        SimTime::MAX
    }

    fn transition(&mut self, _now: SimTime, _rng: &mut SmallRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::rng::{SeedSplitter, StreamKind};
    use proptest::prelude::*;

    fn rng(i: u64) -> SmallRng {
        SeedSplitter::new(0xC0FFEE).stream(StreamKind::Mobility, i)
    }

    #[test]
    fn speed_range_validation() {
        let s = SpeedRange::new(0.0, 2.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 2.0);
        let f = SpeedRange::fixed(1.5);
        assert_eq!(f.sample(&mut rng(0)), 1.5);
    }

    #[test]
    #[should_panic]
    fn speed_range_rejects_inverted() {
        let _ = SpeedRange::new(2.0, 1.0);
    }

    #[test]
    fn speed_sample_never_zero() {
        let s = SpeedRange::new(0.0, 0.1);
        let mut r = rng(1);
        for _ in 0..1000 {
            assert!(s.sample(&mut r) >= MIN_EFFECTIVE_SPEED);
        }
    }

    #[test]
    fn pause_range_sampling() {
        let p = PauseRange::paper();
        let mut r = rng(2);
        for _ in 0..1000 {
            let d = p.sample(&mut r);
            assert!(d <= SimDuration::from_secs(80));
        }
        assert_eq!(PauseRange::none().sample(&mut r), SimDuration::ZERO);
    }

    #[test]
    fn waypoint_starts_inside_and_moving() {
        let mut r = rng(3);
        let m = RandomWaypoint::new(
            Field::paper(),
            SpeedRange::new(0.0, 2.0),
            PauseRange::paper(),
            &mut r,
        );
        assert!(Field::paper().contains(m.position(SimTime::ZERO)));
        assert!(m.next_transition() > SimTime::ZERO);
    }

    #[test]
    fn waypoint_position_continuous_across_transition() {
        let mut r = rng(4);
        let mut m = RandomWaypoint::new(
            Field::paper(),
            SpeedRange::new(0.5, 2.0),
            PauseRange::uniform_secs(1.0, 5.0),
            &mut r,
        );
        for _ in 0..50 {
            let t = m.next_transition();
            if t == SimTime::MAX {
                break;
            }
            let before = m.position(t);
            m.transition(t, &mut r);
            let after = m.position(t);
            assert!(before.distance_to(after) < 1e-9, "teleport at transition");
        }
    }

    #[test]
    fn waypoint_alternates_move_pause() {
        let mut r = rng(5);
        let mut m = RandomWaypoint::new(
            Field::paper(),
            SpeedRange::fixed(1.0),
            PauseRange::uniform_secs(2.0, 2.0),
            &mut r,
        );
        // First leg is a move; after transition we must be pausing for 2 s.
        let arrive = m.next_transition();
        m.transition(arrive, &mut r);
        assert_eq!(m.next_transition(), arrive + SimDuration::from_secs(2));
        // Position holds still during a pause.
        let p0 = m.position(arrive);
        let p1 = m.position(arrive + SimDuration::from_secs(1));
        assert_eq!(p0, p1);
    }

    #[test]
    fn waypoint_zero_pause_goes_straight_to_next_leg() {
        let mut r = rng(6);
        let mut m = RandomWaypoint::new(
            Field::paper(),
            SpeedRange::fixed(10.0),
            PauseRange::none(),
            &mut r,
        );
        let arrive = m.next_transition();
        m.transition(arrive, &mut r);
        // Still moving: next transition strictly after arrive.
        assert!(m.next_transition() > arrive);
        let p_mid = m.position(arrive + SimDuration::from_millis(1));
        assert!(Field::paper().contains(p_mid));
    }

    #[test]
    fn from_point_clamps() {
        let mut r = rng(7);
        let m = RandomWaypoint::from_point(
            Field::new(10.0, 10.0),
            SpeedRange::fixed(1.0),
            PauseRange::none(),
            Vec2::new(50.0, -3.0),
            &mut r,
        );
        assert_eq!(m.position(SimTime::ZERO), Vec2::new(10.0, 0.0));
    }

    #[test]
    fn walk_stays_in_field() {
        let mut r = rng(8);
        let f = Field::new(50.0, 50.0);
        let mut m = RandomWalk::new(
            f,
            SpeedRange::fixed(5.0),
            SimDuration::from_secs(10),
            &mut r,
        );
        for _ in 0..100 {
            let t = m.next_transition();
            assert!(f.contains(m.position(t)));
            m.transition(t, &mut r);
        }
    }

    #[test]
    fn stationary_never_transitions() {
        let s = Stationary::new(Vec2::new(1.0, 2.0));
        assert_eq!(s.next_transition(), SimTime::MAX);
        assert_eq!(s.position(SimTime::from_secs(500)), Vec2::new(1.0, 2.0));
        let mut r = rng(9);
        let mut s2 = s;
        s2.transition(SimTime::from_secs(1), &mut r);
        assert_eq!(s2.position(SimTime::ZERO), s.position(SimTime::ZERO));
    }

    #[test]
    fn stationary_random_inside() {
        let f = Field::paper();
        let s = Stationary::random(f, &mut rng(10));
        assert!(f.contains(s.position(SimTime::ZERO)));
    }

    #[test]
    fn leg_sample_fixed_and_jump() {
        let p = Vec2::new(3.0, 4.0);
        let fixed = LegSample::fixed(p);
        assert!(fixed.is_static());
        assert_eq!(fixed.position_at(SimTime::ZERO), p);
        assert_eq!(fixed.position_at(SimTime::from_secs(1_000)), p);

        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(100.0, 0.0);
        let at = SimTime::from_secs(10);
        let j = LegSample::jump(a, b, at);
        assert!(!j.is_static());
        assert_eq!(j.position_at(at - SimDuration::from_nanos(1)), a);
        assert_eq!(j.position_at(at), b);
        assert_eq!(j.position_at(SimTime::from_secs(99)), b);

        // A jump at t=0 has already happened: the node sits at `to`.
        let j0 = LegSample::jump(a, b, SimTime::ZERO);
        assert_eq!(j0.position_at(SimTime::ZERO), b);
        assert_eq!(j0.position_at(SimTime::from_secs(1)), b);
    }

    #[test]
    fn stationary_leg_lives_forever() {
        let s = Stationary::new(Vec2::new(7.0, 8.0));
        let leg = s.current_leg();
        assert!(leg.is_static());
        assert_eq!(leg.position_at(SimTime::MAX), Vec2::new(7.0, 8.0));
    }

    proptest! {
        /// The cached leg sample agrees *bit-for-bit* with the model's own
        /// position at every instant up to the next transition — the
        /// invariant the network engine's position cache relies on.
        #[test]
        fn prop_leg_sample_matches_position(seed in 0u64..300) {
            let f = Field::paper();
            let mut r = SeedSplitter::new(seed).stream(StreamKind::Mobility, 2);
            let mut m = RandomWaypoint::new(f, SpeedRange::new(0.0, 8.0), PauseRange::paper(), &mut r);
            let mut now = SimTime::ZERO;
            for _ in 0..30 {
                let leg = m.current_leg();
                let until = m.next_transition();
                // Probe inside the leg, at its ends, and beyond.
                let probes = [
                    now,
                    now.saturating_add(SimDuration::from_millis(1)),
                    until,
                    until.saturating_add(SimDuration::from_secs(5)),
                ];
                for t in probes {
                    prop_assert_eq!(leg.position_at(t), m.position(t));
                }
                if until == SimTime::MAX {
                    break;
                }
                m.transition(until, &mut r);
                now = until;
            }
        }

        /// A random-waypoint node is inside the field at *every* queried
        /// instant, across many legs and seeds.
        #[test]
        fn prop_waypoint_always_in_field(seed in 0u64..500, queries in prop::collection::vec(0u64..600, 1..20)) {
            let f = Field::paper();
            let mut r = SeedSplitter::new(seed).stream(StreamKind::Mobility, 0);
            let mut m = RandomWaypoint::new(f, SpeedRange::new(0.0, 10.0), PauseRange::paper(), &mut r);
            let mut sorted = queries.clone();
            sorted.sort_unstable();
            for q in sorted {
                let t = SimTime::from_secs(q);
                while m.next_transition() < t {
                    let tr = m.next_transition();
                    m.transition(tr, &mut r);
                }
                prop_assert!(f.contains(m.position(t)));
            }
        }

        /// Movement speed never exceeds the configured maximum.
        #[test]
        fn prop_waypoint_respects_speed_limit(seed in 0u64..200) {
            let f = Field::paper();
            let max = 2.0;
            let mut r = SeedSplitter::new(seed).stream(StreamKind::Mobility, 1);
            let mut m = RandomWaypoint::new(f, SpeedRange::new(0.0, max), PauseRange::none(), &mut r);
            let step = SimDuration::from_millis(500);
            let mut t = SimTime::ZERO;
            let mut prev = m.position(t);
            for _ in 0..200 {
                let nt = t + step;
                while m.next_transition() < nt {
                    let tr = m.next_transition();
                    m.transition(tr, &mut r);
                }
                let cur = m.position(nt);
                let dist = prev.distance_to(cur);
                prop_assert!(dist <= max * step.as_secs_f64() + 1e-6,
                             "moved {dist} m in 0.5 s with max {max} m/s");
                prev = cur;
                t = nt;
            }
        }
    }
}
