//! The lint rules: named, documented token-pattern checks.
//!
//! Each rule is the executable form of a discipline that previously
//! lived only in ARCHITECTURE.md prose (see `docs/LINTS.md` for the
//! full rationale and the PR that motivated each one):
//!
//! * **det-hash** — no default-hasher `HashMap`/`HashSet` and no
//!   `BinaryHeap` in non-test simulation code (PR 7's `RandomState`
//!   allocation wobble; PR 6's calendar queue).
//! * **wall-clock** — no `Instant::now`/`SystemTime::now`/
//!   `thread::sleep` outside the bench crate and allowlisted probes.
//! * **stream-discipline** — no ad-hoc RNG seeding; randomness comes
//!   from `StreamKind`-keyed `SeedSplitter` streams.
//! * **hot-path-alloc** — no allocating calls inside the manifest of
//!   steady-state hot-path functions (static complement of the runtime
//!   `alloc-count` gate).
//! * **ordered-iteration** — iterating a `DetHashMap`/`DetHashSet` in
//!   report/figure/golden code must sort before emitting.
//! * **waiver-reason** — the meta-rule: every waiver comment must name
//!   a real rule and carry a `-- <reason>`.
//!
//! A finding is waived by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // ag-lint: allow(det-hash) -- frozen seed-vintage reference oracle
//! use std::collections::BinaryHeap;
//! ```
//!
//! The reason is mandatory and `waiver-reason` itself cannot be waived.

use crate::config::{matches_any, Config};
use crate::lexer::{is_ident, is_punct, lex, match_seq, Tok, Token, WaiverComment};

/// The named rules. `Meta` is the waiver-format check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Default-hasher std collections in simulation code.
    DetHash,
    /// Host-clock reads in deterministic code.
    WallClock,
    /// RNG construction outside the `StreamKind` helpers.
    StreamDiscipline,
    /// Allocation in a manifest hot-path function.
    HotPathAlloc,
    /// Unsorted hash-map iteration feeding rendered output.
    OrderedIteration,
    /// Malformed or reason-less waiver comments.
    WaiverReason,
}

/// Every rule, for registry-style iteration.
pub const ALL_RULES: [Rule; 6] = [
    Rule::DetHash,
    Rule::WallClock,
    Rule::StreamDiscipline,
    Rule::HotPathAlloc,
    Rule::OrderedIteration,
    Rule::WaiverReason,
];

impl Rule {
    /// The rule's name as written in waivers and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DetHash => "det-hash",
            Rule::WallClock => "wall-clock",
            Rule::StreamDiscipline => "stream-discipline",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::OrderedIteration => "ordered-iteration",
            Rule::WaiverReason => "waiver-reason",
        }
    }

    /// Parses a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// One-line fix hint appended to every finding of this rule.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::DetHash => {
                "use ag_sim::hash::{DetHashMap, DetHashSet} (fixed-key hashing) or the \
                 ag_sim::EventQueue calendar queue; see docs/LINTS.md#det-hash"
            }
            Rule::WallClock => {
                "simulation code tells time via SimTime only; wall-clock reads belong in \
                 crates/bench or an allowlisted probe; see docs/LINTS.md#wall-clock"
            }
            Rule::StreamDiscipline => {
                "draw randomness from a named stream: SeedSplitter::stream(StreamKind::…, idx); \
                 see docs/LINTS.md#stream-discipline"
            }
            Rule::HotPathAlloc => {
                "hot-path functions reuse pooled/scratch buffers instead of allocating; the \
                 runtime alloc-count gate asserts the same at run time; see \
                 docs/LINTS.md#hot-path-alloc"
            }
            Rule::OrderedIteration => {
                "sort before emitting (collect + sort_unstable) so rendered bytes never depend \
                 on hash-map iteration order; see docs/LINTS.md#ordered-iteration"
            }
            Rule::WaiverReason => {
                "waivers are `// ag-lint: allow(<rule>) -- <reason>`; the reason is mandatory; \
                 see docs/LINTS.md#waivers"
            }
        }
    }
}

/// One violation at a specific line of one file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// What was matched, in terms of the offending source construct.
    pub message: String,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived waiver filtering, sorted by line.
    pub findings: Vec<Finding>,
    /// Number of well-formed waivers that suppressed at least one
    /// finding in this file.
    pub waivers_used: usize,
    /// Number of well-formed waivers present in this file.
    pub waivers_present: usize,
}

/// A parsed `ag-lint: allow(<rule>) -- <reason>` comment.
struct Waiver {
    line: u32,
    rule: Rule,
}

/// Scans one file's source against every rule the config puts it in
/// scope for. `rel_path` is workspace-relative with `/` separators and
/// drives scope matching; files under a `tests/` directory are treated
/// as test code wholesale (the det-hash / stream-discipline / ordered-
/// iteration rules exempt test code; wall-clock deliberately does not).
pub fn scan_file(rel_path: &str, src: &str, cfg: &Config) -> FileScan {
    let lexed = lex(src);
    let tokens = &lexed.tokens;

    // Waiver parsing: malformed waivers are findings of the meta-rule
    // and never suppress anything.
    let mut meta_findings = Vec::new();
    let waivers = parse_waivers(&lexed.waivers, &mut meta_findings);

    let is_test_file = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
    let in_test = if is_test_file {
        vec![true; tokens.len()]
    } else {
        mark_test_regions(tokens)
    };

    let mut findings = Vec::new();
    if matches_any(rel_path, &cfg.det_hash_scope) && !matches_any(rel_path, &cfg.det_hash_exempt) {
        det_hash(tokens, &in_test, &mut findings);
    }
    if !matches_any(rel_path, &cfg.wall_clock_exempt) {
        wall_clock(tokens, &mut findings);
    }
    if !matches_any(rel_path, &cfg.stream_discipline_exempt) {
        stream_discipline(tokens, &in_test, &mut findings);
    }
    for (file, fns) in &cfg.hot_path_manifest {
        if rel_path == file {
            hot_path_alloc(tokens, fns, &mut findings);
        }
    }
    if matches_any(rel_path, &cfg.ordered_iteration_scope) {
        ordered_iteration(tokens, &in_test, &mut findings);
    }

    // One finding per (rule, line): the same construct often matches
    // two patterns (import + bare name) and waivers are line-scoped.
    findings.sort_by_key(|f| (f.line, f.rule.name()));
    findings.dedup_by_key(|f| (f.rule, f.line));

    // Waiver filtering: a waiver covers its own line and the next one.
    let mut used = vec![false; waivers.len()];
    findings.retain(|f| {
        let hit = waivers
            .iter()
            .position(|w| w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line));
        match hit {
            Some(k) => {
                used[k] = true;
                false
            }
            None => true,
        }
    });

    findings.extend(meta_findings);
    findings.sort_by_key(|f| f.line);
    FileScan {
        findings,
        waivers_used: used.iter().filter(|u| **u).count(),
        waivers_present: waivers.len(),
    }
}

/// Parses waiver comments; malformed ones become `waiver-reason`
/// findings (which cannot themselves be waived).
fn parse_waivers(raw: &[WaiverComment], findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut out = Vec::new();
    for w in raw {
        let body = w
            .body
            .strip_prefix("ag-lint")
            .unwrap_or(&w.body)
            .trim_start_matches(':')
            .trim();
        let mut bad = |message: String| {
            findings.push(Finding {
                rule: Rule::WaiverReason,
                line: w.line,
                message,
            });
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            bad(format!(
                "unrecognized waiver `{body}`; expected `allow(<rule>) -- <reason>`"
            ));
            continue;
        };
        let Some((name, tail)) = rest.split_once(')') else {
            bad("waiver is missing the closing `)` after the rule name".to_string());
            continue;
        };
        let Some(rule) = Rule::from_name(name.trim()) else {
            bad(format!("waiver names unknown rule `{}`", name.trim()));
            continue;
        };
        if rule == Rule::WaiverReason {
            bad("the `waiver-reason` meta-rule cannot be waived".to_string());
            continue;
        }
        let reason = tail.trim();
        let Some(reason) = reason.strip_prefix("--") else {
            bad(format!(
                "waiver for `{}` is missing the mandatory `-- <reason>`",
                rule.name()
            ));
            continue;
        };
        if reason.trim().is_empty() {
            bad(format!(
                "waiver for `{}` has an empty reason after `--`",
                rule.name()
            ));
            continue;
        }
        out.push(Waiver { line: w.line, rule });
    }
    out
}

/// Marks every token inside a `#[cfg(test)]` (or `#[test]`) item as
/// test code. The region runs from the attribute through the item's
/// closing brace (or `;` for brace-less items). Inline `mod tests {}`
/// is the only shape the workspace uses; out-of-line `mod tests;`
/// files live under `tests/` directories and are caught by path.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_punct(tokens, i, '#') && is_punct(tokens, i + 1, '[')) {
            i += 1;
            continue;
        }
        let (attr_end, is_test_attr) = scan_attribute(tokens, i + 1);
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        let start = i;
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end;
        while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
            j = scan_attribute(tokens, j + 1).0;
        }
        // The item body: everything to the matching `}` (or a `;`).
        let mut depth = 0usize;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        test[start..j.min(tokens.len())]
            .iter_mut()
            .for_each(|t| *t = true);
        i = j;
    }
    test
}

/// Scans an attribute whose `[` is at `open`. Returns the index one
/// past the closing `]` and whether the attribute marks test code
/// (`#[test]` or `#[cfg(test)]`-shaped).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s),
            Tok::Punct(_) => {}
        }
        j += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    };
    (j, is_test)
}

/// The collection names det-hash polices.
const DET_HASH_TYPES: [&str; 3] = ["HashMap", "HashSet", "BinaryHeap"];

/// det-hash: default-hasher std collections in simulation code.
fn det_hash(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            rule: Rule::DetHash,
            line,
            message,
        })
    };
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test[i] {
            i += 1;
            continue;
        }
        // `std::collections::…` paths, in `use` items and inline alike:
        // flag each policed name reached through the path (including
        // names inside a `use std::collections::{…}` group).
        if match_seq(tokens, i, &["std", ":", ":", "collections"]) {
            // Walk only the path segment (idents, `::`, `{…}` groups,
            // `,`, `*`, `as`), flagging each policed name it reaches;
            // stop at the first token that ends the path.
            let mut j = i + 4;
            let mut depth = 0usize;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(':') | Tok::Punct(',') | Tok::Punct('*') => {}
                    Tok::Ident(s) if s == "as" => j += 1, // skip the alias name
                    Tok::Ident(s) => {
                        if DET_HASH_TYPES.contains(&s.as_str()) {
                            push(
                                tokens[j].line,
                                format!("`std::collections::{s}` (default hasher / seed queue) in simulation code"),
                            );
                        }
                        if s == "RandomState" {
                            push(
                                tokens[j].line,
                                "`RandomState` (per-process SipHash keys) in simulation code"
                                    .into(),
                            );
                        }
                    }
                    Tok::Punct(_) => break,
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Bare `HashMap::new()` / `HashSet::new()`: only ever the std
        // default-hasher constructor — the DetHashMap/DetHashSet
        // aliases have no `new`, which is exactly how PR 7's
        // RandomState bug was spelled.
        for ty in ["HashMap", "HashSet"] {
            if match_seq(tokens, i, &[ty, ":", ":", "new"]) {
                push(
                    tokens[i].line,
                    format!("`{ty}::new()` constructs the default RandomState hasher"),
                );
            }
        }
        if is_ident(tokens, i, "BinaryHeap") {
            push(
                tokens[i].line,
                "`BinaryHeap` in simulation code (the calendar queue is the scheduler)".into(),
            );
        }
        if is_ident(tokens, i, "RandomState") {
            push(
                tokens[i].line,
                "`RandomState` (per-process SipHash keys) in simulation code".into(),
            );
        }
        i += 1;
    }
}

/// wall-clock: host-clock reads. Applies to test code too — tests that
/// time things are exactly how nondeterminism sneaks into CI.
fn wall_clock(tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let hit = [
            (
                ["Instant", ":", ":", "now"],
                "`Instant::now()` reads the host clock",
            ),
            (
                ["SystemTime", ":", ":", "now"],
                "`SystemTime::now()` reads the host clock",
            ),
            (
                ["thread", ":", ":", "sleep"],
                "`thread::sleep` blocks on host time",
            ),
        ]
        .into_iter()
        .find(|(pat, _)| match_seq(tokens, i, pat));
        if let Some((_, msg)) = hit {
            findings.push(Finding {
                rule: Rule::WallClock,
                line: tokens[i].line,
                message: msg.to_string(),
            });
        }
    }
}

/// stream-discipline: RNG construction outside the keyed helpers.
fn stream_discipline(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let bare = ["from_entropy", "from_os_rng", "thread_rng", "StdRng"]
            .into_iter()
            .find(|name| is_ident(tokens, i, name))
            .map(|name| format!("`{name}` draws seeds outside the StreamKind discipline"));
        let seeded = ["seed_from_u64", "from_seed", "from_rng"]
            .into_iter()
            .find(|m| match_seq(tokens, i, &["SmallRng", ":", ":", m]))
            .map(|m| format!("ad-hoc `SmallRng::{m}` bypasses the StreamKind-keyed streams"));
        if let Some(message) = bare.or(seeded) {
            findings.push(Finding {
                rule: Rule::StreamDiscipline,
                line: tokens[i].line,
                message,
            });
        }
    }
}

/// Allocating constructors forbidden in hot-path bodies, as
/// `Type::method` path pairs.
const HOT_ALLOC_PATHS: [(&str, &str); 6] = [
    ("Vec", "new"),
    ("VecDeque", "new"),
    ("Box", "new"),
    ("String", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
];

/// Allocating method calls forbidden in hot-path bodies (matched as
/// `.name`), plus the `vec!`/`format!` macros.
const HOT_ALLOC_METHODS: [&str; 5] = [
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "with_capacity",
];

/// hot-path-alloc: allocation written inside a manifest function.
fn hot_path_alloc(tokens: &[Token], fns: &[String], findings: &mut Vec<Finding>) {
    for name in fns {
        let Some((body_start, body_end, fn_line)) = fn_body(tokens, name) else {
            findings.push(Finding {
                rule: Rule::HotPathAlloc,
                line: 1,
                message: format!(
                    "hot-path manifest names `fn {name}` but this file no longer defines it; \
                     update the manifest in crates/lint/src/config.rs"
                ),
            });
            continue;
        };
        let _ = fn_line;
        for i in body_start..body_end {
            let path = HOT_ALLOC_PATHS
                .into_iter()
                .find(|(ty, m)| match_seq(tokens, i, &[ty, ":", ":", m]))
                .map(|(ty, m)| format!("`{ty}::{m}` allocates"));
            let method = HOT_ALLOC_METHODS
                .into_iter()
                .find(|m| is_punct(tokens, i, '.') && is_ident(tokens, i + 1, m))
                .map(|m| format!("`.{m}(…)` allocates"));
            let mac = ["vec", "format"]
                .into_iter()
                .find(|m| is_ident(tokens, i, m) && is_punct(tokens, i + 1, '!'))
                .map(|m| format!("`{m}!` allocates"));
            if let Some(what) = path.or(method).or(mac) {
                findings.push(Finding {
                    rule: Rule::HotPathAlloc,
                    line: tokens[i].line,
                    message: format!("{what} inside hot-path `fn {name}`"),
                });
            }
        }
    }
}

/// Finds the body token range of `fn name`, returning
/// `(start, end, line)` where `start` is the index of the opening `{`
/// and `end` is one past the matching `}`.
fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize, u32)> {
    let mut i = 0usize;
    while i < tokens.len() {
        if is_ident(tokens, i, "fn") && is_ident(tokens, i + 1, name) {
            let fn_line = tokens[i].line;
            let mut j = i + 2;
            // Scan the signature for the opening brace; a `;` first
            // means a trait method declaration — keep looking.
            let mut found = None;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('{') => {
                        found = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            if let Some(start) = found {
                let mut depth = 0usize;
                let mut k = start;
                while k < tokens.len() {
                    match tokens[k].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start, k + 1, fn_line));
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    None
}

/// Iteration adapters ordered-iteration polices on Det collections.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// How many tokens past an iteration call a `sort*` call must appear
/// within to count as ordering the output (covers the idiomatic
/// `let mut v: Vec<_> = m.iter().collect(); v.sort_unstable();`).
const SORT_WINDOW: usize = 40;

/// ordered-iteration: hash-order iteration feeding rendered output.
fn ordered_iteration(tokens: &[Token], in_test: &[bool], findings: &mut Vec<Finding>) {
    // Pass 1: names bound to DetHashMap/DetHashSet in this file, via
    // `name: DetHashMap<…>` (fields, params, lets) or
    // `let [mut] name = DetHashMap::…`.
    let mut det_names: Vec<&str> = Vec::new();
    for i in 0..tokens.len() {
        let is_det =
            |k: usize| is_ident(tokens, k, "DetHashMap") || is_ident(tokens, k, "DetHashSet");
        if let Some(Token {
            tok: Tok::Ident(name),
            ..
        }) = tokens.get(i)
        {
            // `name: DetHashMap<…>`, `name: &DetHashMap<…>`,
            // `name: &mut DetHashMap<…>` (fields, params, lets).
            let det_after_ref = is_det(i + 2)
                || (is_punct(tokens, i + 2, '&') && is_det(i + 3))
                || (is_punct(tokens, i + 2, '&')
                    && is_ident(tokens, i + 3, "mut")
                    && is_det(i + 4));
            let ascription =
                is_punct(tokens, i + 1, ':') && !is_punct(tokens, i + 2, ':') && det_after_ref;
            let binding = is_ident(tokens, i.wrapping_sub(1), "let")
                || is_ident(tokens, i.wrapping_sub(1), "mut");
            let assigned = binding && is_punct(tokens, i + 1, '=') && is_det(i + 2);
            if (ascription || assigned) && !det_names.contains(&name.as_str()) {
                det_names.push(name);
            }
        }
    }
    if det_names.is_empty() {
        return;
    }
    // Pass 2: iteration over those names must see a sort in the window.
    for (i, &test) in in_test.iter().enumerate() {
        if test {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
        }) = tokens.get(i)
        else {
            continue;
        };
        if !det_names.contains(&name.as_str()) {
            continue;
        }
        // `for … in [&[mut]] name` — inherently hash-ordered.
        let for_loop = is_ident(tokens, i.wrapping_sub(1), "in")
            || (is_punct(tokens, i.wrapping_sub(1), '&')
                && is_ident(tokens, i.wrapping_sub(2), "in"))
            || (is_ident(tokens, i.wrapping_sub(1), "mut")
                && is_punct(tokens, i.wrapping_sub(2), '&')
                && is_ident(tokens, i.wrapping_sub(3), "in"));
        let method_iter =
            is_punct(tokens, i + 1, '.') && ITER_METHODS.iter().any(|m| is_ident(tokens, i + 2, m));
        if !for_loop && !method_iter {
            continue;
        }
        let sorted_nearby = (i..(i + SORT_WINDOW).min(tokens.len()))
            .any(|k| matches!(&tokens[k].tok, Tok::Ident(s) if s.starts_with("sort")));
        if for_loop || !sorted_nearby {
            findings.push(Finding {
                rule: Rule::OrderedIteration,
                line: *line,
                message: format!(
                    "iteration over Det collection `{name}` feeds output without a nearby sort"
                ),
            });
        }
    }
}
