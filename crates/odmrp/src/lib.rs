//! # ag-odmrp: On-Demand Multicast Routing Protocol
//!
//! A from-scratch implementation of ODMRP (Lee, Gerla, Chiang — WCNC
//! 1999), the *mesh-based* multicast protocol the Anonymous Gossip paper
//! positions against tree-based MAODV in its related work (§2): "the
//! mesh-based protocol ODMRP provides better packet delivery than
//! tree-based protocols but pays an extra cost for mesh maintenance".
//! This crate exists to reproduce that comparison (and to demonstrate
//! the engine's protocol interface carrying a second, structurally
//! different multicast substrate).
//!
//! ## Protocol sketch
//!
//! * While a **source** has data to send it periodically floods a
//!   **Join-Query**; every node records the previous hop (backward
//!   learning) and rebroadcasts once.
//! * A **member** receiving a Join-Query broadcasts a **Join-Reply**
//!   naming its backward next hop toward the source.
//! * A node named as someone's next hop joins the **forwarding group**
//!   (soft state, refreshed by later replies) and propagates its own
//!   Join-Reply upstream — carving a *mesh* of redundant paths.
//! * **Data** is broadcast; forwarding-group nodes rebroadcast
//!   (duplicate-suppressed); members deliver.
//!
//! Redundant mesh paths are why ODMRP tolerates individual link breaks
//! without any explicit repair procedure — and why it costs more
//! transmissions per delivered packet than a tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod messages;
mod protocol;

pub use config::OdmrpConfig;
pub use messages::OdmrpMsg;
pub use protocol::OdmrpProtocol;
