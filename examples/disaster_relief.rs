//! Disaster relief: the paper's motivating application.
//!
//! A search-and-rescue operation covers a 300 m × 300 m collapsed-
//! building site. A coordination team of 12 (one third of the 36
//! deployed radios) must all see every situation report; the remaining
//! radios are relays carried by other workers. People move at walking
//! speeds and pause frequently — the paper's random-waypoint regime.
//!
//! The example runs the *same* seed twice — bare MAODV vs. MAODV +
//! Anonymous Gossip — and prints the per-member delivery side by side,
//! demonstrating the paper's two headline claims: higher delivery and
//! much lower variance across members.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example disaster_relief
//! ```

use ag_harness::{run_gossip, run_maodv, Scenario};
use ag_mobility::Field;
use ag_sim::stats::Summary;

fn main() {
    // 36 radios on the site, walking pace, 60 m radio range.
    let mut sc = Scenario::paper(36, 60.0, 1.5);
    sc.field = Field::new(300.0, 300.0);
    // A 5-minute operation window; reports start after a 1-minute setup.
    let sc = sc.with_duration_secs(300);
    let seed = 7;

    println!(
        "disaster-relief site: {} radios, {} coordinators, {} situation reports\n",
        sc.nodes,
        sc.member_count,
        sc.packets_sent()
    );

    let maodv = run_maodv(&sc, seed);
    let gossip = run_gossip(&sc, seed);

    println!(
        "{:>8} | {:>14} | {:>14} {:>12}",
        "member", "MAODV recv", "AG recv", "(recovered)"
    );
    println!("{}", "-".repeat(58));
    for (m, g) in maodv.members.iter().zip(gossip.members.iter()) {
        assert_eq!(m.node, g.node);
        let tag = if m.node == maodv.source {
            " source"
        } else {
            ""
        };
        println!(
            "{:>8} | {:>14} | {:>14} {:>12}{tag}",
            m.node.to_string(),
            m.received,
            g.received,
            format!("+{}", g.via_gossip),
        );
    }

    let ms: Summary = maodv.received_summary();
    let gs: Summary = gossip.received_summary();
    println!("{}", "-".repeat(58));
    println!(
        "{:>8} | {:>6.0} ± {:<6.0} | {:>6.0} ± {:<6.0}",
        "mean±sd",
        ms.mean(),
        ms.stddev(),
        gs.mean(),
        gs.stddev()
    );
    println!(
        "{:>8} | {:>14} | {:>14}",
        "min..max",
        format!("{:.0}..{:.0}", ms.min(), ms.max()),
        format!("{:.0}..{:.0}", gs.min(), gs.max()),
    );
    println!(
        "\ncoordinators below 90% of reports: MAODV {}, with gossip {}",
        maodv
            .receivers()
            .filter(|m| (m.received as f64) < 0.9 * maodv.sent as f64)
            .count(),
        gossip
            .receivers()
            .filter(|m| (m.received as f64) < 0.9 * gossip.sent as f64)
            .count(),
    );
}
