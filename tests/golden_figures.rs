//! Golden-figure regression: a committed small-seed snapshot of the
//! fig2 sweep (and fig8's goodput series) must be reproduced
//! byte-for-byte by the current build.
//!
//! The snapshots are rendered with exact float bits
//! (`report::render_json` / `{:#?}`), so *any* numeric drift in the
//! kernel, mobility, PHY/MAC, MAODV, gossip or harness layers fails
//! this test — the paper's figures cannot silently shift under a
//! refactor. The new opt-in stress knobs (reception models, churn) are
//! exercised elsewhere; these runs use the default ideal PHY.
//!
//! Intentional changes (documented in EXPERIMENTS.md) refresh the
//! snapshots with `cargo run --release --example regen_golden`.

use ag_harness::figures::{fig2, fig8_par};
use ag_harness::{report, Parallelism};

/// Must match `examples/regen_golden.rs`.
const GOLDEN_SEEDS: u64 = 1;
/// Must match `examples/regen_golden.rs`.
const GOLDEN_SECS: u64 = 30;

#[test]
fn fig2_small_sweep_matches_committed_snapshot() {
    let points = fig2()
        .with_duration_secs(GOLDEN_SECS)
        .run_par(GOLDEN_SEEDS, Parallelism::auto());
    let got = report::render_json(&points);
    let want = include_str!("golden/fig2_small.json");
    assert_eq!(
        got, want,
        "fig2 small-seed sweep diverged from tests/golden/fig2_small.json; \
         if this change is intentional, document it and re-run \
         `cargo run --release --example regen_golden`"
    );
}

#[test]
fn fig8_small_series_matches_committed_snapshot() {
    let series = fig8_par(GOLDEN_SEEDS, GOLDEN_SECS, Parallelism::auto());
    let got = format!("{series:#?}\n");
    let want = include_str!("golden/fig8_small.txt");
    assert_eq!(
        got, want,
        "fig8 goodput series diverged from tests/golden/fig8_small.txt; \
         if this change is intentional, document it and re-run \
         `cargo run --release --example regen_golden`"
    );
}
