//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal shim (see `vendor/README.md`). The derives accept
//! the same syntax as the real macros — including `#[serde(...)]`
//! helper attributes — and expand to nothing; the trait impls are
//! provided by blanket impls in the sibling `serde` shim.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
