//! Perf-trajectory plumbing behind `BENCH_<pr>.json`.
//!
//! The `perf_json` bench target measures a fixed set of *legs* — named
//! workloads spanning the raw scheduler, the full engine, and the
//! cross-protocol stress matrix — and serialises them with this module.
//! The same module powers the CI regression gate: [`compare`] parses a
//! committed baseline file and a freshly measured one and fails on an
//! events/second drop beyond 10 % in any gated leg (the noisy burst
//! microlegs are reported but informational — see
//! [`INFORMATIONAL_LEGS`]).
//!
//! The JSON is hand-rolled on purpose. Each leg is emitted on exactly
//! one line, so [`extract_metrics`] can recover `(name,
//! events_per_sec)` pairs with substring scans — no serde derive
//! machinery in the vendored shim needs to grow for this, and the
//! committed artifact stays diffable line-by-line across PRs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured workload: `events` kernel events dispatched in `secs`
/// wall-clock seconds.
#[derive(Clone, Debug)]
pub struct Leg {
    /// Stable leg name; the regression gate matches legs across files
    /// by this string.
    pub name: String,
    /// Kernel events dispatched (the engine's `events_processed`, or
    /// queue ops for the scheduler micro-legs).
    pub events: u64,
    /// Wall-clock seconds the leg took.
    pub secs: f64,
    /// Heap allocations observed during the leg, when the bench ran
    /// with the `alloc-count` feature (a counting global allocator).
    /// `None` when the feature was off. Unlike the timing figures,
    /// allocation counts are deterministic, so the regression gate
    /// compares them exactly.
    pub allocs: Option<u64>,
}

impl Leg {
    /// Builds a leg from a name, an event count and a wall-clock span.
    pub fn new(name: impl Into<String>, events: u64, secs: f64) -> Self {
        Leg {
            name: name.into(),
            events,
            secs,
            allocs: None,
        }
    }

    /// Attaches an allocation count measured by the counting allocator.
    pub fn with_allocs(mut self, allocs: u64) -> Self {
        self.allocs = Some(allocs);
        self
    }

    /// Events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.events as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Wall-clock nanoseconds per event.
    pub fn ns_per_event(&self) -> f64 {
        if self.events > 0 {
            self.secs * 1e9 / self.events as f64
        } else {
            0.0
        }
    }
}

/// Renders the `BENCH_<pr>.json` document.
///
/// `baseline_eps` maps leg names to the events/second measured for the
/// same leg under the *previous* scheduler (the `BinaryHeap` seed
/// implementation); legs present in the map additionally carry
/// `baseline_eps` and `speedup` fields. Pass an empty map when no
/// baseline comparison is wanted (the CI regression run does).
pub fn render_json(
    pr: u32,
    legs: &[Leg],
    baseline_eps: &BTreeMap<String, f64>,
    rss_kb: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"pr\": {pr},");
    let _ = writeln!(out, "  \"peak_rss_kb\": {rss_kb},");
    out.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"events\": {}, \"secs\": {:.3}, \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}",
            leg.name,
            leg.events,
            leg.secs,
            leg.events_per_sec(),
            leg.ns_per_event(),
        );
        if let Some(allocs) = leg.allocs {
            let per_event = if leg.events > 0 {
                allocs as f64 / leg.events as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                ", \"allocs\": {allocs}, \"allocs_per_event\": {per_event:.4}"
            );
        }
        if let Some(base) = baseline_eps.get(&leg.name) {
            let speedup = if *base > 0.0 {
                leg.events_per_sec() / base
            } else {
                0.0
            };
            let _ = write!(
                out,
                ", \"baseline_eps\": {base:.0}, \"speedup\": {speedup:.2}"
            );
        }
        out.push('}');
        out.push_str(if i + 1 < legs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Recovers `(leg name, events_per_sec)` pairs from a `BENCH_*.json`
/// document produced by [`render_json`]. Relies on the one-line-per-leg
/// layout; lines without both a `"name"` and an `"events_per_sec"` key
/// are skipped.
pub fn extract_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(eps) = field_num(line, "\"events_per_sec\": ") else {
            continue;
        };
        out.push((name.to_string(), eps));
    }
    out
}

/// Recovers `(leg name, allocs)` pairs from a `BENCH_*.json` document.
/// Legs without an `"allocs"` field (runs without the `alloc-count`
/// feature) are skipped.
pub fn extract_allocs(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let Some(allocs) = field_num(line, "\"allocs\": ") else {
            continue;
        };
        out.push((name.to_string(), allocs as u64));
    }
    out
}

/// Recovers the document-level `peak_rss_kb` field from a
/// `BENCH_*.json` document; `None` when absent or zero (platforms
/// without procfs write 0, which means "unmeasured", not "no memory").
pub fn extract_peak_rss_kb(json: &str) -> Option<u64> {
    for line in json.lines() {
        if let Some(v) = field_num(line, "\"peak_rss_kb\": ") {
            return (v > 0.0).then_some(v as u64);
        }
    }
    None
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The leg used to calibrate out machine-speed differences: it drives
/// the *frozen* reference `BinaryHeapQueue` (seed code that never
/// changes), so any speed delta on it between two runs measures the
/// host, not the codebase.
pub const CALIBRATION_LEG: &str = "queue_heap_steady";

/// Legs compared and reported but never failed: the same-instant-burst
/// microlegs spend ~20–90 ns per op, short enough that host frequency
/// state swings their rate by ±30 % *with identical code* (the frozen
/// `queue_heap_dense_ties` leg demonstrates this every run), and no
/// calibration corrects a swing the calibration leg doesn't share. A
/// real scheduler regression still fails the gate through
/// `queue_calendar_steady`, which tracks the calibration leg's workload
/// shape and holds within a few percent run-to-run.
pub const INFORMATIONAL_LEGS: [&str; 2] = ["queue_calendar_dense_ties", "queue_heap_dense_ties"];

/// Headroom the peak-RSS gate allows over the baseline. Peak RSS is
/// *almost* deterministic (same binary, same seeds), but worker-thread
/// stacks, allocator arena pooling and page-level accounting wobble it
/// a few percent between hosts; the regressions worth catching — a
/// struct-of-arrays diet quietly reverted, an index growing a per-node
/// field — are step changes far beyond this margin.
pub const RSS_TOLERANCE: f64 = 0.25;

/// Compares a fresh `BENCH_*.json` against a committed baseline.
///
/// Returns `Ok(report)` when every baseline leg is present in the
/// current run at `>= (1 - tolerance)` of its baseline events/second,
/// and `Err(report)` otherwise. When both files carry the
/// [`CALIBRATION_LEG`], baseline figures are first rescaled by its
/// current/baseline ratio, so a slower CI runner doesn't read as a
/// regression (and a faster one doesn't mask a real regression). Legs
/// new in the current run are reported but never fail the gate (the
/// trajectory is allowed to grow legs); legs *missing* from the
/// current run fail it (a silently dropped workload is not a speedup);
/// [`INFORMATIONAL_LEGS`] are reported with an `info` verdict and never
/// fail on rate (their noise floor sits above any useful tolerance).
pub fn compare(baseline_json: &str, current_json: &str, tolerance: f64) -> Result<String, String> {
    let baseline: BTreeMap<String, f64> = extract_metrics(baseline_json).into_iter().collect();
    let current: BTreeMap<String, f64> = extract_metrics(current_json).into_iter().collect();
    let mut report = String::new();
    let mut failed = false;
    let machine = match (baseline.get(CALIBRATION_LEG), current.get(CALIBRATION_LEG)) {
        (Some(b), Some(c)) if *b > 0.0 && *c > 0.0 => {
            let f = c / b;
            let _ = writeln!(
                report,
                "calibration: this host runs {CALIBRATION_LEG} at {f:.2}x the baseline host"
            );
            f
        }
        _ => 1.0,
    };
    for (name, base) in &baseline {
        if name == CALIBRATION_LEG {
            continue;
        }
        let base = base * machine;
        match current.get(name) {
            None => {
                failed = true;
                let _ = writeln!(report, "FAIL {name}: leg missing from current run");
            }
            Some(now) => {
                let ratio = if base > 0.0 { now / base } else { 1.0 };
                let verdict = if INFORMATIONAL_LEGS.contains(&name.as_str()) {
                    "info"
                } else if ratio < 1.0 - tolerance {
                    failed = true;
                    "FAIL"
                } else {
                    "ok  "
                };
                let _ = writeln!(
                    report,
                    "{verdict} {name}: {now:.0} ev/s vs calibrated baseline {base:.0} ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            let _ = writeln!(report, "new  {name}: no baseline, informational only");
        }
    }
    // Allocation gate: unlike the timing figures, allocation counts are
    // deterministic (same binary, same seeds, same growth pattern), so
    // any increase is a real regression and the compare is exact — no
    // tolerance, no calibration, and the informational legs are held to
    // it too. Legs lacking alloc data on either side (runs without the
    // `alloc-count` feature) are skipped.
    let base_allocs: BTreeMap<String, u64> = extract_allocs(baseline_json).into_iter().collect();
    let cur_allocs: BTreeMap<String, u64> = extract_allocs(current_json).into_iter().collect();
    for (name, base) in &base_allocs {
        if let Some(now) = cur_allocs.get(name) {
            if now > base {
                failed = true;
                let _ = writeln!(report, "FAIL {name}: allocations rose {base} -> {now}");
            } else {
                let _ = writeln!(report, "ok   {name}: allocations {now} (baseline {base})");
            }
        }
    }
    // Peak-RSS gate: catches memory regressions the per-leg figures
    // can't see (the events/second of a run that quietly doubled its
    // resident set looks fine). Gated with [`RSS_TOLERANCE`] headroom;
    // skipped when either side lacks a measurement.
    if let (Some(base), Some(now)) = (
        extract_peak_rss_kb(baseline_json),
        extract_peak_rss_kb(current_json),
    ) {
        let limit = (base as f64 * (1.0 + RSS_TOLERANCE)) as u64;
        if now > limit {
            failed = true;
            let _ = writeln!(
                report,
                "FAIL peak_rss_kb: {now} vs baseline {base} (> +{:.0}%)",
                RSS_TOLERANCE * 100.0
            );
        } else {
            let _ = writeln!(report, "ok   peak_rss_kb: {now} (baseline {base})");
        }
    }
    if failed {
        Err(report)
    } else {
        Ok(report)
    }
}

/// Peak resident-set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without
/// procfs — the field is informational, not gated.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let legs = vec![
            Leg::new("queue_steady", 10_000_000, 0.5),
            Leg::new("engine_beacon", 2_000_000, 4.0),
        ];
        let mut base = BTreeMap::new();
        base.insert("queue_steady".to_string(), 5_000_000.0);
        render_json(6, &legs, &base, 12345)
    }

    #[test]
    fn json_round_trips_through_extract() {
        let json = sample();
        let metrics = extract_metrics(&json);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].0, "queue_steady");
        assert!((metrics[0].1 - 20_000_000.0).abs() < 1.0);
        assert_eq!(metrics[1].0, "engine_beacon");
        assert!((metrics[1].1 - 500_000.0).abs() < 1.0);
        // The baseline_eps key must not confuse the extractor.
        assert!(json.contains("\"baseline_eps\": 5000000"));
        assert!(json.contains("\"speedup\": 4.00"));
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let json = sample();
        let report = compare(&json, &json, 0.10).expect("identical runs must pass");
        assert!(report.contains("ok"));
    }

    #[test]
    fn compare_fails_on_regression() {
        let base = render_json(
            6,
            &[Leg::new("queue_steady", 1_000_000, 1.0)],
            &BTreeMap::new(),
            0,
        );
        let slow = render_json(
            6,
            &[Leg::new("queue_steady", 800_000, 1.0)],
            &BTreeMap::new(),
            0,
        );
        let report = compare(&base, &slow, 0.10).expect_err("20% drop must fail");
        assert!(report.contains("FAIL queue_steady"));
    }

    #[test]
    fn compare_calibrates_out_machine_speed() {
        let legs = |heap: u64, work: u64| {
            render_json(
                6,
                &[
                    Leg::new(CALIBRATION_LEG, heap, 1.0),
                    Leg::new("engine_dense", work, 1.0),
                ],
                &BTreeMap::new(),
                0,
            )
        };
        let base = legs(1_000_000, 2_000_000);
        // Half-speed host, same code: both legs drop together — passes.
        let slow_host = legs(500_000, 1_000_000);
        assert!(compare(&base, &slow_host, 0.10).is_ok());
        // Same host (calibration flat) but the leg dropped 20% — fails.
        let regressed = legs(1_000_000, 1_600_000);
        assert!(compare(&base, &regressed, 0.10).is_err());
    }

    #[test]
    fn compare_fails_on_missing_leg_but_allows_new() {
        let base = render_json(6, &[Leg::new("a", 1, 1.0)], &BTreeMap::new(), 0);
        let cur = render_json(6, &[Leg::new("b", 1, 1.0)], &BTreeMap::new(), 0);
        let report = compare(&base, &cur, 0.10).expect_err("missing leg must fail");
        assert!(report.contains("FAIL a"));
        assert!(report.contains("new  b"));
    }

    #[test]
    fn informational_legs_report_but_never_fail_on_rate() {
        let legs = |ties: u64| {
            render_json(
                6,
                &[
                    Leg::new("queue_calendar_dense_ties", ties, 1.0),
                    Leg::new("engine_dense", 1_000_000, 1.0),
                ],
                &BTreeMap::new(),
                0,
            )
        };
        // A 50% drop on the ties microleg alone: reported, not failed.
        let report = compare(&legs(10_000_000), &legs(5_000_000), 0.10)
            .expect("informational leg must not fail the gate");
        assert!(report.contains("info queue_calendar_dense_ties"));
        // But silently dropping the leg entirely still fails.
        let without = render_json(
            6,
            &[Leg::new("engine_dense", 1_000_000, 1.0)],
            &BTreeMap::new(),
            0,
        );
        let report = compare(&legs(10_000_000), &without, 0.10)
            .expect_err("missing informational leg must still fail");
        assert!(report.contains("FAIL queue_calendar_dense_ties"));
    }

    #[test]
    fn alloc_counts_round_trip_and_gate_exactly() {
        let mk = |allocs: u64| {
            render_json(
                7,
                &[
                    Leg::new("engine_beacon", 1_000_000, 1.0).with_allocs(allocs),
                    Leg::new("queue_steady", 1_000_000, 1.0),
                ],
                &BTreeMap::new(),
                0,
            )
        };
        let base = mk(0);
        assert!(base.contains("\"allocs\": 0, \"allocs_per_event\": 0.0000"));
        // Legs without alloc data carry no alloc fields and are skipped.
        let extracted = extract_allocs(&base);
        assert_eq!(extracted, vec![("engine_beacon".to_string(), 0)]);
        // The timing extractor is not confused by the extra fields.
        assert_eq!(extract_metrics(&base).len(), 2);
        // Equal counts pass; a single extra allocation fails, even with
        // timing identical (exact compare, no tolerance).
        assert!(compare(&base, &mk(0), 0.10).is_ok());
        let report = compare(&base, &mk(1), 0.10).expect_err("one extra allocation must fail");
        assert!(report.contains("FAIL engine_beacon: allocations rose 0 -> 1"));
        // Fewer allocations than baseline pass (that's the diet working).
        assert!(compare(&mk(5), &mk(2), 0.10).is_ok());
        // A baseline without alloc data never trips the gate.
        assert!(compare(
            &mk(5).replace(", \"allocs\": 5, \"allocs_per_event\": 0.0000", ""),
            &mk(9),
            0.10
        )
        .is_ok());
    }

    #[test]
    fn peak_rss_gate_allows_headroom_but_fails_step_changes() {
        let mk = |rss: u64| {
            render_json(
                8,
                &[Leg::new("engine_beacon", 1_000_000, 1.0)],
                &BTreeMap::new(),
                rss,
            )
        };
        assert_eq!(extract_peak_rss_kb(&mk(60_000)), Some(60_000));
        // Zero means "unmeasured" (no procfs), never a baseline of 0 kB.
        assert_eq!(extract_peak_rss_kb(&mk(0)), None);
        // Within the tolerance band: passes.
        assert!(compare(&mk(60_000), &mk(70_000), 0.10).is_ok());
        // A doubling fails even with every leg's timing identical.
        let report = compare(&mk(60_000), &mk(120_000), 0.10).expect_err("rss step must fail");
        assert!(report.contains("FAIL peak_rss_kb"));
        // Unmeasured on either side: the gate stands down.
        assert!(compare(&mk(0), &mk(120_000), 0.10).is_ok());
        assert!(compare(&mk(60_000), &mk(0), 0.10).is_ok());
    }

    #[test]
    fn leg_rates() {
        let leg = Leg::new("x", 1_000_000, 0.5);
        assert!((leg.events_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((leg.ns_per_event() - 500.0).abs() < 1e-6);
        let empty = Leg::new("y", 0, 0.0);
        assert_eq!(empty.events_per_sec(), 0.0);
        assert_eq!(empty.ns_per_event(), 0.0);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
