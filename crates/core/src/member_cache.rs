//! The member cache (§4.3): a bounded buffer of known group members
//! used for *cached gossip*, filled at no extra cost from data packets,
//! gossip replies and route replies.

use ag_net::NodeId;
use ag_sim::SimTime;
use rand::Rng;

/// One cached member: `(node_addr, numhops, last_gossip)` exactly as
/// §4.3 defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The member's address.
    pub node: NodeId,
    /// Shortest observed distance, in hops.
    pub numhops: u8,
    /// Last time this node gossiped with the member ([`SimTime::ZERO`]
    /// if never).
    pub last_gossip: SimTime,
}

/// The bounded member cache with the paper's eviction rule: when full,
/// evict a member that is *farther* than the newcomer; if none is
/// farther, evict the member with the most recent `last_gossip` (to
/// avoid gossiping with the same members repeatedly).
///
/// # Example
///
/// ```
/// use ag_core::MemberCache;
/// use ag_net::NodeId;
/// use ag_sim::SimTime;
///
/// let mut mc = MemberCache::new(10);
/// mc.observe(NodeId::new(3), 2, SimTime::ZERO);
/// assert_eq!(mc.len(), 1);
/// assert_eq!(mc.entries()[0].numhops, 2);
/// ```
#[derive(Debug, Clone)]
pub struct MemberCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
}

impl MemberCache {
    /// Creates a cache holding at most `capacity` members.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "member cache needs capacity");
        MemberCache {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records that `member` was observed `numhops` away at `now`.
    ///
    /// Existing entries keep their `last_gossip` and update `numhops`;
    /// new members enter via the eviction rule above.
    pub fn observe(&mut self, member: NodeId, numhops: u8, now: SimTime) {
        let _ = now;
        if let Some(e) = self.entries.iter_mut().find(|e| e.node == member) {
            e.numhops = numhops;
            return;
        }
        let new = CacheEntry {
            node: member,
            numhops,
            last_gossip: SimTime::ZERO,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(new);
            return;
        }
        // Paper's rule: evict a member with greater numhops…
        if let Some(i) = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.numhops > numhops)
            .max_by_key(|(_, e)| e.numhops)
            .map(|(i, _)| i)
        {
            self.entries[i] = new;
            return;
        }
        // …else the one gossiped with most recently.
        if let Some(i) = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.last_gossip)
            .map(|(i, _)| i)
        {
            self.entries[i] = new;
        }
    }

    /// Records that we just gossiped with `member` at `now` (updates the
    /// anti-repetition timestamp).
    pub fn record_gossip(&mut self, member: NodeId, now: SimTime) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.node == member) {
            e.last_gossip = now;
        }
    }

    /// Picks a uniformly random cached member other than `exclude`,
    /// drawing from a raw RNG. The protocol path goes through
    /// [`MemberCache::pick_via`] instead (so the draw is a named
    /// `ProtoCtx` choice); this convenience remains for benchmarks and
    /// direct library use.
    pub fn pick_random<R: Rng + ?Sized>(&self, rng: &mut R, exclude: NodeId) -> Option<CacheEntry> {
        self.pick_via(exclude, |n| rng.random_range(0..n))
    }

    /// Like [`MemberCache::pick_random`], but the caller supplies the
    /// uniform index draw — a `ProtoCtx::pick_index` named choice, so
    /// the selection is enumerable by the model checker and replayable
    /// by the conformance harness. `choose` runs only when at least one
    /// eligible entry exists, and receives the eligible count.
    pub fn pick_via(
        &self,
        exclude: NodeId,
        choose: impl FnOnce(usize) -> usize,
    ) -> Option<CacheEntry> {
        let eligible: Vec<&CacheEntry> =
            self.entries.iter().filter(|e| e.node != exclude).collect();
        if eligible.is_empty() {
            return None;
        }
        Some(*eligible[choose(eligible.len())])
    }

    /// Drops `member` from the cache (e.g. repeated unreachability).
    pub fn remove(&mut self, member: NodeId) {
        self.entries.retain(|e| e.node != member);
    }

    /// The current entries, in insertion order.
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Number of cached members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no members are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::rng::{SeedSplitter, StreamKind};
    use ag_sim::SimDuration;

    fn id(n: u32) -> NodeId {
        NodeId::new(n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn observe_updates_hops_in_place() {
        let mut mc = MemberCache::new(4);
        mc.observe(id(1), 5, t(0));
        mc.observe(id(1), 2, t(1));
        assert_eq!(mc.len(), 1);
        assert_eq!(mc.entries()[0].numhops, 2);
    }

    #[test]
    fn eviction_prefers_farther_member() {
        let mut mc = MemberCache::new(2);
        mc.observe(id(1), 8, t(0));
        mc.observe(id(2), 3, t(0));
        // Cache full; newcomer at 5 hops evicts the 8-hop member.
        mc.observe(id(3), 5, t(1));
        let nodes: Vec<NodeId> = mc.entries().iter().map(|e| e.node).collect();
        assert!(nodes.contains(&id(2)));
        assert!(nodes.contains(&id(3)));
        assert!(!nodes.contains(&id(1)));
    }

    #[test]
    fn eviction_falls_back_to_most_recent_gossip() {
        let mut mc = MemberCache::new(2);
        mc.observe(id(1), 1, t(0));
        mc.observe(id(2), 1, t(0));
        mc.record_gossip(id(1), t(5));
        mc.record_gossip(id(2), t(9));
        // Newcomer is farther than everyone: evict most recent gossip (2).
        mc.observe(id(3), 4, t(10));
        let nodes: Vec<NodeId> = mc.entries().iter().map(|e| e.node).collect();
        assert!(nodes.contains(&id(1)));
        assert!(nodes.contains(&id(3)));
        assert!(!nodes.contains(&id(2)));
    }

    #[test]
    fn pick_random_excludes_self() {
        let mut mc = MemberCache::new(4);
        mc.observe(id(1), 1, t(0));
        let mut rng = SeedSplitter::new(1).stream(StreamKind::Node, 0);
        assert!(mc.pick_random(&mut rng, id(1)).is_none());
        mc.observe(id(2), 1, t(0));
        for _ in 0..20 {
            assert_eq!(mc.pick_random(&mut rng, id(1)).unwrap().node, id(2));
        }
    }

    #[test]
    fn pick_random_covers_all_entries() {
        let mut mc = MemberCache::new(8);
        for n in 1..=5 {
            mc.observe(id(n), 1, t(0));
        }
        let mut rng = SeedSplitter::new(2).stream(StreamKind::Node, 0);
        let mut seen = ag_sim::hash::DetHashSet::default();
        for _ in 0..200 {
            seen.insert(mc.pick_random(&mut rng, id(99)).unwrap().node);
        }
        assert_eq!(
            seen.len(),
            5,
            "all cached members should be picked eventually"
        );
    }

    #[test]
    fn record_gossip_updates_timestamp() {
        let mut mc = MemberCache::new(2);
        mc.observe(id(1), 1, t(0));
        mc.record_gossip(id(1), t(0) + SimDuration::from_secs(3));
        assert_eq!(mc.entries()[0].last_gossip, t(3));
        // Unknown member: no-op.
        mc.record_gossip(id(9), t(4));
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn remove_drops_entry() {
        let mut mc = MemberCache::new(2);
        mc.observe(id(1), 1, t(0));
        mc.remove(id(1));
        assert!(mc.is_empty());
    }
}
