//! Quickstart: reliable multicast in a 15-node ad-hoc network.
//!
//! Builds the paper's two-phase stack (MAODV multicast + Anonymous
//! Gossip recovery) on a small mobile network, streams packets from one
//! member to the group, and prints what each member actually received
//! and how much of it gossip had to recover.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ag_core::{AgConfig, AnonymousGossip};
use ag_maodv::{GroupId, MaodvConfig, TrafficSource};
use ag_mobility::{Field, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::{SimDuration, SimTime};

fn main() {
    // ── Scenario: 15 nodes in a 200 m × 200 m field, 5 group members. ──
    let n = 15;
    let members: Vec<NodeId> = (0..5).map(NodeId::new).collect();
    let source = members[0];
    let field = Field::paper();
    let seed = 42;
    let splitter = SeedSplitter::new(seed);

    // One member streams 200 64-byte packets, 5 per second.
    let traffic = TrafficSource::compact(
        SimTime::from_secs(30),
        SimDuration::from_millis(200),
        200,
        64,
    );

    let nodes: Vec<NodeSetup<AnonymousGossip>> = (0..n)
        .map(|i| {
            let id = NodeId::new(i);
            let mut place_rng = splitter.stream(StreamKind::Placement, i as u64);
            NodeSetup {
                // Random-waypoint walkers, up to 2 m/s with 0–80 s pauses.
                mobility: Box::new(RandomWaypoint::new(
                    field,
                    SpeedRange::new(0.0, 2.0),
                    PauseRange::paper(),
                    &mut place_rng,
                )),
                protocol: AnonymousGossip::new(
                    AgConfig::paper_default(),
                    MaodvConfig::paper_default(),
                    id,
                    GroupId(0),
                    members.contains(&id),
                    (id == source).then_some(traffic),
                ),
            }
        })
        .collect();

    // ── Run 120 simulated seconds on a 2 Mbps / 75 m radio. ──
    let mut engine = Engine::new(PhyParams::paper_default(75.0), seed, nodes);
    engine.run_until(SimTime::from_secs(120));

    // ── Report. ──
    let sent = traffic.packet_count();
    println!(
        "source {source} multicast {sent} packets to {} members\n",
        members.len()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "member", "received", "via tree", "via gossip", "goodput"
    );
    for &m in &members {
        let p = engine.protocol(m);
        let d = p.delivery();
        let goodput = p
            .metrics()
            .goodput_percent()
            .map_or("n/a".to_string(), |g| format!("{g:.1}%"));
        let tag = if m == source { " (source)" } else { "" };
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>10}{tag}",
            m.to_string(),
            d.distinct(),
            d.via_tree(),
            d.via_gossip(),
            goodput
        );
    }
    println!(
        "\nengine: {} frames broadcast, {} collisions observed",
        engine.counters().get("mac.broadcast_tx"),
        engine.counters().get("mac.rx_collision")
    );
}
