//! # ag-lint — workspace-native static analysis
//!
//! Machine-checks the source disciplines every deterministic result in
//! this repo rests on: byte-identical golden figures, `AG_THREADS`
//! invariance, the grid≡brute differential and the exact-integer
//! zero-allocation gate all assume that *nobody* re-introduces a
//! default-hasher map, a wall-clock read, an ad-hoc RNG seed or a
//! hot-path allocation. Those rules used to live in ARCHITECTURE.md
//! prose; this crate makes them executable, the same move the model
//! checker (`ag-check`) made for protocol logic.
//!
//! The scanner is a hand-rolled lexer ([`lexer`]) feeding token-pattern
//! rules ([`rules`]) under a policy table ([`config`]) — no AST, no
//! dependencies, so the gate itself can never rot behind a toolchain or
//! crates.io change. It ships three ways, so it cannot be forgotten:
//!
//! 1. `cargo run -p ag-lint` — the binary, exit 1 on any finding;
//! 2. a self-run inside `cargo test` asserting the workspace is clean;
//! 3. a fixture corpus asserting every rule still *fires* on the bug
//!    shape it was built to catch (including PR 7's `RandomState` bug).
//!
//! See `docs/LINTS.md` for every rule, its motivating PR, the waiver
//! syntax and the extension recipe.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use rules::{scan_file, Finding};

/// One finding tagged with the file it occurred in.
#[derive(Debug)]
pub struct FileFinding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The finding itself.
    pub finding: Finding,
}

/// The result of scanning a whole source tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line).
    pub findings: Vec<FileFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Well-formed waivers found across the tree.
    pub waivers_present: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_used: usize,
}

impl Report {
    /// True when no rule fired anywhere.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as the text the binary prints and CI uploads:
    /// one `file:line: [rule] message` block per finding with its fix
    /// hint, then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}",
                f.path,
                f.finding.line,
                f.finding.rule.name(),
                f.finding.message
            );
            let _ = writeln!(out, "    hint: {}", f.finding.rule.hint());
        }
        let _ = writeln!(
            out,
            "ag-lint: {} finding(s) · {} file(s) scanned · {} waiver(s) ({} active)",
            self.findings.len(),
            self.files_scanned,
            self.waivers_present,
            self.waivers_used,
        );
        out
    }
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// Workspace-relative path prefixes never scanned: the fixture corpus
/// exists to contain violations.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Scans every `.rs` file under `root` (the workspace checkout) against
/// the given config. Files are visited in sorted order so the report is
/// deterministic.
pub fn run_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let scan = scan_file(&rel, &src, cfg);
        report.files_scanned += 1;
        report.waivers_present += scan.waivers_present;
        report.waivers_used += scan.waivers_used;
        report
            .findings
            .extend(scan.findings.into_iter().map(|finding| FileFinding {
                path: rel.clone(),
                finding,
            }));
    }
    Ok(report)
}

/// Recursively collects workspace-relative `.rs` paths.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let rel = path
            .strip_prefix(root)
            .expect("entry under root")
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || SKIP_PREFIXES.iter().any(|p| rel == *p) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
