//! The §5.1 simulation environment, parameterized by the paper's three
//! sweep knobs (transmission range, maximum speed, node count).

use ag_core::{AgConfig, AnonymousGossip};
use ag_maodv::{GroupId, MaodvConfig, MaodvProtocol, TrafficSource};
use ag_mobility::{Field, Mobility, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::{ChurnParams, Engine, NodeId, NodeSetup, PhyParams, Protocol, ReceptionModel};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::result::{MemberStats, RunResult};

/// Which protocol stack a run uses (the paper's two series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Bare MAODV (baseline).
    Maodv,
    /// MAODV + Anonymous Gossip.
    Gossip,
    /// Bare ODMRP (the mesh-based related-work comparison, §2).
    Odmrp,
}

/// A complete experiment configuration.
///
/// [`Scenario::paper`] gives the §5.1 defaults; the figure specs mutate
/// one knob at a time.
///
/// # Example
///
/// ```
/// use ag_harness::{Scenario, run_gossip};
/// let sc = Scenario::paper(10, 75.0, 0.2).with_duration_secs(40);
/// let result = run_gossip(&sc, 1);
/// assert_eq!(result.members.len(), 3); // a third of 10, rounded down, min 2
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Total node count (paper default 40).
    pub nodes: usize,
    /// Group size (paper: one third of the nodes).
    pub member_count: usize,
    /// Transmission range in metres.
    pub range_m: f64,
    /// Minimum node speed, m/s (paper: 0).
    pub min_speed: f64,
    /// Maximum node speed, m/s.
    pub max_speed: f64,
    /// Field dimensions (paper: 200 m × 200 m).
    pub field: Field,
    /// Total simulated time (paper: 600 s).
    pub sim_time: SimTime,
    /// The CBR source description.
    pub traffic: TrafficSource,
    /// Gossip parameters.
    pub ag: AgConfig,
    /// MAODV parameters.
    pub maodv: MaodvConfig,
    /// Use the engine's grid spatial index (`true`, default) or the
    /// brute-force receiver/collision scans (`false`; differential
    /// testing and scaling baselines only — results are identical).
    pub spatial_index: bool,
    /// Channel reception model ([`ReceptionModel::Ideal`] — the
    /// paper's channel — by default; see [`Scenario::with_reception`]).
    pub reception: ReceptionModel,
    /// Per-node radio fail/recover churn (`None` — the paper's always-
    /// on nodes — by default; see [`Scenario::with_churn`]).
    pub churn: Option<ChurnParams>,
}

impl Scenario {
    /// The paper's environment with the given node count, transmission
    /// range and maximum speed. Members are a third of the nodes
    /// (minimum 2); the first member is the source; traffic is 64-byte
    /// packets every 200 ms from 120 s to 560 s (2201 packets).
    pub fn paper(nodes: usize, range_m: f64, max_speed: f64) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        Scenario {
            nodes,
            member_count: (nodes / 3).max(2),
            range_m,
            min_speed: 0.0,
            max_speed,
            field: Field::paper(),
            sim_time: SimTime::from_secs(600),
            traffic: TrafficSource::paper(),
            ag: AgConfig::paper_default(),
            maodv: MaodvConfig::paper_default(),
            spatial_index: true,
            reception: ReceptionModel::Ideal,
            churn: None,
        }
    }

    /// The paper's environment on a *lossy* channel: a distance-graded
    /// packet-error rate reaching `edge_per` at the edge of the
    /// transmission range. This is the cheapest way to make the network
    /// hostile — the regime where anonymous gossip's recovery is
    /// supposed to earn its keep.
    pub fn lossy(nodes: usize, range_m: f64, max_speed: f64, edge_per: f64) -> Self {
        Scenario::paper(nodes, range_m, max_speed)
            .with_reception(ReceptionModel::DistanceGraded { edge_per })
    }

    /// A "city-scale" environment far beyond the paper's 40 nodes:
    /// 100 m radio range, up to 5 m/s vehicular-ish speeds, a
    /// 4 %-of-nodes multicast group (minimum 2), and a square field
    /// sized to hold 500 nodes per km². Up to 500 nodes that is the
    /// original 1 km × 1 km square (so historical outputs are
    /// unchanged); beyond it the field grows with the population, so a
    /// metropolis run is *more city* — constant local density,
    /// neighbour counts and contention — rather than an ever-denser
    /// square kilometre. Only tractable with the grid spatial index;
    /// see `examples/city_scale.rs` and the `scaling` bench.
    pub fn city_scale(nodes: usize) -> Self {
        let mut sc = Scenario::paper(nodes, 100.0, 5.0);
        let side = 1000.0 * (nodes as f64 / 500.0).sqrt().max(1.0);
        sc.field = Field::new(side, side);
        // Group size tracks the city up to a point: a multicast group
        // is a social artifact, not a fraction of the metropolis, and
        // an unbounded group makes every GRPH flood touch O(nodes)
        // members. 64 keeps the paper's 500-node case unchanged (20)
        // while holding million-node runs to a constant per-flood cost.
        sc.member_count = (nodes / 25).clamp(2, 64);
        sc
    }

    /// Returns a copy on a different field (the paper fixes 200 m ×
    /// 200 m; larger workloads want more room).
    pub fn with_field(mut self, field: Field) -> Self {
        self.field = field;
        self
    }

    /// Returns a copy selecting the grid-indexed (`true`) or
    /// brute-force (`false`) engine lookup path.
    pub fn with_spatial_index(mut self, enabled: bool) -> Self {
        self.spatial_index = enabled;
        self
    }

    /// Returns a copy on a different reception model (the default,
    /// [`ReceptionModel::Ideal`], reproduces the paper's channel).
    pub fn with_reception(mut self, model: ReceptionModel) -> Self {
        self.reception = model;
        self
    }

    /// Returns a copy with per-node radio churn: exponential up/down
    /// periods with the given means in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless both means are strictly positive and finite.
    pub fn with_churn(mut self, mean_up_secs: f64, mean_down_secs: f64) -> Self {
        self.churn = Some(ChurnParams::new(mean_up_secs, mean_down_secs));
        self
    }

    /// Rescales the run to `secs` seconds, keeping the paper's
    /// proportions: warm-up is the first 20 % and the source stops at
    /// 93.3 % of the run, with the packet interval unchanged. Use for
    /// tests and benches.
    pub fn with_duration_secs(mut self, secs: u64) -> Self {
        self.sim_time = SimTime::from_secs(secs);
        self.traffic = TrafficSource {
            start: SimTime::from_secs(secs / 5),
            end: SimTime::from_secs(secs * 14 / 15),
            interval: self.traffic.interval,
            payload_len: self.traffic.payload_len,
        };
        self
    }

    /// Number of data packets the source will emit.
    pub fn packets_sent(&self) -> u64 {
        self.traffic.packet_count()
    }

    /// The member node ids for a given seed (uniform distinct choice;
    /// the first is the source).
    pub fn members_for_seed(&self, seed: u64) -> Vec<NodeId> {
        let mut rng = SeedSplitter::new(seed).stream(StreamKind::Scenario, 0);
        let mut picked: Vec<usize> = Vec::with_capacity(self.member_count);
        // Dense membership flags instead of a `picked.contains` scan:
        // same accept/reject sequence (the predicate is identical), so
        // the RNG draws — and thus every committed result — are
        // unchanged, but a metropolis-scale group no longer costs
        // O(members²).
        let mut is_picked = vec![false; self.nodes];
        while picked.len() < self.member_count.min(self.nodes) {
            let c = rng.random_range(0..self.nodes);
            if !is_picked[c] {
                is_picked[c] = true;
                picked.push(c);
            }
        }
        picked.into_iter().map(|i| NodeId::new(i as u32)).collect()
    }

    fn mobility_for(&self, seed: u64, node: usize) -> Box<dyn Mobility> {
        let mut rng = SeedSplitter::new(seed).stream(StreamKind::Placement, node as u64);
        Box::new(RandomWaypoint::new(
            self.field,
            SpeedRange::new(self.min_speed, self.max_speed.max(1e-3)),
            PauseRange::paper(),
            &mut rng,
        ))
    }

    fn phy(&self) -> PhyParams {
        let mut phy = PhyParams::paper_default(self.range_m)
            .with_spatial_index(self.spatial_index)
            .with_reception(self.reception);
        if let Some(churn) = self.churn {
            phy = phy.with_churn(churn);
        }
        phy
    }
}

/// The group id used throughout (single-group scenarios, as in §5.1).
pub const GROUP: GroupId = GroupId(0);

fn build_engine<P, F>(sc: &Scenario, seed: u64, mut make: F) -> (Engine<P>, Vec<NodeId>, NodeId)
where
    P: Protocol,
    F: FnMut(NodeId, bool, Option<TrafficSource>) -> P,
{
    let members = sc.members_for_seed(seed);
    let source = members[0];
    // Dense membership flags: `members.contains` per node is an
    // O(n × members) setup cost that dominates start-up at city scale.
    let mut member_flags = vec![false; sc.nodes];
    for m in &members {
        member_flags[m.index()] = true;
    }
    let nodes = (0..sc.nodes)
        .map(|i| {
            let id = NodeId::new(i as u32);
            let is_member = member_flags[i];
            let traffic = (id == source).then_some(sc.traffic);
            NodeSetup {
                mobility: sc.mobility_for(seed, i),
                protocol: make(id, is_member, traffic),
            }
        })
        .collect();
    let mut engine = Engine::new(sc.phy(), seed, nodes);
    // Arm the engine's tile-sharded receiver precompute with the same
    // AG_THREADS knob the multi-seed pool honors. Results are
    // bit-identical for every thread count (the engine validates every
    // precomputed set against its mutation stamps before use), so this
    // is purely a wall-clock lever; it only engages when enough
    // transmissions are live at once, i.e. at city/metropolis scale —
    // paper-scale runs never reach the batch floor.
    engine.set_threads(crate::parallel::Parallelism::auto().threads());
    (engine, members, source)
}

/// Runs the gossip stack (MAODV + AG) once. Deterministic in
/// `(scenario, seed)`.
pub fn run_gossip(sc: &Scenario, seed: u64) -> RunResult {
    run_gossip_counting(sc, seed).0
}

/// [`run_gossip`], also reporting the kernel events the engine
/// dispatched (the `BENCH_<pr>.json` events/second numerator). The
/// [`RunResult`] is identical to [`run_gossip`]'s.
pub fn run_gossip_counting(sc: &Scenario, seed: u64) -> (RunResult, u64) {
    let (mut engine, members, source) = build_engine(sc, seed, |id, member, traffic| {
        AnonymousGossip::new(sc.ag, sc.maodv, id, GROUP, member, traffic)
    });
    engine.run_until(sc.sim_time);
    let events = engine.events_processed();
    let member_stats = members
        .iter()
        .map(|&m| {
            let p = engine.protocol(m);
            MemberStats {
                node: m,
                received: p.delivery().distinct(),
                via_tree: p.delivery().via_tree(),
                via_gossip: p.delivery().via_gossip(),
                goodput_percent: p.metrics().goodput_percent(),
                gossip_rounds: p.metrics().rounds_total(),
            }
        })
        .collect();
    let result = RunResult {
        protocol: ProtocolKind::Gossip,
        seed,
        source,
        sent: sc.packets_sent(),
        members: member_stats,
        counters: engine
            .counters()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    (result, events)
}

/// Runs the bare-MAODV baseline once. Deterministic in
/// `(scenario, seed)`.
pub fn run_maodv(sc: &Scenario, seed: u64) -> RunResult {
    run_maodv_counting(sc, seed).0
}

/// [`run_maodv`], also reporting the kernel events the engine
/// dispatched. The [`RunResult`] is identical to [`run_maodv`]'s.
pub fn run_maodv_counting(sc: &Scenario, seed: u64) -> (RunResult, u64) {
    let (mut engine, members, source) = build_engine(sc, seed, |id, member, traffic| {
        MaodvProtocol::new(sc.maodv, id, GROUP, member, traffic)
    });
    engine.run_until(sc.sim_time);
    let events = engine.events_processed();
    let member_stats = members
        .iter()
        .map(|&m| {
            let p = engine.protocol(m);
            MemberStats {
                node: m,
                received: p.delivery().distinct(),
                via_tree: p.delivery().via_tree(),
                via_gossip: 0,
                goodput_percent: None,
                gossip_rounds: 0,
            }
        })
        .collect();
    let result = RunResult {
        protocol: ProtocolKind::Maodv,
        seed,
        source,
        sent: sc.packets_sent(),
        members: member_stats,
        counters: engine
            .counters()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    (result, events)
}

/// Runs the bare-ODMRP mesh baseline once (the related-work comparison
/// point of the paper's §2). Deterministic in `(scenario, seed)`.
pub fn run_odmrp(sc: &Scenario, seed: u64) -> RunResult {
    run_odmrp_counting(sc, seed).0
}

/// [`run_odmrp`], also reporting the kernel events the engine
/// dispatched. The [`RunResult`] is identical to [`run_odmrp`]'s.
pub fn run_odmrp_counting(sc: &Scenario, seed: u64) -> (RunResult, u64) {
    let (mut engine, members, source) = build_engine(sc, seed, |id, member, traffic| {
        ag_odmrp::OdmrpProtocol::new(
            ag_odmrp::OdmrpConfig::default_paper(),
            id,
            GROUP,
            member,
            traffic,
        )
    });
    engine.run_until(sc.sim_time);
    let events = engine.events_processed();
    let member_stats = members
        .iter()
        .map(|&m| {
            let p = engine.protocol(m);
            MemberStats {
                node: m,
                received: p.delivery().distinct(),
                via_tree: p.delivery().via_tree(),
                via_gossip: 0,
                goodput_percent: None,
                gossip_rounds: 0,
            }
        })
        .collect();
    let result = RunResult {
        protocol: ProtocolKind::Odmrp,
        seed,
        source,
        sent: sc.packets_sent(),
        members: member_stats,
        counters: engine
            .counters()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    (result, events)
}

/// Runs the requested protocol stack once.
pub fn run(sc: &Scenario, seed: u64, kind: ProtocolKind) -> RunResult {
    match kind {
        ProtocolKind::Maodv => run_maodv(sc, seed),
        ProtocolKind::Gossip => run_gossip(sc, seed),
        ProtocolKind::Odmrp => run_odmrp(sc, seed),
    }
}

/// [`run`], also reporting the kernel events the engine dispatched —
/// the benchmark harness uses this to turn stress-matrix cells into
/// events/second legs in `BENCH_<pr>.json`.
pub fn run_counting(sc: &Scenario, seed: u64, kind: ProtocolKind) -> (RunResult, u64) {
    match kind {
        ProtocolKind::Maodv => run_maodv_counting(sc, seed),
        ProtocolKind::Gossip => run_gossip_counting(sc, seed),
        ProtocolKind::Odmrp => run_odmrp_counting(sc, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::SimDuration;

    #[test]
    fn paper_scenario_defaults() {
        let sc = Scenario::paper(40, 75.0, 0.2);
        assert_eq!(sc.member_count, 13);
        assert_eq!(sc.packets_sent(), 2201);
        assert_eq!(sc.sim_time, SimTime::from_secs(600));
    }

    #[test]
    fn scaled_scenario_shrinks_traffic() {
        let sc = Scenario::paper(40, 75.0, 0.2).with_duration_secs(60);
        assert_eq!(sc.sim_time, SimTime::from_secs(60));
        assert_eq!(sc.traffic.start, SimTime::from_secs(12));
        assert_eq!(sc.traffic.end, SimTime::from_secs(56));
        assert!(sc.packets_sent() < 2201);
        assert_eq!(sc.traffic.interval, SimDuration::from_millis(200));
    }

    #[test]
    fn member_selection_is_deterministic_and_distinct() {
        let sc = Scenario::paper(40, 75.0, 0.2);
        let a = sc.members_for_seed(7);
        let b = sc.members_for_seed(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 13);
        // Different seeds give different groups (overwhelmingly likely).
        assert_ne!(sc.members_for_seed(7), sc.members_for_seed(8));
    }

    #[test]
    fn small_scenario_runs_both_protocols() {
        let sc = Scenario::paper(10, 90.0, 0.2).with_duration_secs(50);
        let g = run_gossip(&sc, 1);
        let m = run_maodv(&sc, 1);
        assert_eq!(g.protocol, ProtocolKind::Gossip);
        assert_eq!(m.protocol, ProtocolKind::Maodv);
        assert_eq!(g.members.len(), m.members.len());
        assert_eq!(g.source, m.source);
        // The source itself always holds everything it sent.
        let src_stats = g.members.iter().find(|s| s.node == g.source).unwrap();
        assert_eq!(src_stats.received, g.sent);
    }

    #[test]
    fn paper_scenario_defaults_to_ideal_channel() {
        let sc = Scenario::paper(10, 75.0, 0.2);
        assert!(sc.reception.is_ideal());
        assert!(sc.churn.is_none());
    }

    #[test]
    fn lossy_channel_reduces_delivery() {
        // Identical scenario and seed; a harsh edge PER must not help.
        let ideal = Scenario::paper(10, 75.0, 0.5).with_duration_secs(60);
        let lossy = Scenario::lossy(10, 75.0, 0.5, 0.9).with_duration_secs(60);
        let a = run_gossip(&ideal, 2);
        let b = run_gossip(&lossy, 2);
        assert!(
            b.received_summary().mean() <= a.received_summary().mean(),
            "lossy {} must not beat ideal {}",
            b.received_summary().mean(),
            a.received_summary().mean()
        );
        assert!(b.counter("mac.rx_channel_drop") > 0);
        assert_eq!(a.counter("mac.rx_channel_drop"), 0);
    }

    #[test]
    fn churny_scenario_runs_all_three_protocols_deterministically() {
        let sc = Scenario::paper(9, 90.0, 1.0)
            .with_duration_secs(50)
            .with_churn(20.0, 5.0);
        for kind in [
            ProtocolKind::Gossip,
            ProtocolKind::Maodv,
            ProtocolKind::Odmrp,
        ] {
            let a = run(&sc, 4, kind);
            let b = run(&sc, 4, kind);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{kind:?} diverged");
            assert!(a.counter("churn.fail") > 0, "{kind:?} never churned");
        }
    }

    #[test]
    fn identical_seeds_identical_results() {
        let sc = Scenario::paper(8, 90.0, 1.0).with_duration_secs(40);
        let a = run_gossip(&sc, 3);
        let b = run_gossip(&sc, 3);
        let fa: Vec<_> = a
            .members
            .iter()
            .map(|m| (m.node, m.received, m.via_gossip))
            .collect();
        let fb: Vec<_> = b
            .members
            .iter()
            .map(|m| (m.node, m.received, m.via_gossip))
            .collect();
        assert_eq!(fa, fb);
    }
}
