//! Regression test for the engine's zero-allocation steady state.
//!
//! Only built under the `alloc-count` feature (`cargo test -p ag-bench
//! --features alloc-count --test zero_alloc`): installs the counting
//! global allocator and asserts that a warmed-up beacon engine
//! dispatches ≥ 10 000 further events without a single heap
//! allocation. This turns the PR 7 allocation diet from a one-time
//! measurement into a checked invariant — any future per-event `Vec`,
//! clone of a heap-backed payload, or dropped scratch buffer fails the
//! suite deterministically.

#![cfg(feature = "alloc-count")]

use ag_bench::alloc::CountingAllocator;
use ag_bench::dense_engine;
use ag_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn steady_state_beacon_run_allocates_nothing() {
    // The dense engine: 250 nodes beaconing every 100 ms on a small
    // field, spatial index on — the same workload as the
    // `engine_dense_250` perf leg. 30 simulated seconds of warm-up
    // brings every scratch buffer, MAC queue, calendar-queue bucket and
    // spatial-index cell to its high-water capacity.
    let mut engine = dense_engine(250, 1);
    engine.run_until(SimTime::from_secs(30));

    let e0 = engine.events_processed();
    let a0 = ALLOC.count();
    let mut sim_secs = 30;
    while engine.events_processed() - e0 < 10_000 {
        sim_secs += 1;
        engine.run_until(SimTime::from_secs(sim_secs));
    }
    let events = engine.events_processed() - e0;
    let allocs = ALLOC.count() - a0;
    assert_eq!(
        allocs, 0,
        "steady-state engine performed {allocs} heap allocations over {events} events"
    );
}
