//! Micro-benchmarks for the kernel and protocol data structures on the
//! hot path: the event queue, duplicate-suppression caches, the gossip
//! tables and mobility sampling.

use ag_core::{HistoryTable, LostTable, MemberCache, PacketId, PacketRecord};
use ag_maodv::seen::SeenCache;
use ag_mobility::{Field, Mobility, PauseRange, RandomWaypoint, SpeedRange};
use ag_net::NodeId;
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::stats::Summary;
use ag_sim::{EventQueue, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                // Scatter times across the calendar's day buckets so
                // pops walk the ring instead of draining one bucket.
                q.schedule(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

fn seen_cache(c: &mut Criterion) {
    c.bench_function("seen_cache_insert_1k", |b| {
        b.iter(|| {
            let mut s: SeenCache<(u32, u32)> = SeenCache::new(512);
            for i in 0..1000u32 {
                black_box(s.insert((i % 600, i / 3)));
            }
        });
    });
}

fn gossip_tables(c: &mut Criterion) {
    let origin = NodeId::new(1);
    c.bench_function("lost_table_observe_gappy_1k", |b| {
        b.iter(|| {
            let mut lt = LostTable::new(200);
            for i in 0..1000u32 {
                // Every 7th packet "lost": arrivals skip it.
                if i % 7 != 0 {
                    lt.observe(origin, i);
                }
            }
            black_box(lt.lost_buffer(10))
        });
    });
    c.bench_function("history_table_push_get_1k", |b| {
        b.iter(|| {
            let mut h = HistoryTable::new(100);
            for i in 0..1000u32 {
                h.push(PacketRecord {
                    id: PacketId::new(origin, i),
                    payload_len: 64,
                });
            }
            black_box(h.get(&PacketId::new(origin, 950)).copied())
        });
    });
    c.bench_function("member_cache_observe_pick", |b| {
        let mut rng = SeedSplitter::new(9).stream(StreamKind::Node, 0);
        b.iter(|| {
            let mut mc = MemberCache::new(10);
            for i in 0..64u32 {
                mc.observe(NodeId::new(i), (i % 9) as u8 + 1, SimTime::ZERO);
            }
            black_box(mc.pick_random(&mut rng, NodeId::new(0)))
        });
    });
}

fn mobility(c: &mut Criterion) {
    c.bench_function("waypoint_advance_600s", |b| {
        let splitter = SeedSplitter::new(3);
        b.iter(|| {
            let mut rng = splitter.stream(StreamKind::Mobility, 0);
            let mut m = RandomWaypoint::new(
                Field::paper(),
                SpeedRange::new(0.0, 10.0),
                PauseRange::paper(),
                &mut rng,
            );
            let end = SimTime::from_secs(600);
            while m.next_transition() < end {
                let t = m.next_transition();
                m.transition(t, &mut rng);
            }
            black_box(m.position(end))
        });
    });
}

fn stats(c: &mut Criterion) {
    c.bench_function("summary_record_10k", |b| {
        b.iter(|| {
            let mut s = Summary::new();
            for i in 0..10_000 {
                s.record((i % 997) as f64);
            }
            black_box((s.mean(), s.variance()))
        });
    });
}

fn small_engine(c: &mut Criterion) {
    // The fundamental cost unit of every experiment: one simulated
    // second of a 20-node gossip network.
    c.bench_function("engine_20_nodes_1s_sim", |b| {
        let sc = ag_bench::bench_scenario(75.0, 1.0);
        b.iter(|| black_box(ag_harness::run_gossip(&sc, 1).delivery_ratio()));
    });
    let _ = SimDuration::ZERO;
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(2));
    targets = event_queue, seen_cache, gossip_tables, mobility, stats, small_engine
}
criterion_main!(benches);
