//! The full Anonymous Gossip node stack.
//!
//! [`AnonymousGossip`] composes a [`Maodv`] routing instance (phase one:
//! unreliable tree multicast) with the gossip recovery layer (phase
//! two), exactly mirroring the paper's layering: "AG is implemented over
//! MAODV without much overhead" and could wrap any multicast protocol
//! exposing the same hooks.

use std::sync::Arc;

use ag_maodv::delivery::{DeliveryLog, DeliveryPath};
use ag_maodv::{
    GroupId, Maodv, MaodvConfig, MaodvCtx, MaodvMsg, TrafficSource, Upcall, TIMER_USER_BASE,
};
use ag_net::{NodeId, Protocol, RxKind, TimerKey};
use ag_sim::{SimDuration, SimTime};

use crate::message::{AgMsg, GossipReply, GossipRequest, PacketId, PacketRecord};
use crate::{AgConfig, GossipMetrics, HistoryTable, LostTable, MemberCache};

/// Timer: one gossip round (paper: every second per member).
const TIMER_GOSSIP: TimerKey = TIMER_USER_BASE;
/// Timer: CBR traffic source.
const TIMER_TRAFFIC: TimerKey = TIMER_USER_BASE + 1;

/// Picks a next hop from `(node, nearest_member)` candidates, weighting
/// toward smaller member distances with weight `1 / nearest_member`
/// (§4.2), or uniformly when `locality` is off.
///
/// The selection is a single [`ProtoCtx`] named choice
/// ([`ProtoCtx::pick_weighted`] / [`ProtoCtx::pick_index`]), so the
/// engine draws exactly the values the pre-facade code drew while the
/// model checker enumerates every candidate.
fn weighted_pick<C: MaodvCtx<AgMsg>>(
    candidates: &[(NodeId, u8)],
    locality: bool,
    ctx: &mut C,
) -> Option<NodeId> {
    if candidates.is_empty() {
        return None;
    }
    let picked = if locality {
        let weight = |i: usize| 1.0 / f64::from(candidates[i].1.max(1));
        ctx.pick_weighted(candidates.len(), weight)
    } else {
        ctx.pick_index(candidates.len())
    };
    Some(candidates[picked].0)
}

/// Chooses what a member puts into a gossip reply (§4.4 pull):
/// everything the initiator explicitly listed as lost (and that is still
/// in the history table), then *tail recovery* — the oldest history
/// packets at or past the initiator's expected sequence number per
/// origin, capped at `tail_recovery_max`, which reaches the packets the
/// initiator has seen nothing after and so cannot name. The total is
/// bounded by `reply_max_packets`.
pub(crate) fn select_reply_packets(
    history: &HistoryTable,
    r: &GossipRequest,
    cfg: &AgConfig,
) -> Vec<PacketRecord> {
    let mut packets: Vec<PacketRecord> = Vec::new();
    for id in &r.lost {
        if packets.len() >= cfg.reply_max_packets {
            break;
        }
        if let Some(rec) = history.get(id) {
            packets.push(*rec);
        }
    }
    for &(origin, expected) in &r.expected {
        if packets.len() >= cfg.reply_max_packets {
            break;
        }
        let mut tail: Vec<PacketRecord> = history
            .iter()
            .filter(|p| p.id.origin == origin && p.id.seq >= expected)
            .copied()
            .collect();
        tail.sort_by_key(|p| p.id.seq);
        for rec in tail.into_iter().take(cfg.tail_recovery_max) {
            if packets.len() >= cfg.reply_max_packets {
                break;
            }
            if !packets.iter().any(|p| p.id == rec.id) {
                packets.push(rec);
            }
        }
    }
    packets
}

/// One node running MAODV + Anonymous Gossip (+ optionally the paper's
/// CBR source). This is the crate's primary public type.
///
/// # Example
///
/// ```
/// use ag_core::{AnonymousGossip, AgConfig};
/// use ag_maodv::{GroupId, MaodvConfig, TrafficSource};
/// use ag_net::{Engine, NodeSetup, NodeId, PhyParams};
/// use ag_mobility::{Stationary, Vec2};
/// use ag_sim::{SimTime, SimDuration};
///
/// let ag = AgConfig::paper_default();
/// let mv = MaodvConfig::paper_default();
/// let g = GroupId(0);
/// let src = TrafficSource::compact(SimTime::from_secs(30), SimDuration::from_millis(200), 20, 64);
/// let nodes = vec![
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
///         protocol: AnonymousGossip::new(ag, mv, NodeId::new(0), g, true, Some(src)),
///     },
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(40.0, 0.0))),
///         protocol: AnonymousGossip::new(ag, mv, NodeId::new(1), g, true, None),
///     },
/// ];
/// let mut e = Engine::new(PhyParams::paper_default(75.0), 3, nodes);
/// e.run_until(SimTime::from_secs(40));
/// assert_eq!(e.protocol(NodeId::new(1)).delivery().distinct(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct AnonymousGossip {
    cfg: AgConfig,
    maodv: Maodv<AgMsg>,
    delivery: DeliveryLog,
    lost: LostTable,
    history: HistoryTable,
    cache: MemberCache,
    metrics: GossipMetrics,
    traffic: Option<TrafficSource>,
    /// Reused per-delivery upcall buffer (engine callbacks fire once per
    /// received frame/timer; a fresh `Vec` each time was a steady-state
    /// allocation).
    up_scratch: Vec<Upcall<AgMsg>>,
    /// Reused `(node, nearest_member)` candidate buffer for
    /// [`weighted_pick`].
    cand_scratch: Vec<(NodeId, u8)>,
}

impl AnonymousGossip {
    /// Creates a node. `traffic` makes it the group's CBR source.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`AgConfig::validate`].
    pub fn new(
        cfg: AgConfig,
        maodv_cfg: MaodvConfig,
        id: NodeId,
        group: GroupId,
        is_member: bool,
        traffic: Option<TrafficSource>,
    ) -> Self {
        cfg.validate();
        AnonymousGossip {
            maodv: Maodv::new(maodv_cfg, id, group, is_member),
            delivery: DeliveryLog::new(),
            lost: LostTable::new(cfg.lost_table_capacity),
            history: HistoryTable::new(cfg.history_capacity),
            cache: MemberCache::new(cfg.member_cache_capacity),
            metrics: GossipMetrics::new(),
            traffic,
            up_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            cfg,
        }
    }

    // ───────────────────────── accessors ─────────────────────────

    /// Distinct packets delivered to this member (tree + gossip).
    pub fn delivery(&self) -> &DeliveryLog {
        &self.delivery
    }

    /// This node's gossip activity counters (goodput etc.).
    pub fn metrics(&self) -> &GossipMetrics {
        &self.metrics
    }

    /// The underlying MAODV state.
    pub fn maodv(&self) -> &Maodv<AgMsg> {
        &self.maodv
    }

    /// The member cache.
    pub fn member_cache(&self) -> &MemberCache {
        &self.cache
    }

    /// The lost table.
    pub fn lost_table(&self) -> &LostTable {
        &self.lost
    }

    /// The history table.
    pub fn history(&self) -> &HistoryTable {
        &self.history
    }

    /// The gossip configuration.
    pub fn config(&self) -> &AgConfig {
        &self.cfg
    }

    // ───────────────────────── delivery plumbing ─────────────────────────

    /// A data packet reached this member (any path): account for it and
    /// keep a copy for future gossip replies.
    fn deliver(
        &mut self,
        now: SimTime,
        origin: NodeId,
        seq: u32,
        payload_len: u16,
        path: DeliveryPath,
    ) -> bool {
        let new = self.delivery.record(origin, seq, path);
        self.history.push(PacketRecord {
            id: PacketId::new(origin, seq),
            payload_len,
        });
        self.lost.observe(origin, seq);
        if origin != self.maodv.id() {
            // Data implies the origin is a member (free cache feed).
            let _ = now;
        }
        new
    }

    fn process_upcalls<C: MaodvCtx<AgMsg>>(
        &mut self,
        api: &mut C,
        upcalls: &mut Vec<Upcall<AgMsg>>,
    ) {
        for up in upcalls.drain(..) {
            match up {
                Upcall::DataReceived {
                    origin,
                    seq,
                    payload_len,
                    hops,
                } => {
                    self.deliver(api.now(), origin, seq, payload_len, DeliveryPath::Tree);
                    self.cache.observe(origin, hops, api.now());
                }
                Upcall::MemberObserved { member, hops } => {
                    if member != self.maodv.id() {
                        self.cache.observe(member, hops, api.now());
                    }
                }
                Upcall::ExtNeighbor { from, msg } => match msg {
                    AgMsg::Request(r) => self.handle_walking_request(api, from, r),
                    AgMsg::Reply(rep) => self.handle_reply(api, rep, 1),
                },
                Upcall::ExtRouted { src, hops, msg } => match msg {
                    AgMsg::Request(r) => {
                        // Cached gossip addressed to us: always accept.
                        let _ = src;
                        self.metrics.requests_accepted += 1;
                        self.cache.observe(r.initiator, hops, api.now());
                        self.answer_request(api, &r);
                    }
                    AgMsg::Reply(rep) => self.handle_reply(api, rep, hops),
                },
                Upcall::JoinedTree | Upcall::BecameLeader => {}
            }
        }
    }

    // ───────────────────────── gossip rounds ─────────────────────────

    fn build_request(&self, hops: u8, ttl: u8) -> GossipRequest {
        GossipRequest {
            group: self.maodv.group(),
            initiator: self.maodv.id(),
            lost: self.lost.lost_buffer(self.cfg.lost_buffer_max),
            expected: self.lost.expected_vec(),
            hops,
            ttl,
        }
    }

    /// One §4 gossip round: anonymous with probability `p_anon`, cached
    /// otherwise; each falls back to the other when impossible.
    fn gossip_round<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C) {
        if !self.maodv.is_member() {
            return;
        }
        let want_anon = api.chance(self.cfg.p_anon);
        let anon_target = {
            self.cand_scratch.clear();
            self.cand_scratch.extend(
                self.maodv
                    .mrt()
                    .enabled()
                    .map(|h| (h.node, h.nearest_member)),
            );
            weighted_pick(&self.cand_scratch, self.cfg.locality_weighting, api)
        };
        let cached_target = {
            let me = self.maodv.id();
            self.cache.pick_via(me, |n| api.pick_index(n))
        };
        let req = self.build_request(0, self.cfg.gossip_ttl);
        match (want_anon, anon_target, cached_target) {
            (true, Some(next), _) | (false, Some(next), None) => {
                self.metrics.rounds_anonymous += 1;
                self.maodv.send_ext_neighbor(api, next, AgMsg::request(req));
                api.count("ag.request_anon_sent");
            }
            (false, _, Some(entry)) | (true, None, Some(entry)) => {
                self.metrics.rounds_cached += 1;
                self.cache.record_gossip(entry.node, api.now());
                self.maodv
                    .send_ext_routed(api, entry.node, AgMsg::request(req));
                api.count("ag.request_cached_sent");
            }
            (_, None, None) => {
                self.metrics.rounds_skipped += 1;
                api.count("ag.round_skipped");
            }
        }
    }

    /// A request walking the tree arrived from `from` (§4.1 step flow).
    fn handle_walking_request<C: MaodvCtx<AgMsg>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        r: Arc<GossipRequest>,
    ) {
        if r.initiator == self.maodv.id() {
            // The walk came back around; nothing useful to do.
            self.metrics.requests_dropped += 1;
            return;
        }
        // Record the reverse path: this is what lets the eventual
        // accepting member unicast its reply without route discovery.
        self.maodv
            .note_route(api.now(), r.initiator, from, r.hops.saturating_add(1));
        let accept = self.maodv.is_member() && api.chance(self.cfg.p_accept);
        if accept {
            self.metrics.requests_accepted += 1;
            self.cache
                .observe(r.initiator, r.hops.saturating_add(1), api.now());
            self.answer_request(api, &r);
            return;
        }
        // Propagate to a random next hop other than the sender, biased
        // toward nearby members (§4.2).
        let next = if r.ttl <= 1 {
            None
        } else {
            let initiator = r.initiator;
            self.cand_scratch.clear();
            self.cand_scratch.extend(
                self.maodv
                    .mrt()
                    .enabled()
                    .filter(|h| h.node != from && h.node != initiator)
                    .map(|h| (h.node, h.nearest_member)),
            );
            weighted_pick(&self.cand_scratch, self.cfg.locality_weighting, api)
        };
        match next {
            Some(next) => {
                self.metrics.requests_propagated += 1;
                // The walk normally holds the only reference to the
                // body by now (the delivering frame has left the air),
                // so stepping hops/ttl is an in-place update, not a
                // copy of the lost/expected vecs.
                let mut body = Arc::try_unwrap(r).unwrap_or_else(|shared| (*shared).clone());
                body.hops = body.hops.saturating_add(1);
                body.ttl -= 1;
                self.maodv
                    .send_ext_neighbor(api, next, AgMsg::Request(Arc::new(body)));
            }
            None if self.maodv.is_member() => {
                // Nowhere to go: accept rather than waste the walk.
                self.metrics.requests_accepted += 1;
                self.cache
                    .observe(r.initiator, r.hops.saturating_add(1), api.now());
                self.answer_request(api, &r);
            }
            None => {
                self.metrics.requests_dropped += 1;
                api.count("ag.request_dead_end");
            }
        }
    }

    /// §4.4 pull: look up everything the initiator asked for (plus tail
    /// recovery past its expected sequence numbers) and unicast it back.
    fn answer_request<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C, r: &GossipRequest) {
        let packets = select_reply_packets(&self.history, r, &self.cfg);
        if packets.is_empty() {
            api.count("ag.reply_empty");
            return;
        }
        self.metrics.reply_packets_sent += packets.len() as u64;
        api.count_n("ag.reply_packets_sent", packets.len() as u64);
        self.maodv.send_ext_routed(
            api,
            r.initiator,
            AgMsg::reply(GossipReply {
                group: r.group,
                responder: self.maodv.id(),
                packets,
            }),
        );
    }

    /// A gossip reply arrived: deliver anything new (this is the paper's
    /// loss recovery) and measure goodput.
    fn handle_reply<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C, rep: Arc<GossipReply>, hops: u8) {
        self.cache.observe(rep.responder, hops, api.now());
        for &p in &rep.packets {
            self.metrics.reply_packets_received += 1;
            let new = self.deliver(
                api.now(),
                p.id.origin,
                p.id.seq,
                p.payload_len,
                DeliveryPath::Gossip,
            );
            if new {
                self.metrics.reply_packets_useful += 1;
                api.count("ag.recovered");
            } else {
                api.count("ag.reply_duplicate");
            }
        }
    }
}

impl Protocol for AnonymousGossip {
    type Msg = MaodvMsg<AgMsg>;

    fn start<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C) {
        self.maodv.start(api);
        if self.maodv.is_member() {
            let jitter =
                SimDuration::from_nanos(api.jitter(self.cfg.gossip_interval.as_nanos().max(1)));
            api.set_timer(self.cfg.gossip_interval + jitter, TIMER_GOSSIP);
        }
        if let Some(t) = self.traffic {
            api.set_timer(t.start.duration_since(SimTime::ZERO), TIMER_TRAFFIC);
        }
    }

    fn on_packet<C: MaodvCtx<AgMsg>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        msg: Self::Msg,
        rx: RxKind,
    ) {
        // The upcall buffer is borrowed out of `self` and handed back
        // after the drain (the `rx_scratch` idiom): one warm buffer per
        // node instead of a fresh `Vec` per received frame. Safe because
        // the upcall handlers never re-enter these engine callbacks.
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        self.maodv.on_packet(api, from, msg, rx, &mut up);
        self.process_upcalls(api, &mut up);
        self.up_scratch = up;
    }

    fn on_timer<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C, key: TimerKey) {
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        if self.maodv.on_timer(api, key, &mut up) {
            self.process_upcalls(api, &mut up);
            self.up_scratch = up;
            return;
        }
        match key {
            TIMER_GOSSIP => {
                self.gossip_round(api);
                api.set_timer(self.cfg.gossip_interval, TIMER_GOSSIP);
            }
            TIMER_TRAFFIC => {
                if let Some(t) = self.traffic {
                    if api.now() <= t.end {
                        let seq = self.maodv.send_data(api, t.payload_len);
                        let me = self.maodv.id();
                        self.deliver(api.now(), me, seq, t.payload_len, DeliveryPath::Tree);
                        api.set_timer(t.interval, TIMER_TRAFFIC);
                    }
                }
            }
            _ => {}
        }
        self.process_upcalls(api, &mut up);
        self.up_scratch = up;
    }

    fn on_send_failure<C: MaodvCtx<AgMsg>>(&mut self, api: &mut C, to: NodeId, msg: Self::Msg) {
        let mut up = std::mem::take(&mut self.up_scratch);
        debug_assert!(up.is_empty(), "upcall scratch handed back dirty");
        self.maodv.on_send_failure(api, to, msg, &mut up);
        self.process_upcalls(api, &mut up);
        self.up_scratch = up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_mobility::{Mobility, Stationary, Vec2};
    use ag_net::{Engine, NodeSetup, PhyParams, ProtoCtx};
    use ag_sim::rng::{SeedSplitter, StreamKind};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Minimal sampling context for the `weighted_pick` unit tests:
    /// draws from a raw RNG stream and swallows every effect.
    #[derive(Debug)]
    struct RngCtx {
        rng: SmallRng,
    }

    impl ProtoCtx<MaodvMsg<AgMsg>> for RngCtx {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn id(&self) -> NodeId {
            NodeId::new(0)
        }
        fn node_count(&self) -> usize {
            1
        }
        fn send(&mut self, _dest: NodeId, _msg: MaodvMsg<AgMsg>) {}
        fn broadcast(&mut self, _msg: MaodvMsg<AgMsg>) {}
        fn set_timer(&mut self, _delay: SimDuration, _key: TimerKey) {}
        fn count(&mut self, _name: &'static str) {}
        fn count_n(&mut self, _name: &'static str, _n: u64) {}
        fn jitter(&mut self, bound: u64) -> u64 {
            self.rng.random_range(0..bound)
        }
        fn chance(&mut self, p: f64) -> bool {
            self.rng.random_bool(p)
        }
        fn pick_index(&mut self, n: usize) -> usize {
            self.rng.random_range(0..n)
        }
        fn pick_weighted<F: Fn(usize) -> f64>(&mut self, n: usize, weight: F) -> usize {
            let total: f64 = (0..n).map(&weight).sum();
            let mut draw = self.rng.random_range(0.0..total);
            let mut picked = n - 1;
            for i in 0..n {
                let w = weight(i);
                if draw < w {
                    picked = i;
                    break;
                }
                draw -= w;
            }
            picked
        }
    }

    fn rng_ctx(seed: u64, stream: u64) -> RngCtx {
        RngCtx {
            rng: SeedSplitter::new(seed).stream(StreamKind::Node, stream),
        }
    }

    fn id(n: u32) -> NodeId {
        NodeId::new(n)
    }

    // ── weighted_pick unit tests ──

    #[test]
    fn weighted_pick_empty_is_none() {
        let mut ctx = rng_ctx(1, 0);
        assert_eq!(weighted_pick(&[], true, &mut ctx), None);
        assert_eq!(weighted_pick(&[], false, &mut ctx), None);
    }

    #[test]
    fn weighted_pick_single_always_chosen() {
        let mut ctx = rng_ctx(1, 1);
        for _ in 0..10 {
            assert_eq!(weighted_pick(&[(id(4), 9)], true, &mut ctx), Some(id(4)));
        }
    }

    #[test]
    fn weighted_pick_biases_toward_near_members() {
        // nm=1 vs nm=8: expect roughly 8:1 preference.
        let mut ctx = rng_ctx(2, 2);
        let cands = [(id(1), 1u8), (id(2), 8u8)];
        let mut near = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if weighted_pick(&cands, true, &mut ctx) == Some(id(1)) {
                near += 1;
            }
        }
        let frac = near as f64 / n as f64;
        assert!((frac - 8.0 / 9.0).abs() < 0.02, "near fraction {frac}");
    }

    #[test]
    fn weighted_pick_uniform_without_locality() {
        let mut ctx = rng_ctx(3, 3);
        let cands = [(id(1), 1u8), (id(2), 8u8)];
        let mut near = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if weighted_pick(&cands, false, &mut ctx) == Some(id(1)) {
                near += 1;
            }
        }
        let frac = near as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "uniform fraction {frac}");
    }

    #[test]
    fn weighted_pick_handles_zero_nearest_member() {
        // nm is clamped to 1 in the weight; must not divide by zero.
        let mut ctx = rng_ctx(4, 4);
        assert!(weighted_pick(&[(id(1), 0)], true, &mut ctx).is_some());
    }

    // ── select_reply_packets (the §4.4 reply rule) ──

    fn history_with(origin: u32, seqs: &[u32]) -> HistoryTable {
        let mut h = HistoryTable::new(100);
        for &s in seqs {
            h.push(crate::PacketRecord {
                id: crate::PacketId::new(id(origin), s),
                payload_len: 64,
            });
        }
        h
    }

    fn request(lost: Vec<crate::PacketId>, expected: Vec<(NodeId, u32)>) -> GossipRequest {
        GossipRequest {
            group: GroupId(0),
            initiator: id(9),
            lost,
            expected,
            hops: 0,
            ttl: 8,
        }
    }

    #[test]
    fn reply_returns_exact_lost_matches() {
        let h = history_with(1, &[1, 2, 3, 4, 5]);
        let cfg = AgConfig::paper_default();
        let r = request(
            vec![
                crate::PacketId::new(id(1), 2),
                crate::PacketId::new(id(1), 4),
            ],
            vec![],
        );
        let out = select_reply_packets(&h, &r, &cfg);
        let seqs: Vec<u32> = out.iter().map(|p| p.id.seq).collect();
        assert_eq!(seqs, vec![2, 4]);
    }

    #[test]
    fn reply_skips_packets_not_in_history() {
        let h = history_with(1, &[1, 2]);
        let cfg = AgConfig::paper_default();
        let r = request(vec![crate::PacketId::new(id(1), 50)], vec![]);
        assert!(select_reply_packets(&h, &r, &cfg).is_empty());
    }

    #[test]
    fn reply_tail_recovery_starts_at_expected() {
        let h = history_with(1, &[5, 6, 7, 8, 9, 10, 11, 12]);
        let cfg = AgConfig {
            tail_recovery_max: 3,
            ..AgConfig::paper_default()
        };
        // Initiator saw nothing past seq 6 (expected == 7).
        let r = request(vec![], vec![(id(1), 7)]);
        let seqs: Vec<u32> = select_reply_packets(&h, &r, &cfg)
            .iter()
            .map(|p| p.id.seq)
            .collect();
        assert_eq!(
            seqs,
            vec![7, 8, 9],
            "oldest first, capped at tail_recovery_max"
        );
    }

    #[test]
    fn reply_deduplicates_lost_and_tail() {
        let h = history_with(1, &[5, 6, 7]);
        let cfg = AgConfig::paper_default();
        let r = request(vec![crate::PacketId::new(id(1), 5)], vec![(id(1), 5)]);
        let mut seqs: Vec<u32> = select_reply_packets(&h, &r, &cfg)
            .iter()
            .map(|p| p.id.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            vec![5, 6, 7],
            "no duplicates across lost/tail sources"
        );
    }

    #[test]
    fn reply_respects_total_budget() {
        let h = history_with(1, &(1..=50).collect::<Vec<u32>>());
        let cfg = AgConfig {
            reply_max_packets: 4,
            ..AgConfig::paper_default()
        };
        let lost: Vec<_> = (1..=10).map(|s| crate::PacketId::new(id(1), s)).collect();
        let out = select_reply_packets(&h, &request(lost, vec![(id(1), 20)]), &cfg);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn reply_tail_recovery_covers_multiple_origins() {
        let mut h = history_with(1, &[3, 4]);
        h.push(crate::PacketRecord {
            id: crate::PacketId::new(id(2), 7),
            payload_len: 64,
        });
        let cfg = AgConfig::paper_default();
        let r = request(vec![], vec![(id(1), 3), (id(2), 7)]);
        let mut got: Vec<(u32, u32)> = select_reply_packets(&h, &r, &cfg)
            .iter()
            .map(|p| (p.id.origin.raw(), p.id.seq))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 3), (1, 4), (2, 7)]);
    }

    // ── full-stack integration ──

    /// Teleports from `a` to `b` at `at`, then back to `a` at `back`.
    #[derive(Debug)]
    struct AwayAndBack {
        a: Vec2,
        b: Vec2,
        at: SimTime,
        back: SimTime,
        phase: u8,
    }

    impl Mobility for AwayAndBack {
        fn position(&self, t: SimTime) -> Vec2 {
            if t >= self.at && t < self.back {
                self.b
            } else {
                self.a
            }
        }
        fn current_leg(&self) -> ag_mobility::LegSample {
            // Per-phase jump legs; each is exact until (and past) the
            // phase's transition, when the engine re-queries.
            match self.phase {
                0 => ag_mobility::LegSample::jump(self.a, self.b, self.at),
                1 => ag_mobility::LegSample::jump(self.b, self.a, self.back),
                _ => ag_mobility::LegSample::fixed(self.a),
            }
        }
        fn next_transition(&self) -> SimTime {
            match self.phase {
                0 => self.at,
                1 => self.back,
                _ => SimTime::MAX,
            }
        }
        fn transition(&mut self, _now: SimTime, _rng: &mut SmallRng) {
            self.phase += 1;
        }
    }

    fn ag_node(i: u32, member: bool, traffic: Option<TrafficSource>) -> AnonymousGossip {
        AnonymousGossip::new(
            AgConfig::paper_default(),
            MaodvConfig::paper_default(),
            id(i),
            GroupId(0),
            member,
            traffic,
        )
    }

    #[test]
    fn stable_pair_delivers_everything_via_tree() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            50,
            64,
        );
        let nodes = vec![
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))) as Box<dyn Mobility>,
                protocol: ag_node(0, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(40.0, 0.0))),
                protocol: ag_node(1, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 21, nodes);
        e.run_until(SimTime::from_secs(60));
        let b = e.protocol(id(1));
        assert_eq!(b.delivery().distinct(), 50);
        // In a loss-free pair, gossip recovers little or nothing, and
        // goodput accounting stays consistent.
        assert!(b.metrics().reply_packets_useful <= b.metrics().reply_packets_received);
        // The member cache learned about the source for free.
        assert!(b.member_cache().entries().iter().any(|e| e.node == id(0)));
    }

    #[test]
    fn gossip_recovers_packets_lost_to_a_partition() {
        // A(member, source) — R — B(member). B walks away at t=40 s and
        // returns at t=70 s; the source stops sending at t≈50 s, so the
        // ~50 packets B missed can *only* arrive through gossip pull
        // (tail recovery: B saw nothing after its departure).
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            100,
            64,
        );
        let nodes = vec![
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))) as Box<dyn Mobility>,
                protocol: ag_node(0, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(80.0, 0.0))),
                protocol: ag_node(1, false, None),
            },
            NodeSetup {
                mobility: Box::new(AwayAndBack {
                    a: Vec2::new(160.0, 0.0),
                    b: Vec2::new(2000.0, 0.0),
                    at: SimTime::from_secs(40),
                    back: SimTime::from_secs(70),
                    phase: 0,
                }),
                protocol: ag_node(2, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(100.0), 22, nodes);
        e.run_until(SimTime::from_secs(200));
        let b = e.protocol(id(2));
        assert!(
            b.delivery().via_gossip() > 0,
            "gossip must recover the partition loss; got {:?} tree / {:?} gossip",
            b.delivery().via_tree(),
            b.delivery().via_gossip()
        );
        assert!(
            b.delivery().distinct() >= 95,
            "nearly all 100 packets should be recovered, got {}",
            b.delivery().distinct()
        );
        // The bare tree could not have delivered what B recovered.
        assert!(b.delivery().via_tree() < 100);
    }

    #[test]
    fn goodput_accounting_is_consistent() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            100,
            64,
        );
        let nodes = vec![
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))) as Box<dyn Mobility>,
                protocol: ag_node(0, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(AwayAndBack {
                    a: Vec2::new(40.0, 0.0),
                    b: Vec2::new(2000.0, 0.0),
                    at: SimTime::from_secs(40),
                    back: SimTime::from_secs(60),
                    phase: 0,
                }),
                protocol: ag_node(1, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(75.0), 23, nodes);
        e.run_until(SimTime::from_secs(150));
        let b = e.protocol(id(1));
        let m = b.metrics();
        assert!(m.reply_packets_useful <= m.reply_packets_received);
        if let Some(g) = m.goodput_percent() {
            assert!((0.0..=100.0).contains(&g));
            // Pull-based recovery with explicit ids should be mostly useful.
            assert!(g > 50.0, "goodput unexpectedly low: {g}");
        }
        assert!(m.rounds_total() > 0);
    }

    #[test]
    fn non_member_nodes_relay_but_do_not_gossip() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            20,
            64,
        );
        let nodes = vec![
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))) as Box<dyn Mobility>,
                protocol: ag_node(0, true, Some(t)),
            },
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(80.0, 0.0))),
                protocol: ag_node(1, false, None),
            },
            NodeSetup {
                mobility: Box::new(Stationary::new(Vec2::new(160.0, 0.0))),
                protocol: ag_node(2, true, None),
            },
        ];
        let mut e = Engine::new(PhyParams::paper_default(100.0), 24, nodes);
        e.run_until(SimTime::from_secs(60));
        let router = e.protocol(id(1));
        assert_eq!(
            router.metrics().rounds_total(),
            0,
            "non-members never start rounds"
        );
        assert_eq!(
            router.delivery().distinct(),
            0,
            "routers do not deliver to an app"
        );
        // But the far member got everything through it.
        assert_eq!(e.protocol(id(2)).delivery().distinct(), 20);
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let t = TrafficSource::compact(
            SimTime::from_secs(30),
            SimDuration::from_millis(200),
            30,
            64,
        );
        let run = |seed: u64| {
            let nodes = vec![
                NodeSetup {
                    mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))) as Box<dyn Mobility>,
                    protocol: ag_node(0, true, Some(t)),
                },
                NodeSetup {
                    mobility: Box::new(Stationary::new(Vec2::new(70.0, 0.0))),
                    protocol: ag_node(1, true, None),
                },
                NodeSetup {
                    mobility: Box::new(Stationary::new(Vec2::new(140.0, 0.0))),
                    protocol: ag_node(2, true, None),
                },
            ];
            let mut e = Engine::new(PhyParams::paper_default(90.0), seed, nodes);
            e.run_until(SimTime::from_secs(60));
            (0..3u32)
                .map(|i| {
                    let p = e.protocol(id(i));
                    (
                        p.delivery().distinct(),
                        p.metrics().rounds_anonymous,
                        p.metrics().rounds_cached,
                        p.metrics().reply_packets_received,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
    }
}
