//! Regenerates the paper's Figure 8 (goodput at group members).

use ag_harness::{figures, report};

fn main() {
    let seeds = report::env_seeds();
    let secs = report::env_sim_secs();
    eprintln!("running fig8 (4 configs x {seeds} seeds, {secs} s simulated)...");
    let series = figures::fig8(seeds, secs);
    println!("{}", report::render_goodput(&series));
}
