//! The transition-system abstraction the checker explores.

use std::fmt;

/// A finite(ly explorable) nondeterministic transition system:
/// `transition(state, action) -> state` plus an enumerator of the
/// actions (with all their internal random choices resolved) enabled in
/// a state.
///
/// [`successors`](Machine::successors) returns each enabled action
/// *paired with* the state it produces, because enumerating an action
/// (running a protocol handler to discover its choice points) already
/// computes the successor. [`step`](Machine::step) re-applies a single
/// recorded action deterministically; the explorer uses it to
/// materialize counterexample traces without storing every explored
/// state.
pub trait Machine {
    /// A full world state. `Debug` is the canonical form the visited
    /// set hashes (see [`state_key`](crate::explore::state_key)).
    type State: Clone + fmt::Debug;
    /// One resolved transition label (deterministic given the state).
    type Action: Clone + fmt::Debug;

    /// The unique initial state.
    fn initial(&self) -> Self::State;

    /// Every `(action, successor)` pair enabled in `state`, in a
    /// deterministic order. An empty result marks a terminal state.
    fn successors(&self, state: &Self::State) -> Vec<(Self::Action, Self::State)>;

    /// Re-applies one action returned by [`Machine::successors`] for
    /// this (or an equal) state. Must reproduce the paired successor
    /// exactly.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State;
}
