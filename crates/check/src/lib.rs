//! # ag-check: exhaustive model checking of the protocol cores
//!
//! The workspace's protocol implementations (gossip, MAODV, ODMRP) are
//! written against the pure [`ag_net::ProtoCtx`] facade: every handler
//! is a `transition(state, action) -> (state, effects)` function whose
//! only nondeterminism is *named random choices*. This crate runs the
//! **exact same monomorphized protocol code** that executes under
//! `ag_net::Engine` inside two other harnesses:
//!
//! 1. **Explicit-state model checking** ([`net::NetModel`] +
//!    [`explore()`] + [`logic`]): small-N abstract networks where frame
//!    delivery order, budgeted loss, budgeted radio churn, timer ties
//!    and every named choice branch nondeterministically. Temporal
//!    properties (`always` / `eventually` / `leads_to`) are decided
//!    over the full reachable graph with lasso-shaped counterexamples.
//! 2. **Engine-trace conformance** ([`replay`]): a recorded engine run
//!    (`Engine::new_traced`) is replayed choice-for-choice through the
//!    facade, asserting lockstep state-digest equality — the proof
//!    that the model the checker explores *is* the code the simulator
//!    runs.
//!
//! Everything is implemented in-workspace (no external model-checking
//! dependency), mirroring the vendored-shim policy in `vendor/`.
//! See `docs/MODEL_CHECKING.md` for the checked configurations, the
//! property definitions, state-space sizes and the counterexample
//! format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod logic;
pub mod machine;
pub mod net;
pub mod replay;

pub use explore::{explore, state_key, Exploration, Limits};
pub use logic::{
    always, eventually, exists, leads_to, render_counterexample, Counterexample, Verdict,
};
pub use machine::Machine;
pub use net::{NetAction, NetModel, NetState};
pub use replay::{replay_trace, ReplayCtx};
