//! The cross-protocol stress matrix: {gossip, bare MAODV, ODMRP} ×
//! {loss model, churn level, speed}.
//!
//! The paper's evaluation runs an ideal channel; its claim is that
//! anonymous gossip keeps multicast delivery high *exactly when the
//! network turns hostile*. This module makes the hostility systematic:
//! a [`MatrixSpec`] crosses every protocol stack with every requested
//! loss model, churn level and speed, runs each cell over independent
//! seeds on the [`crate::parallel`] worker pool, and reduces everything
//! to one comparison table ([`crate::report::render_matrix`]).
//!
//! Like every harness sweep, the output is **thread-count invariant**:
//! per-seed results merge in seed order, and cells run in a fixed
//! (loss, churn, speed, protocol) order.
//!
//! # Example
//!
//! ```
//! use ag_harness::matrix::MatrixSpec;
//! let spec = MatrixSpec::paper_stress(10, 600).with_speeds(vec![0.2]);
//! assert_eq!(spec.cell_count(), 3 * 3 * 3); // protocols × losses × churns
//! // spec.run() executes all 27 cells × 10 seeds (see examples/stress_matrix.rs).
//! ```

use ag_net::{ChurnParams, ReceptionModel};
use ag_sim::stats::Summary;
use serde::Serialize;

use crate::experiment::protocol_point_par;
use crate::parallel::Parallelism;
use crate::{ProtocolKind, Scenario};

/// A labelled loss level (reception model) of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct LossLevel {
    /// Human-readable axis label, e.g. `"per0.4"`.
    pub label: String,
    /// The reception model this level applies.
    pub model: ReceptionModel,
}

/// A labelled churn level of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnLevel {
    /// Human-readable axis label, e.g. `"up120/down15"`.
    pub label: String,
    /// The churn parameters, `None` for always-on nodes.
    pub churn: Option<ChurnParams>,
}

/// The full cross-product specification of a stress run.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// The fixed-parameter base scenario (speed is overridden per cell).
    pub base: Scenario,
    /// Protocol stacks to compare (the cell-level inner axis).
    pub protocols: Vec<ProtocolKind>,
    /// Loss levels (outermost axis).
    pub losses: Vec<LossLevel>,
    /// Churn levels.
    pub churns: Vec<ChurnLevel>,
    /// Maximum node speeds, m/s.
    pub speeds: Vec<f64>,
    /// Seeds per cell.
    pub seeds: u64,
}

/// One cell of the matrix: a protocol's pooled delivery at one stress
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixCell {
    /// The protocol stack.
    pub protocol: ProtocolKind,
    /// Loss-level label.
    pub loss: String,
    /// Churn-level label.
    pub churn: String,
    /// Maximum speed of the cell, m/s.
    pub max_speed: f64,
    /// Packets the source sent.
    pub sent: u64,
    /// Per-receiver packet counts pooled over seeds.
    pub received: Summary,
}

impl MatrixCell {
    /// Mean delivery across receivers as a percentage of packets sent.
    pub fn delivery_percent(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        100.0 * self.received.mean() / self.sent as f64
    }
}

/// The reduced outcome of a matrix run, in (loss, churn, speed,
/// protocol) row-major order.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixReport {
    /// Protocol order of the inner axis (one table column each).
    pub protocols: Vec<ProtocolKind>,
    /// All cells, protocols fastest-varying.
    pub cells: Vec<MatrixCell>,
}

impl MatrixSpec {
    /// The default stress matrix: the paper's 40-node environment
    /// crossed with three loss levels (ideal, distance-graded PER,
    /// log-normal shadowing), three churn levels (none, gentle,
    /// harsh) and two speeds, for all three protocol stacks.
    pub fn paper_stress(seeds: u64, duration_secs: u64) -> Self {
        MatrixSpec {
            base: Scenario::paper(40, 75.0, 0.2).with_duration_secs(duration_secs),
            protocols: vec![
                ProtocolKind::Gossip,
                ProtocolKind::Maodv,
                ProtocolKind::Odmrp,
            ],
            losses: vec![
                LossLevel {
                    label: "ideal".into(),
                    model: ReceptionModel::Ideal,
                },
                LossLevel {
                    label: "per0.5".into(),
                    model: ReceptionModel::DistanceGraded { edge_per: 0.5 },
                },
                LossLevel {
                    label: "shadow8dB".into(),
                    model: ReceptionModel::Shadowing {
                        sigma_db: 8.0,
                        path_loss_exp: 3.0,
                    },
                },
            ],
            churns: vec![
                ChurnLevel {
                    label: "none".into(),
                    churn: None,
                },
                ChurnLevel {
                    label: "up120/dn15".into(),
                    churn: Some(ChurnParams::new(120.0, 15.0)),
                },
                ChurnLevel {
                    label: "up40/dn20".into(),
                    churn: Some(ChurnParams::new(40.0, 20.0)),
                },
            ],
            speeds: vec![0.2, 2.0],
            seeds,
        }
    }

    /// Returns a copy with a different speed axis.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "need at least one speed");
        self.speeds = speeds;
        self
    }

    /// Number of cells the matrix will run.
    pub fn cell_count(&self) -> usize {
        self.protocols.len() * self.losses.len() * self.churns.len() * self.speeds.len()
    }

    /// Runs the matrix with [`Parallelism::auto`]-sized parallelism.
    pub fn run(&self) -> MatrixReport {
        self.run_par(Parallelism::auto())
    }

    /// Runs the matrix on `par` worker threads (seeds of one cell run
    /// concurrently; cells run in order, so the report is identical for
    /// every thread count).
    pub fn run_par(&self, par: Parallelism) -> MatrixReport {
        assert!(!self.protocols.is_empty(), "need at least one protocol");
        assert!(!self.losses.is_empty(), "need at least one loss level");
        assert!(!self.churns.is_empty(), "need at least one churn level");
        assert!(!self.speeds.is_empty(), "need at least one speed");
        let mut cells = Vec::with_capacity(self.cell_count());
        for loss in &self.losses {
            for churn in &self.churns {
                for &speed in &self.speeds {
                    let mut sc = self.base.clone().with_reception(loss.model);
                    sc.max_speed = speed;
                    sc.churn = churn.churn;
                    for &kind in &self.protocols {
                        let (sent, received) = protocol_point_par(&sc, kind, self.seeds, par);
                        cells.push(MatrixCell {
                            protocol: kind,
                            loss: loss.label.clone(),
                            churn: churn.label.clone(),
                            max_speed: speed,
                            sent,
                            received,
                        });
                    }
                }
            }
        }
        MatrixReport {
            protocols: self.protocols.clone(),
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        let mut spec = MatrixSpec::paper_stress(1, 30).with_speeds(vec![0.5]);
        spec.base = Scenario::paper(8, 90.0, 0.5).with_duration_secs(30);
        spec.losses.truncate(2);
        spec.churns.truncate(2);
        spec
    }

    #[test]
    fn matrix_covers_the_full_cross_product() {
        let spec = tiny_spec();
        assert_eq!(spec.cell_count(), 3 * 2 * 2);
        let report = spec.run_par(Parallelism::serial());
        assert_eq!(report.cells.len(), spec.cell_count());
        // Protocols vary fastest; every (loss, churn) pair appears.
        assert_eq!(report.cells[0].protocol, ProtocolKind::Gossip);
        assert_eq!(report.cells[1].protocol, ProtocolKind::Maodv);
        assert_eq!(report.cells[2].protocol, ProtocolKind::Odmrp);
        for loss in &spec.losses {
            for churn in &spec.churns {
                assert!(report
                    .cells
                    .iter()
                    .any(|c| c.loss == loss.label && c.churn == churn.label));
            }
        }
        for c in &report.cells {
            assert!(c.sent > 0);
            assert!(
                (0.0..=100.0 + 1e-9).contains(&c.delivery_percent()),
                "{c:?}"
            );
        }
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let spec = tiny_spec();
        let one = spec.run_par(Parallelism::new(1));
        let four = spec.run_par(Parallelism::new(4));
        assert_eq!(format!("{one:?}"), format!("{four:?}"));
    }
}
