//! The workspace self-run: `cargo test -q` asserts the tree is
//! lint-clean, so the gate runs even when nobody remembers the binary.

use std::path::Path;

use ag_lint::config::Config;
use ag_lint::{find_workspace_root, run_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = run_workspace(&root, &Config::workspace()).expect("scan workspace");
    assert!(
        report.is_clean(),
        "the workspace has ag-lint findings:\n{}",
        report.render()
    );
    // The walker really walked the tree (and didn't, say, start from
    // the wrong root and scan three files to a vacuous green).
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // Every waiver in the tree must be load-bearing: a waiver whose
    // finding is gone is stale documentation and should be deleted.
    assert_eq!(
        report.waivers_used, report.waivers_present,
        "stale waiver(s): {} present, only {} suppress anything",
        report.waivers_present, report.waivers_used
    );
}

#[test]
fn hot_path_manifest_matches_the_sources() {
    // The manifest-rot check: every function the workspace config
    // names must still exist in its file. (A rename would otherwise
    // silently shrink hot-path coverage; the rule reports it as a
    // finding, which the clean-run assertion above also catches — this
    // test just localizes the failure.)
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let cfg = Config::workspace();
    for (file, fns) in &cfg.hot_path_manifest {
        let src = std::fs::read_to_string(root.join(file)).expect("manifest file readable");
        for name in fns {
            assert!(
                src.contains(&format!("fn {name}")),
                "hot-path manifest names `fn {name}` missing from {file}"
            );
        }
    }
}
