//! Scaling benchmarks for the PR-2 engine refactor.
//!
//! Two questions, matching the two halves of the refactor:
//!
//! 1. **Engine throughput vs node count** — the same beaconing network
//!    at N ∈ {50, 200, 500} (constant density), once through the grid
//!    spatial index and once through the brute-force receiver/collision
//!    scans. The grid's advantage must *grow* with N; at N = 500 it is
//!    the difference between tractable and not.
//! 2. **Serial vs parallel sweeps** — the same multi-seed sweep point on
//!    one worker thread and on four. Results are bit-identical (see
//!    `tests/parallel_determinism.rs`); only wall-clock may differ, and
//!    by how much depends on the host's core count.
//! 3. **Stress-knob overhead** — the full gossip stack on the ideal
//!    channel vs the distance-graded/shadowed/churny ones. The opt-in
//!    realism must price in as a small constant on the reception path
//!    (a keyed hash per delivery), not a new scaling regime.
//! 4. **Scheduler scaling** — the calendar queue vs the seed
//!    `BinaryHeap` (preserved as `ag_sim::reference::BinaryHeapQueue`)
//!    on a hold-pattern timer workload at growing pending-set sizes.
//!    The heap pays `O(log n)` per op, the calendar queue `O(1)`
//!    amortized; the gap must *widen* with the pending count. The
//!    committed numbers live in `BENCH_<pr>.json` (see the `perf_json`
//!    bench target and `docs/BENCHMARKS.md`); this group is for
//!    interactive exploration of the same comparison.

use ag_bench::beacon_engine;
use ag_harness::experiment::sweep_point_par;
use ag_harness::{run_gossip, Parallelism, ReceptionModel, Scenario};
use ag_sim::reference::BinaryHeapQueue;
use ag_sim::{EventQueue, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Simulated seconds per engine-throughput iteration: long enough to
/// amortize start-up transients (initial bucketing, allocator growth)
/// into steady state, short enough that even the brute-force 500-node
/// run finishes in sensible bench time.
const ENGINE_SIM_SECS: u64 = 30;

fn engine_scaling(c: &mut Criterion) {
    for &n in &[50usize, 200, 500] {
        for (label, spatial) in [("grid", true), ("brute", false)] {
            c.bench_function(
                &format!("engine_{n}_nodes_{ENGINE_SIM_SECS}s_{label}"),
                |b| {
                    b.iter(|| {
                        let mut e = beacon_engine(n, 1, spatial);
                        e.run_until(SimTime::from_secs(ENGINE_SIM_SECS));
                        black_box(e.protocols().iter().map(|p| p.heard).sum::<u64>())
                    });
                },
            );
        }
    }
}

fn sweep_parallelism(c: &mut Criterion) {
    let sc = Scenario::paper(12, 75.0, 1.0).with_duration_secs(40);
    for (label, threads) in [("serial", 1usize), ("4_threads", 4)] {
        c.bench_function(&format!("sweep_point_4_seeds_{label}"), |b| {
            b.iter(|| black_box(sweep_point_par(&sc, 75.0, 4, Parallelism::new(threads))));
        });
    }
}

fn stress_overhead(c: &mut Criterion) {
    let base = Scenario::paper(20, 75.0, 1.0).with_duration_secs(40);
    let variants: [(&str, Scenario); 4] = [
        ("ideal", base.clone()),
        (
            "graded_per",
            base.clone()
                .with_reception(ReceptionModel::DistanceGraded { edge_per: 0.5 }),
        ),
        (
            "shadowing",
            base.clone().with_reception(ReceptionModel::Shadowing {
                sigma_db: 8.0,
                path_loss_exp: 3.0,
            }),
        ),
        ("churn", base.clone().with_churn(120.0, 15.0)),
    ];
    for (label, sc) in &variants {
        c.bench_function(&format!("gossip_20_nodes_40s_{label}"), |b| {
            b.iter(|| black_box(run_gossip(sc, 1)));
        });
    }
}

/// One deterministic hold-pattern pass: keep `pending` events queued,
/// pop-and-reschedule `ops` times with timer-ish delays. Macro because
/// the two queues share an API but no trait.
macro_rules! hold_pattern {
    ($mk:expr, $pending:expr, $ops:expr) => {{
        let mut q = $mk;
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SimDuration::from_nanos(50_000 + (z ^ (z >> 31)) % 4_950_000)
        };
        let mut now = SimTime::ZERO;
        for _ in 0..$pending {
            q.schedule(now + next(), 0u32);
        }
        for _ in 0..$ops {
            let (t, _) = q.pop().unwrap();
            now = t;
            q.schedule(now + next(), 0u32);
        }
        black_box(q.len())
    }};
}

fn queue_scaling(c: &mut Criterion) {
    for &pending in &[1024usize, 16_384, 131_072] {
        let ops = 100_000u64;
        c.bench_function(&format!("queue_calendar_hold_{pending}"), |b| {
            b.iter(|| hold_pattern!(EventQueue::<u32>::new(), pending, ops));
        });
        c.bench_function(&format!("queue_heap_hold_{pending}"), |b| {
            b.iter(|| hold_pattern!(BinaryHeapQueue::<u32>::new(), pending, ops));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = engine_scaling, sweep_parallelism, stress_overhead, queue_scaling
}
criterion_main!(benches);
