//! Exhaustive check of the ODMRP core on the S — R — M chain.
//!
//! Configuration: node 0 is the source (and a member), node 1 a
//! non-member relay, node 2 a member; 2 data packets; the adversary
//! may drop one frame. Checked to fixpoint:
//!
//! * **FG-expiry** (`leads_to`): whenever the relay is in the
//!   forwarding group, it eventually leaves it — ODMRP's soft state
//!   always decays once queries stop.
//! * **Delivery** (`leads_to`): every originated packet is eventually
//!   delivered at the far member, unless the adversary spent a drop.
//! * Non-vacuity: the relay really does enter the forwarding group on
//!   some path, and full delivery really happens on some path.

use ag_check::{
    always, exists, explore, leads_to, render_counterexample, Limits, NetModel, NetState,
};
use ag_maodv::{GroupId, TrafficSource};
use ag_net::NodeId;
use ag_odmrp::{OdmrpConfig, OdmrpProtocol};
use ag_sim::{SimDuration, SimTime};

const N: usize = 3;

fn cfg() -> OdmrpConfig {
    OdmrpConfig {
        query_interval: SimDuration::from_secs(2),
        fg_lifetime: SimDuration::from_secs(6),
        flood_ttl: 3,
        route_lifetime: SimDuration::from_secs(6),
        seen_capacity: 64,
    }
}

fn chain_model(arm_canary: bool, drop_budget: u8) -> NetModel<OdmrpProtocol> {
    // Packets at t = 2 s and t = 4 s; queries at t = 0, 2, 4.
    let traffic = TrafficSource::compact(SimTime::from_secs(2), SimDuration::from_secs(2), 2, 64);
    let protocols: Vec<OdmrpProtocol> = (0..N as u32)
        .map(|i| {
            let mut p = OdmrpProtocol::new(
                cfg(),
                NodeId::new(i),
                GroupId(0),
                i != 1,
                (i == 0).then_some(traffic),
            );
            if arm_canary && i == 1 {
                p.canary_skip_fg_refresh();
            }
            p
        })
        .collect();
    // Horizon 5 s covers the last query round; end time 11 s sits past
    // the last possible fg_until (4 s + 6 s) so parked states observe
    // soft-state expiry.
    NetModel::new(
        protocols,
        &[(0, 1), (1, 2)],
        SimTime::from_secs(5),
        SimTime::from_secs(11),
    )
    .with_drop_budget(drop_budget)
}

/// The property-relevant projection of one world state.
#[derive(Debug, Clone)]
struct Obs {
    parked: bool,
    fg: [bool; N],
    originated: [bool; 2],
    delivered: [bool; 2],
    drops_used: u8,
}

fn observe(model: &NetModel<OdmrpProtocol>) -> impl Fn(&NetState<OdmrpProtocol>) -> Obs + '_ {
    move |st| Obs {
        parked: st.parked,
        fg: core::array::from_fn(|i| st.nodes[i].in_forwarding_group(st.now)),
        originated: core::array::from_fn(|q| {
            st.nodes[0]
                .delivery()
                .contains(NodeId::new(0), q as u32 + 1)
        }),
        delivered: core::array::from_fn(|q| {
            st.nodes[2]
                .delivery()
                .contains(NodeId::new(0), q as u32 + 1)
        }),
        drops_used: st.drops_used(model),
    }
}

#[test]
fn odmrp_chain_holds_fg_expiry_and_delivery() {
    let model = chain_model(false, 1);
    let ex = explore(
        &model,
        Limits {
            max_states: 400_000,
        },
        observe(&model),
    );
    assert!(ex.complete, "state space must be explored to fixpoint");
    println!(
        "odmrp healthy chain: {} states, {} terminal",
        ex.len(),
        ex.terminals().count()
    );

    // Terminal worlds are exactly the parked ones.
    for t in ex.terminals() {
        assert!(ex.obs[t].parked, "only parked states may be terminal");
    }

    // Soft state always expires: FG membership leads to non-membership.
    for node in 0..N {
        let v = leads_to(&ex, |o: &Obs| o.fg[node], |o| !o.fg[node]);
        assert!(v.holds(), "fg expiry violated at node {node}");
    }
    // Non-vacuity: the relay is nominated on some path.
    assert!(
        exists(&ex, |o: &Obs| o.fg[1]).is_some(),
        "relay never entered the forwarding group — property is vacuous"
    );

    // Every originated packet is eventually delivered at the far
    // member unless the adversary spent its drop.
    for q in 0..2 {
        let v = leads_to(
            &ex,
            |o: &Obs| o.originated[q],
            |o| o.delivered[q] || o.drops_used > 0,
        );
        assert!(v.holds(), "delivery of packet {} violated", q + 1);
    }
    // Non-vacuity: full delivery with no drops happens.
    assert!(
        exists(&ex, |o: &Obs| o.delivered[0]
            && o.delivered[1]
            && o.drops_used == 0)
        .is_some(),
        "lossless full delivery unreachable — model is broken"
    );
    // And the adversary can actually prevent a delivery (the drop
    // budget is not decorative).
    assert!(
        exists(&ex, |o: &Obs| o.parked
            && !(o.delivered[0] && o.delivered[1]))
        .is_some(),
        "one drop should be able to cost a packet on this chain"
    );

    // No world ends with undelivered packets *and* an unspent budget.
    let v = always(&ex, |o: &Obs| {
        !o.parked || (o.delivered[0] && o.delivered[1]) || o.drops_used > 0
    });
    assert!(v.holds(), "packet lost without any adversarial drop");
}

/// Bug canary: the relay skips its forwarding-group refresh. With no
/// adversarial drops at all, delivery must now fail — and the checker
/// must hand back a concrete counterexample trace. The healthy twin of
/// the same configuration passes, proving the checker's verdict tracks
/// the seeded bug and nothing else.
#[test]
fn odmrp_canary_skip_fg_refresh_is_caught() {
    // Healthy twin: no drops, everything is delivered on every path.
    let healthy = chain_model(false, 0);
    let ex = explore(
        &healthy,
        Limits {
            max_states: 400_000,
        },
        observe(&healthy),
    );
    assert!(ex.complete);
    let v = always(&ex, |o: &Obs| {
        !o.parked || (o.delivered[0] && o.delivered[1])
    });
    assert!(
        v.holds(),
        "healthy twin must deliver everything without drops"
    );

    // Armed: the relay never (re)joins the forwarding group.
    let armed = chain_model(true, 0);
    let ex = explore(
        &armed,
        Limits {
            max_states: 400_000,
        },
        observe(&armed),
    );
    assert!(ex.complete);
    println!("odmrp canary chain: {} states", ex.len());

    // The property is not even vacuously satisfiable any more: the
    // relay never enters the forwarding group...
    assert!(
        exists(&ex, |o: &Obs| o.fg[1]).is_none(),
        "armed relay must never enter the forwarding group"
    );

    // ...and delivery of the first packet is violated outright.
    let v = leads_to(
        &ex,
        |o: &Obs| o.originated[0],
        |o| o.delivered[0] || o.drops_used > 0,
    );
    let cex = v
        .counterexample()
        .expect("canary must produce a delivery violation");
    let rendered = render_counterexample(&armed, &ex, cex, |st| {
        let o = observe(&armed)(st);
        format!(
            "t={:?} fg={:?} delivered={:?} parked={}",
            st.now, o.fg, o.delivered, o.parked
        )
    });
    println!("minimal counterexample (skip-fg-refresh):\n{rendered}");
    assert!(!rendered.is_empty());
}
