//! Core vocabulary types shared by every layer above the PHY.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ctx::ProtoCtx;

/// A node's network address.
///
/// In MAODV terms this stands in for the node's IP address; the engine
/// assigns dense ids `0..n`. A `u32` index caps the population at ~4
/// billion — metropolis-scale (millions of nodes) with headroom, while
/// keeping per-node id storage (grid buckets, scratch lists) at four
/// bytes.
///
/// # Example
///
/// ```
/// use ag_net::NodeId;
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node (also its engine slot).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// How a frame arrived at the MAC: addressed to this node or broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RxKind {
    /// The frame was unicast to this node (and implicitly ACKed).
    Unicast,
    /// The frame was a local broadcast heard by every node in range.
    Broadcast,
}

/// An opaque protocol-defined timer tag.
///
/// Timers are *not* cancellable; protocols that need cancellation keep a
/// generation counter in their state and ignore stale firings (the idiom
/// used throughout `ag-maodv`).
pub type TimerKey = u64;

/// A frame payload that can ride the simulated wireless channel.
///
/// The engine only needs to know a payload's serialized size to compute
/// airtime; it never actually serializes anything.
///
/// **Cheap-clone contract:** the engine clones a payload once when it
/// goes on the air and once per broadcast receiver, so `Clone` sits on
/// the hot path. Payloads carrying heap data (a `Vec` of records, say)
/// should wrap it in `Arc` so those clones are refcount bumps rather
/// than deep copies — see `AgMsg` in `ag-core` for the idiom. `Copy`
/// payloads and small plain structs are fine as-is.
pub trait Message: Clone + fmt::Debug + Send + 'static {
    /// Size of the payload on the wire, in bytes, *excluding* the MAC
    /// header (the PHY adds that).
    fn wire_size(&self) -> usize;
}

/// The upper layer of a node's stack (routing + application).
///
/// One instance exists per node. All interaction with the world goes
/// through the [`ProtoCtx`] handed into every callback: sending frames,
/// scheduling timers, drawing named random choices, bumping counters.
/// Handlers are generic over the context, so the identical protocol
/// code runs under the engine's [`NodeApi`](crate::NodeApi), the
/// `ag-check` model checker's enumerating context, and the conformance
/// harness's replaying context.
///
/// The `Debug` supertrait is the observability half of that contract:
/// a protocol's full state must be renderable so the engine can digest
/// it per dispatch ([`state_digest`](crate::state_digest)) and the
/// checker can canonicalize explored states.
pub trait Protocol: Sized + fmt::Debug {
    /// The frame payload type this protocol family exchanges.
    type Msg: Message;

    /// Called once at simulation start (time zero), in node-id order.
    /// Schedule initial timers here.
    fn start<C: ProtoCtx<Self::Msg>>(&mut self, ctx: &mut C);

    /// A frame arrived, already MAC-filtered: either unicast to this node
    /// or a broadcast it overheard.
    fn on_packet<C: ProtoCtx<Self::Msg>>(
        &mut self,
        ctx: &mut C,
        from: NodeId,
        msg: Self::Msg,
        rx: RxKind,
    );

    /// A timer scheduled via [`ProtoCtx::set_timer`] fired.
    fn on_timer<C: ProtoCtx<Self::Msg>>(&mut self, ctx: &mut C, key: TimerKey);

    /// A unicast of `msg` to `to` definitively failed: the MAC
    /// exhausted its retry limit, or a radio failure (churn) destroyed
    /// the frame while it was queued.
    ///
    /// MAODV uses this as its primary link-break detector.
    fn on_send_failure<C: ProtoCtx<Self::Msg>>(&mut self, ctx: &mut C, to: NodeId, msg: Self::Msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(7u32), NodeId::new(7));
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn rx_kind_eq() {
        assert_ne!(RxKind::Unicast, RxKind::Broadcast);
    }
}
