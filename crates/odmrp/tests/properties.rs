//! Property tests for ODMRP's soft-state invariants over random
//! topologies and traffic loads.
//!
//! The unit tests in `protocol.rs` pin hand-built line/diamond
//! topologies; these properties assert the protocol's *structural*
//! guarantees on arbitrary node placements:
//!
//! * **Join-Query duplicate suppression** — every node relays a given
//!   `(source, round)` flood at most once and answers it with at most
//!   one Join-Reply, so flood work is linear in nodes × rounds.
//! * **Forwarding-group soft-state expiry** — once the source stops
//!   sending (and therefore stops querying), every forwarding-group
//!   flag dies within `fg_lifetime` of the last refresh.
//! * **Delivery sanity** — members deliver each `(source, seq)` at most
//!   once and never more packets than were sent.

use ag_maodv::{GroupId, TrafficSource};
use ag_mobility::{Mobility, Stationary, Vec2};
use ag_net::{Engine, NodeId, NodeSetup, PhyParams};
use ag_odmrp::{OdmrpConfig, OdmrpProtocol};
use ag_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Builds a static random topology: node `i` at `positions[i]`, even
/// indices are members, node 0 is the member source.
fn build(
    positions: &[(f64, f64)],
    range_m: f64,
    packets: u32,
    seed: u64,
) -> (Engine<OdmrpProtocol>, TrafficSource, OdmrpConfig) {
    let cfg = OdmrpConfig::default_paper();
    let traffic = TrafficSource::compact(
        SimTime::from_secs(20),
        SimDuration::from_millis(200),
        packets,
        64,
    );
    let nodes = positions
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| NodeSetup {
            mobility: Box::new(Stationary::new(Vec2::new(x, y))) as Box<dyn Mobility>,
            protocol: OdmrpProtocol::new(
                cfg,
                NodeId::new(i as u32),
                GroupId(0),
                i % 2 == 0,
                (i == 0).then_some(traffic),
            ),
        })
        .collect();
    (
        Engine::new(PhyParams::paper_default(range_m), seed, nodes),
        traffic,
        cfg,
    )
}

proptest! {
    /// Flood work is bounded by the duplicate-suppression caches:
    /// relays ≤ (nodes − 1) × rounds, replies ≤ nodes × rounds.
    #[test]
    fn join_query_flood_is_duplicate_suppressed(
        positions in prop::collection::vec((0.0f64..300.0, 0.0f64..300.0), 3..9),
        range_m in 60.0f64..140.0,
        packets in 5u32..25,
        seed in 0u64..10_000,
    ) {
        let (mut e, traffic, _) = build(&positions, range_m, packets, seed);
        e.run_until(traffic.end + SimDuration::from_secs(5));
        let c = e.counters();
        let n = positions.len() as u64;
        let rounds = c.get("odmrp.query_originated");
        prop_assert!(rounds > 0, "source must query");
        prop_assert!(
            c.get("odmrp.query_relayed") <= (n - 1) * rounds,
            "relays {} exceed (n-1)·rounds = {}",
            c.get("odmrp.query_relayed"),
            (n - 1) * rounds
        );
        prop_assert!(
            c.get("odmrp.reply_sent") <= n * rounds,
            "replies {} exceed n·rounds = {}",
            c.get("odmrp.reply_sent"),
            n * rounds
        );
    }

    /// Soft state dies: with queries stopped, no node is still in the
    /// forwarding group one `fg_lifetime` (plus propagation slack)
    /// after the last packet; and delivery logs stay duplicate-free
    /// and bounded by what was sent.
    #[test]
    fn forwarding_group_expires_and_delivery_is_sane(
        positions in prop::collection::vec((0.0f64..300.0, 0.0f64..300.0), 3..9),
        range_m in 60.0f64..140.0,
        packets in 5u32..25,
        seed in 0u64..10_000,
    ) {
        let (mut e, traffic, cfg) = build(&positions, range_m, packets, seed);
        e.run_until(traffic.end + cfg.fg_lifetime + SimDuration::from_secs(3));
        let now = e.now();
        for i in 0..positions.len() as u32 {
            let p = e.protocol(NodeId::new(i));
            prop_assert!(
                !p.in_forwarding_group(now),
                "node {i} still in forwarding group at {now:?}"
            );
            prop_assert_eq!(p.delivery().duplicates(), 0, "node {} re-delivered", i);
            prop_assert!(
                p.delivery().distinct() <= packets as u64,
                "node {} delivered {} of {} sent",
                i,
                p.delivery().distinct(),
                packets
            );
        }
    }
}
