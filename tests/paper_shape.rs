//! Shape tests: scaled-down versions of the paper's figures asserting
//! the *qualitative* results the paper reports. Absolute numbers differ
//! from the paper (different radio constants, shorter runs) but the
//! orderings and trends must hold:
//!
//! * Gossip delivers at least as much as bare MAODV (Figs 2–7).
//! * Gossip shrinks the spread across members (all figures' error bars).
//! * Delivery improves with transmission range (Figs 2–3).
//! * Near-total delivery at very low speed with gossip (Fig 4).
//! * Goodput is high — most recovery traffic is useful (Fig 8).
//!
//! Each sweep here runs ~2 seeds at 150 simulated seconds so the whole
//! file stays within a normal `cargo test` budget.

use ag_harness::experiment::sweep_point;
use ag_harness::{figures, run_gossip, Scenario};

const SECS: u64 = 150;
const SEEDS: u64 = 2;

/// Pooled helper: run one scenario point for both protocols.
fn point(sc: &Scenario) -> ag_harness::experiment::SweepPoint {
    sweep_point(sc, 0.0, SEEDS)
}

#[test]
fn gossip_beats_maodv_at_short_range() {
    // Fig 2's left side: sparse connectivity, where the tree suffers.
    let sc = Scenario::paper(40, 50.0, 0.2).with_duration_secs(SECS);
    let p = point(&sc);
    assert!(
        p.gossip.mean() >= p.maodv.mean(),
        "gossip {:.0} must be at least maodv {:.0}",
        p.gossip.mean(),
        p.maodv.mean()
    );
}

#[test]
fn gossip_beats_maodv_at_high_speed() {
    // Fig 5 regime: frequent link breaks.
    let sc = Scenario::paper(40, 75.0, 6.0).with_duration_secs(SECS);
    let p = point(&sc);
    assert!(
        p.gossip.mean() >= p.maodv.mean(),
        "gossip {:.0} vs maodv {:.0}",
        p.gossip.mean(),
        p.maodv.mean()
    );
}

#[test]
fn gossip_reduces_spread_across_members() {
    // The paper's second claim: "the variation in the number of packets
    // received is decreased". Pool a couple of stressed configurations.
    let mut gossip_spread = 0.0;
    let mut maodv_spread = 0.0;
    for (range, speed) in [(50.0, 0.2), (75.0, 4.0)] {
        let sc = Scenario::paper(40, range, speed).with_duration_secs(SECS);
        let p = point(&sc);
        gossip_spread += p.gossip.spread();
        maodv_spread += p.maodv.spread();
    }
    assert!(
        gossip_spread <= maodv_spread,
        "gossip spread {gossip_spread:.0} must not exceed maodv spread {maodv_spread:.0}"
    );
}

#[test]
fn delivery_improves_with_range() {
    // Figs 2–3: both protocols gain from better connectivity. Compare
    // the sparse end against the dense end.
    let lo = point(&Scenario::paper(40, 45.0, 0.2).with_duration_secs(SECS));
    let hi = point(&Scenario::paper(40, 80.0, 0.2).with_duration_secs(SECS));
    assert!(
        hi.gossip.mean() >= lo.gossip.mean(),
        "gossip at 80 m ({:.0}) should beat 45 m ({:.0})",
        hi.gossip.mean(),
        lo.gossip.mean()
    );
    assert!(
        hi.maodv.mean() >= lo.maodv.mean(),
        "maodv at 80 m ({:.0}) should beat 45 m ({:.0})",
        hi.maodv.mean(),
        lo.maodv.mean()
    );
}

#[test]
fn near_total_delivery_at_very_low_speed() {
    // Fig 4: "at very low values of maximum speed … near 100% packet
    // delivery" with gossip.
    let sc = Scenario::paper(40, 75.0, 0.2).with_duration_secs(SECS);
    let p = point(&sc);
    let ratio = p.gossip.mean() / p.sent as f64;
    assert!(
        ratio > 0.9,
        "gossip delivery at 0.2 m/s should be near-total, got {:.0}%",
        100.0 * ratio
    );
}

#[test]
fn goodput_is_high() {
    // Fig 8: goodput close to 100% — recovery traffic is not redundant.
    let sc = Scenario::paper(40, 55.0, 2.0).with_duration_secs(SECS);
    let mut total = 0u64;
    let mut useful = 0u64;
    for seed in 0..SEEDS {
        let r = run_gossip(&sc, seed);
        for m in r.receivers() {
            // goodput_percent is per-member; aggregate raw counts via the
            // ratio (approximate reconstruction is fine at this scale).
            if let Some(g) = m.goodput_percent {
                total += 100;
                useful += g.round() as u64;
            }
        }
    }
    if total > 0 {
        let pct = 100.0 * useful as f64 / total as f64;
        assert!(pct > 80.0, "mean goodput should be high, got {pct:.1}%");
    }
}

#[test]
fn mesh_beats_bare_tree_but_costs_more_transmissions() {
    // §2's related-work claim: "the mesh-based protocol ODMRP provides
    // better packet delivery than tree-based protocols but pays an
    // extra cost for mesh maintenance". Compare ODMRP against bare
    // MAODV under mobility (per delivered packet, ODMRP must transmit
    // more).
    // Delivery under mobility: the mesh's soft state re-forms every
    // query round, so it rides out link breaks the tree must repair.
    let mobile = Scenario::paper(30, 60.0, 2.0).with_duration_secs(SECS);
    let mut odmrp_recv = 0.0;
    let mut maodv_recv = 0.0;
    for seed in 0..SEEDS {
        odmrp_recv += ag_harness::run_odmrp(&mobile, seed)
            .received_summary()
            .mean();
        maodv_recv += ag_harness::run(&mobile, seed, ag_harness::ProtocolKind::Maodv)
            .received_summary()
            .mean();
    }
    assert!(
        odmrp_recv >= maodv_recv,
        "mesh should out-deliver the bare tree: odmrp {odmrp_recv:.0} vs maodv {maodv_recv:.0}"
    );
    // Maintenance cost: in a (quasi-)static network MAODV's multicast
    // control traffic is a handful of joins and then silence, while
    // ODMRP keeps flooding Join-Queries and replies for as long as the
    // source lives — the "extra cost for mesh maintenance".
    let static_net = Scenario::paper(30, 60.0, 0.001).with_duration_secs(SECS);
    let o = ag_harness::run_odmrp(&static_net, 0);
    let m = ag_harness::run(&static_net, 0, ag_harness::ProtocolKind::Maodv);
    let odmrp_control = o.counter("odmrp.query_originated") + o.counter("odmrp.reply_sent");
    let maodv_control = m.counter("maodv.join_rreq")
        + m.counter("maodv.join_rreq_retry")
        + m.counter("maodv.repair_rreq")
        + m.counter("maodv.join_rrep_sent")
        + m.counter("maodv.mact_sent");
    assert!(
        odmrp_control > maodv_control,
        "mesh maintenance must keep paying in a static network: {odmrp_control} vs {maodv_control} control packets"
    );
}

#[test]
fn figure_specs_run_end_to_end_scaled() {
    // Smoke-run every figure spec at a tiny scale so the exact code
    // path used by the binaries is covered by tests.
    for spec in figures::all_line_figures() {
        let mut spec = spec.with_duration_secs(60);
        spec.xs = vec![spec.xs[0], *spec.xs.last().unwrap()];
        let pts = spec.run(1);
        assert_eq!(pts.len(), 2, "{} did not produce both points", spec.id);
        for p in &pts {
            assert!(p.sent > 0);
            assert!(p.gossip.count() > 0 && p.maodv.count() > 0);
        }
    }
    let g8 = figures::fig8(1, 60);
    assert_eq!(g8.len(), 4);
}
