//! City scale: the full stack from 500 nodes to a metropolis.
//!
//! The paper evaluates 40–100 nodes on 200 m × 200 m. This example runs
//! the same full stack (MAODV multicast + Anonymous Gossip recovery) at
//! orders of magnitude more nodes, which is only tractable because
//! the engine's receiver and collision lookups go through the uniform-
//! grid spatial index (`crates/net/src/grid.rs`).
//!
//! Two parts:
//!
//! 1. An engine-only beacon workload at N = 500, timed through the grid
//!    index and through the brute-force scans, to show the raw engine
//!    speedup (both produce identical simulations). This part stays at
//!    500 nodes whatever `AG_NODES` says — brute force is O(n²) and the
//!    point is the index, not the scale.
//! 2. The full gossip stack on [`Scenario::city_scale`], grid-backed,
//!    at `AG_NODES` nodes (default 500) for `AG_SIM_SECS` simulated
//!    seconds (default 60). The field grows with the population so
//!    local density stays at 500 nodes/km². Member outcomes fold into
//!    streaming [`RunStats`] accumulators, and the run reports peak RSS
//!    and kernel events/second at exit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example city_scale
//! AG_NODES=100000 AG_SIM_SECS=20 cargo run --release --example city_scale
//! ```

// Wall-clock use here is driver-side progress reporting only; the
// simulation itself tells time exclusively via SimTime (the ag-lint
// waivers at each call site say the same to the first lint layer).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_bench::{beacon_engine, perf::peak_rss_kb};
use ag_harness::{report, run_gossip_counting, RunStats, Scenario};
use ag_sim::SimTime;

const BEACON_NODES: usize = 500;

fn main() {
    // ── Part 1: raw engine throughput, grid vs brute force. ──
    let beacon_secs = 5;
    println!("engine throughput: {BEACON_NODES} beaconing nodes, {beacon_secs} s simulated");
    let mut wall = [0.0f64; 2];
    for (i, (label, spatial)) in [("grid", true), ("brute", false)].iter().enumerate() {
        // ag-lint: allow(wall-clock) -- driver-side progress timing, outside the simulation
        let t0 = Instant::now();
        let mut engine = beacon_engine(BEACON_NODES, 1, *spatial);
        engine.run_until(SimTime::from_secs(beacon_secs));
        wall[i] = t0.elapsed().as_secs_f64();
        let heard: u64 = engine.protocols().iter().map(|p| p.heard).sum();
        println!(
            "  {label:>5}: {:>7.2} s wall, {heard} beacons heard, {} collisions",
            wall[i],
            engine.counters().get("mac.rx_collision"),
        );
    }
    println!("  speedup: {:.1}x\n", wall[1] / wall[0]);

    // ── Part 2: the full gossip stack at city (or metropolis) scale. ──
    let nodes = report::env_nodes(500);
    let sim_secs = report::env_sim_secs_or(60);
    let sc = Scenario::city_scale(nodes).with_duration_secs(sim_secs);
    println!(
        "full stack: {} nodes, {} members, {:.0} m x {:.0} m, range {} m, {} s simulated",
        sc.nodes,
        sc.member_count,
        sc.field.width(),
        sc.field.height(),
        sc.range_m,
        sim_secs
    );
    // ag-lint: allow(wall-clock) -- driver-side progress timing, outside the simulation
    let t0 = Instant::now();
    let (result, events) = run_gossip_counting(&sc, 7);
    let wall = t0.elapsed().as_secs_f64();

    // Fold the per-member records into the constant-size streaming
    // accumulators; from here on memory no longer scales with N.
    let mut stats = RunStats::new();
    stats.absorb(&result);
    drop(result);

    // Deterministic simulation results and wall-clock figures stay on
    // separate lines on purpose: the CI scale-smoke job diffs this
    // output across AG_THREADS values, filtering lines that mention
    // wall time — everything else must be byte-identical.
    println!("  {wall:.2} s wall");
    println!(
        "  source sent {} packets, mean delivery {:.1} %",
        stats.sent,
        100.0 * stats.delivery_ratio()
    );
    let rx = stats.receivers.get("received");
    println!(
        "  packets per receiver: mean {:.1}, min {:.0}, max {:.0}",
        rx.mean(),
        rx.min(),
        rx.max()
    );
    for key in [
        "mac.broadcast_tx",
        "mac.unicast_tx",
        "mac.rx_delivered",
        "mac.rx_collision",
        "mob.transition",
    ] {
        println!("  {key}: {}", stats.counter(key));
    }
    println!("  events: {events} kernel events");
    println!("  {:.0} events/s wall", events as f64 / wall.max(1e-9));
    println!("  peak rss: {} KiB", peak_rss_kb());
}
