//! must-fire: every default-hasher shape the det-hash rule polices.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

pub fn build() -> u32 {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    let _seen: HashSet<u32> = HashSet::new();
    let _heap = std::collections::BinaryHeap::<u32>::new();
    let _state = std::collections::hash_map::RandomState::new();
    let _ordered: BTreeMap<u32, u32> = BTreeMap::new();
    m.len() as u32
}
