//! The rectangular simulation area.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Vec2;

/// An axis-aligned rectangular field `[0, width] × [0, height]`, in metres.
///
/// The paper uses a fixed 200 m × 200 m field (§5.1).
///
/// # Example
///
/// ```
/// use ag_mobility::{Field, Vec2};
/// let f = Field::new(200.0, 200.0);
/// assert!(f.contains(Vec2::new(100.0, 100.0)));
/// assert!(!f.contains(Vec2::new(-1.0, 0.0)));
/// assert_eq!(f.area(), 40_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Creates a field of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "invalid field width {width}"
        );
        assert!(
            height > 0.0 && height.is_finite(),
            "invalid field height {height}"
        );
        Field { width, height }
    }

    /// The paper's 200 m × 200 m field.
    pub fn paper() -> Self {
        Field::new(200.0, 200.0)
    }

    /// Field width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height in metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Field area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// `true` if `p` lies inside the field (boundary inclusive).
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` to the field.
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Draws a uniformly random point in the field.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec2 {
        Vec2::new(
            rng.random_range(0.0..=self.width),
            rng.random_range(0.0..=self.height),
        )
    }

    /// The longest possible distance between two points in the field.
    pub fn diagonal(&self) -> f64 {
        self.width.hypot(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_sim::rng::{SeedSplitter, StreamKind};
    use proptest::prelude::*;

    #[test]
    fn paper_field_dimensions() {
        let f = Field::paper();
        assert_eq!(f.width(), 200.0);
        assert_eq!(f.height(), 200.0);
        assert_eq!(f.area(), 40_000.0);
        assert!((f.diagonal() - 200.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn contains_boundary() {
        let f = Field::new(10.0, 20.0);
        assert!(f.contains(Vec2::ZERO));
        assert!(f.contains(Vec2::new(10.0, 20.0)));
        assert!(!f.contains(Vec2::new(10.1, 5.0)));
        assert!(!f.contains(Vec2::new(5.0, -0.1)));
    }

    #[test]
    fn clamp_moves_points_inside() {
        let f = Field::new(10.0, 10.0);
        assert_eq!(f.clamp(Vec2::new(-5.0, 15.0)), Vec2::new(0.0, 10.0));
        assert_eq!(f.clamp(Vec2::new(3.0, 4.0)), Vec2::new(3.0, 4.0));
    }

    #[test]
    fn uniform_samples_inside() {
        let f = Field::paper();
        let mut rng = SeedSplitter::new(5).stream(StreamKind::Placement, 0);
        for _ in 0..1000 {
            assert!(f.contains(f.sample_uniform(&mut rng)));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_width() {
        let _ = Field::new(0.0, 10.0);
    }

    proptest! {
        #[test]
        fn prop_clamp_idempotent(x in -1e3f64..1e3, y in -1e3f64..1e3) {
            let f = Field::new(100.0, 50.0);
            let c = f.clamp(Vec2::new(x, y));
            prop_assert!(f.contains(c));
            prop_assert_eq!(f.clamp(c), c);
        }
    }
}
