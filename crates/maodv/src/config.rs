//! Protocol constants.

use ag_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// MAODV timing and retry parameters.
///
/// Defaults follow the paper's §5.1 settings (hello interval 600 ms,
/// allowed hello loss 4, group hello 5 s); the rest take the draft-05
/// defaults scaled to the paper's small network.
///
/// # Example
///
/// ```
/// use ag_maodv::MaodvConfig;
/// let cfg = MaodvConfig::paper_default();
/// assert_eq!(cfg.allowed_hello_loss, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaodvConfig {
    /// Interval between HELLO broadcasts (paper: 600 ms).
    pub hello_interval: SimDuration,
    /// Missed hellos before a neighbour link is declared broken (paper: 4).
    pub allowed_hello_loss: u32,
    /// Interval between the leader's group hellos (paper: 5 s).
    pub group_hello_interval: SimDuration,
    /// Housekeeping tick driving timeouts and retries.
    pub tick_interval: SimDuration,
    /// How long a join/repair attempt collects RREPs before selecting.
    pub rrep_wait: SimDuration,
    /// RREQ retransmissions before giving up (then: become leader /
    /// declare partition for joins, fail discovery for unicast).
    pub rreq_retries: u32,
    /// TTL on RREQ floods and GRPH floods.
    pub flood_ttl: u8,
    /// Unicast route lifetime; refreshed on every use.
    pub active_route_timeout: SimDuration,
    /// Maximum random delay before a member's initial join (de-synchronizes
    /// the t = 0 join storm).
    pub join_jitter: SimDuration,
    /// Capacity of the duplicate-data suppression cache.
    pub data_seen_capacity: usize,
    /// Capacity of the RREQ duplicate-suppression cache.
    pub rreq_seen_capacity: usize,
    /// Packets buffered per destination while route discovery runs.
    pub discovery_buffer: usize,
    /// `nearest_member` distances saturate here ("no member known").
    pub nearest_member_infinity: u8,
}

impl MaodvConfig {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        MaodvConfig {
            hello_interval: SimDuration::from_millis(600),
            allowed_hello_loss: 4,
            group_hello_interval: SimDuration::from_secs(5),
            tick_interval: SimDuration::from_millis(200),
            rrep_wait: SimDuration::from_millis(600),
            rreq_retries: 3,
            flood_ttl: 16,
            active_route_timeout: SimDuration::from_secs(3),
            join_jitter: SimDuration::from_secs(2),
            data_seen_capacity: 2048,
            rreq_seen_capacity: 1024,
            discovery_buffer: 8,
            nearest_member_infinity: 32,
        }
    }

    /// Link timeout implied by the hello settings.
    pub fn neighbor_timeout(&self) -> SimDuration {
        self.hello_interval * self.allowed_hello_loss as u64
    }
}

impl Default for MaodvConfig {
    fn default() -> Self {
        MaodvConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let c = MaodvConfig::paper_default();
        assert_eq!(c.hello_interval, SimDuration::from_millis(600));
        assert_eq!(c.allowed_hello_loss, 4);
        assert_eq!(c.group_hello_interval, SimDuration::from_secs(5));
        assert_eq!(c.neighbor_timeout(), SimDuration::from_millis(2400));
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MaodvConfig::default(), MaodvConfig::paper_default());
    }
}
