//! A bounded FIFO duplicate-suppression cache.
//!
//! Used for RREQ flood ids, data `(origin, seq)` pairs and GRPH rounds.
//! The capacity only needs to exceed the in-flight window, not the run
//! length; eviction is strict FIFO which is deterministic and cheap.

use std::collections::VecDeque;

use ag_sim::hash::DetHashSet as HashSet;
use std::hash::Hash;

/// Bounded set remembering the most recently inserted keys.
///
/// # Example
///
/// ```
/// use ag_maodv::seen::SeenCache;
/// let mut s = SeenCache::new(2);
/// assert!(s.insert(1));
/// assert!(!s.insert(1)); // duplicate
/// assert!(s.insert(2));
/// assert!(s.insert(3)); // evicts 1
/// assert!(s.insert(1));
/// ```
#[derive(Debug, Clone)]
pub struct SeenCache<K> {
    set: HashSet<K>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone> SeenCache<K> {
    /// Creates a cache remembering up to `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "seen cache needs capacity");
        // `capacity` bounds eviction, not allocation: storage starts
        // empty and grows on demand. A metropolis run builds millions
        // of these caches and most nodes never relay enough distinct
        // keys to fill one, so preallocating `capacity` slots would
        // dominate per-node memory (it used to cost ~40 KiB/node).
        // The set is membership-only (never iterated), so its bucket
        // count cannot influence behaviour.
        SeenCache {
            set: HashSet::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Inserts `key`; returns `true` if it was *not* already present.
    pub fn insert(&mut self, key: K) -> bool {
        if self.set.contains(&key) {
            return false;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(key.clone());
        self.order.push_back(key);
        true
    }

    /// `true` if `key` is currently remembered.
    pub fn contains(&self, key: &K) -> bool {
        self.set.contains(key)
    }

    /// Number of remembered keys.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` if nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dedupes() {
        let mut s = SeenCache::new(4);
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        assert!(s.contains(&"a"));
        assert!(!s.contains(&"b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_fifo() {
        let mut s = SeenCache::new(3);
        for k in 0..3 {
            assert!(s.insert(k));
        }
        s.insert(3); // evicts 0
        assert!(!s.contains(&0));
        assert!(s.contains(&1));
        assert!(s.contains(&3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = SeenCache::<u8>::new(0);
    }

    proptest! {
        /// Size never exceeds capacity and set/order stay consistent.
        #[test]
        fn prop_bounded(keys in prop::collection::vec(0u16..50, 0..300), cap in 1usize..16) {
            let mut s = SeenCache::new(cap);
            for k in keys {
                s.insert(k);
                prop_assert!(s.len() <= cap);
            }
        }

        /// Within any window of `cap` *distinct* fresh inserts, a key
        /// inserted twice without eviction in between reports duplicate.
        #[test]
        fn prop_recent_duplicates_detected(k in 0u16..100, cap in 2usize..8) {
            let mut s = SeenCache::new(cap);
            prop_assert!(s.insert(k));
            prop_assert!(!s.insert(k));
        }
    }
}
