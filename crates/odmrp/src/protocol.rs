//! The ODMRP node: soft-state mesh multicast.

use ag_sim::hash::DetHashMap as HashMap;

use ag_maodv::delivery::{DeliveryLog, DeliveryPath};
use ag_maodv::seen::SeenCache;
use ag_maodv::{GroupId, TrafficSource};
use ag_net::{NodeId, ProtoCtx, Protocol, RxKind, TimerKey};
use ag_sim::{SimDuration, SimTime};

use crate::{OdmrpConfig, OdmrpMsg};

const TIMER_QUERY: TimerKey = 1;
const TIMER_TRAFFIC: TimerKey = 2;
const TIMER_RELAY: TimerKey = 3;

/// Backward-learning entry: how to reach `source` (learned from its
/// Join-Query flood).
#[derive(Debug, Clone, Copy)]
struct BackRoute {
    prev_hop: NodeId,
    expires: SimTime,
}

/// One ODMRP node (member, source, forwarding-group node or bystander).
///
/// # Example
///
/// ```
/// use ag_odmrp::{OdmrpProtocol, OdmrpConfig};
/// use ag_maodv::{GroupId, TrafficSource};
/// use ag_net::{Engine, NodeSetup, NodeId, PhyParams};
/// use ag_mobility::{Stationary, Vec2};
/// use ag_sim::{SimTime, SimDuration};
///
/// let cfg = OdmrpConfig::default_paper();
/// let t = TrafficSource::compact(SimTime::from_secs(20), SimDuration::from_millis(200), 25, 64);
/// let nodes = vec![
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
///         protocol: OdmrpProtocol::new(cfg, NodeId::new(0), GroupId(0), true, Some(t)),
///     },
///     NodeSetup {
///         mobility: Box::new(Stationary::new(Vec2::new(40.0, 0.0))),
///         protocol: OdmrpProtocol::new(cfg, NodeId::new(1), GroupId(0), true, None),
///     },
/// ];
/// let mut e = Engine::new(PhyParams::paper_default(75.0), 5, nodes);
/// e.run_until(SimTime::from_secs(30));
/// assert_eq!(e.protocol(NodeId::new(1)).delivery().distinct(), 25);
/// ```
#[derive(Debug, Clone)]
pub struct OdmrpProtocol {
    cfg: OdmrpConfig,
    id: NodeId,
    group: GroupId,
    is_member: bool,
    traffic: Option<TrafficSource>,
    /// Forwarding-group membership expires here (soft state).
    fg_until: SimTime,
    query_round: u32,
    data_seq: u32,
    back_routes: HashMap<NodeId, BackRoute>,
    query_seen: SeenCache<(NodeId, u32)>,
    /// Join-Replies already propagated, per (source, round).
    reply_sent: SeenCache<(NodeId, u32)>,
    data_seen: SeenCache<(NodeId, u32)>,
    delivery: DeliveryLog,
    relay_queue: std::collections::VecDeque<OdmrpMsg>,
    /// Seeded-bug canary (always `false` in production): when set, a
    /// Join-Reply nominating this node does *not* refresh `fg_until`,
    /// so the forwarding group silently decays. `ag-check` asserts its
    /// delivery property catches exactly this mutation.
    canary_skip_fg_refresh: bool,
}

impl OdmrpProtocol {
    /// Creates a node; `traffic` makes it a multicast source.
    pub fn new(
        cfg: OdmrpConfig,
        id: NodeId,
        group: GroupId,
        is_member: bool,
        traffic: Option<TrafficSource>,
    ) -> Self {
        OdmrpProtocol {
            cfg,
            id,
            group,
            is_member,
            traffic,
            fg_until: SimTime::ZERO,
            query_round: 0,
            data_seq: 0,
            back_routes: HashMap::default(),
            query_seen: SeenCache::new(cfg.seen_capacity),
            reply_sent: SeenCache::new(cfg.seen_capacity),
            data_seen: SeenCache::new(cfg.seen_capacity),
            delivery: DeliveryLog::new(),
            relay_queue: std::collections::VecDeque::new(),
            canary_skip_fg_refresh: false,
        }
    }

    /// Packets this member received (de-duplicated).
    pub fn delivery(&self) -> &DeliveryLog {
        &self.delivery
    }

    /// Whether the node is currently in the forwarding group.
    pub fn in_forwarding_group(&self, now: SimTime) -> bool {
        self.fg_until > now
    }

    /// Whether this node is a group member.
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    /// Arms the skip-FG-refresh seeded bug (model-checking canary only).
    #[cfg(any(test, feature = "bug-canary"))]
    pub fn canary_skip_fg_refresh(&mut self) {
        self.canary_skip_fg_refresh = true;
    }

    fn schedule_relay<C: ProtoCtx<OdmrpMsg>>(&mut self, api: &mut C, msg: OdmrpMsg) {
        self.relay_queue.push_back(msg);
        let delay = SimDuration::from_micros(api.jitter(10_000));
        api.set_timer(delay, TIMER_RELAY);
    }

    fn flood_query<C: ProtoCtx<OdmrpMsg>>(&mut self, api: &mut C) {
        self.query_round += 1;
        self.query_seen.insert((self.id, self.query_round));
        api.count("odmrp.query_originated");
        api.broadcast(OdmrpMsg::JoinQuery {
            group: self.group,
            source: self.id,
            round: self.query_round,
            hops: 0,
            ttl: self.cfg.flood_ttl,
        });
    }

    /// Sends the Join-Reply nominating our backward hop toward `source`
    /// (members answer queries; forwarding-group nodes cascade).
    fn send_reply<C: ProtoCtx<OdmrpMsg>>(&mut self, api: &mut C, source: NodeId, round: u32) {
        if source == self.id {
            return;
        }
        if !self.reply_sent.insert((source, round)) {
            return;
        }
        let Some(route) = self.back_routes.get(&source) else {
            return;
        };
        if route.expires <= api.now() {
            return;
        }
        api.count("odmrp.reply_sent");
        api.broadcast(OdmrpMsg::JoinReply {
            group: self.group,
            source,
            round,
            next_hop: route.prev_hop,
        });
    }
}

impl Protocol for OdmrpProtocol {
    type Msg = OdmrpMsg;

    fn start<C: ProtoCtx<OdmrpMsg>>(&mut self, api: &mut C) {
        if let Some(t) = self.traffic {
            // Queries lead the data by one interval so the mesh exists
            // when the first packet goes out.
            let lead = t
                .start
                .duration_since(SimTime::ZERO)
                .as_nanos()
                .saturating_sub(self.cfg.query_interval.as_nanos());
            api.set_timer(SimDuration::from_nanos(lead), TIMER_QUERY);
            api.set_timer(t.start.duration_since(SimTime::ZERO), TIMER_TRAFFIC);
        }
    }

    fn on_packet<C: ProtoCtx<OdmrpMsg>>(
        &mut self,
        api: &mut C,
        from: NodeId,
        msg: OdmrpMsg,
        _rx: RxKind,
    ) {
        let now = api.now();
        match msg {
            OdmrpMsg::JoinQuery {
                group,
                source,
                round,
                hops,
                ttl,
            } => {
                if group != self.group || source == self.id {
                    return;
                }
                if !self.query_seen.insert((source, round)) {
                    return;
                }
                // Backward learning.
                self.back_routes.insert(
                    source,
                    BackRoute {
                        prev_hop: from,
                        expires: now + self.cfg.route_lifetime,
                    },
                );
                if self.is_member {
                    self.send_reply(api, source, round);
                }
                if ttl > 1 {
                    api.count("odmrp.query_relayed");
                    self.schedule_relay(
                        api,
                        OdmrpMsg::JoinQuery {
                            group,
                            source,
                            round,
                            hops: hops.saturating_add(1),
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            OdmrpMsg::JoinReply {
                group,
                source,
                round,
                next_hop,
            } => {
                if group != self.group {
                    return;
                }
                // Someone nominated us: we are (still) forwarding group.
                if next_hop == self.id && source != self.id {
                    if !self.canary_skip_fg_refresh {
                        self.fg_until = now + self.cfg.fg_lifetime;
                        api.count("odmrp.fg_refreshed");
                    }
                    self.send_reply(api, source, round);
                }
            }
            OdmrpMsg::Data {
                group,
                source,
                seq,
                payload_len,
            } => {
                if group != self.group || source == self.id {
                    return;
                }
                if !self.data_seen.insert((source, seq)) {
                    api.count("odmrp.data_duplicate");
                    return;
                }
                if self.is_member {
                    self.delivery.record(source, seq, DeliveryPath::Tree);
                }
                if self.in_forwarding_group(now) {
                    api.count("odmrp.data_forwarded");
                    // Jittered: redundant mesh forwarders are often
                    // mutually hidden, and synchronized forwards would
                    // collide at the receivers between them.
                    self.schedule_relay(
                        api,
                        OdmrpMsg::Data {
                            group,
                            source,
                            seq,
                            payload_len,
                        },
                    );
                }
            }
        }
    }

    fn on_timer<C: ProtoCtx<OdmrpMsg>>(&mut self, api: &mut C, key: TimerKey) {
        match key {
            TIMER_QUERY => {
                if let Some(t) = self.traffic {
                    if api.now() <= t.end {
                        self.flood_query(api);
                        api.set_timer(self.cfg.query_interval, TIMER_QUERY);
                    }
                }
            }
            TIMER_TRAFFIC => {
                if let Some(t) = self.traffic {
                    if api.now() <= t.end {
                        self.data_seq += 1;
                        self.data_seen.insert((self.id, self.data_seq));
                        self.delivery
                            .record(self.id, self.data_seq, DeliveryPath::Tree);
                        api.count("odmrp.data_originated");
                        api.broadcast(OdmrpMsg::Data {
                            group: self.group,
                            source: self.id,
                            seq: self.data_seq,
                            payload_len: t.payload_len,
                        });
                        api.set_timer(t.interval, TIMER_TRAFFIC);
                    }
                }
            }
            TIMER_RELAY => {
                if let Some(msg) = self.relay_queue.pop_front() {
                    api.broadcast(msg);
                }
            }
            _ => {}
        }
    }

    fn on_send_failure<C: ProtoCtx<OdmrpMsg>>(
        &mut self,
        _api: &mut C,
        _to: NodeId,
        _msg: OdmrpMsg,
    ) {
        // ODMRP is broadcast-only; nothing unicasts, so nothing fails.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_mobility::{Mobility, Stationary, Vec2};
    use ag_net::{Engine, NodeSetup, PhyParams};

    fn stationary(x: f64, y: f64) -> Box<dyn Mobility> {
        Box::new(Stationary::new(Vec2::new(x, y)))
    }

    fn build(
        positions: &[(f64, f64)],
        members: &[usize],
        source: usize,
        traffic: TrafficSource,
        range: f64,
        seed: u64,
    ) -> Engine<OdmrpProtocol> {
        let cfg = OdmrpConfig::default_paper();
        let nodes = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| NodeSetup {
                mobility: stationary(x, y),
                protocol: OdmrpProtocol::new(
                    cfg,
                    NodeId::new(i as u32),
                    GroupId(0),
                    members.contains(&i),
                    (i == source).then_some(traffic),
                ),
            })
            .collect();
        Engine::new(PhyParams::paper_default(range), seed, nodes)
    }

    #[test]
    fn adjacent_members_deliver_without_forwarding_group() {
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            30,
            64,
        );
        let mut e = build(&[(0.0, 0.0), (40.0, 0.0)], &[0, 1], 0, t, 75.0, 1);
        e.run_until(SimTime::from_secs(30));
        assert_eq!(e.protocol(NodeId::new(1)).delivery().distinct(), 30);
    }

    #[test]
    fn relay_joins_forwarding_group_and_forwards() {
        // S — R — M chain: R must be nominated into the forwarding group
        // by M's Join-Reply and relay the data.
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            40,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
            &[0, 2],
            0,
            t,
            100.0,
            2,
        );
        e.run_until(SimTime::from_secs(30));
        let r = e.protocol(NodeId::new(1));
        assert!(
            r.in_forwarding_group(e.now()),
            "relay must be in the forwarding group"
        );
        assert!(!r.is_member());
        assert_eq!(e.protocol(NodeId::new(2)).delivery().distinct(), 40);
        assert!(e.counters().get("odmrp.data_forwarded") > 0);
    }

    #[test]
    fn mesh_nominates_a_path_each_round() {
        // Diamond: S at left, M at right, two disjoint relays. Every
        // query round nominates M's current backward hop, so at least
        // one relay is always in the forwarding group and delivery is
        // complete; across rounds the nominated relay may alternate
        // (that per-round re-selection is ODMRP's soft-state repair).
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            20,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 60.0), (80.0, -60.0), (160.0, 0.0)],
            &[0, 3],
            0,
            t,
            110.0,
            3,
        );
        e.run_until(SimTime::from_secs(30));
        let any_fg = e.protocol(NodeId::new(1)).in_forwarding_group(e.now())
            || e.protocol(NodeId::new(2)).in_forwarding_group(e.now());
        assert!(any_fg, "a diamond relay must carry the mesh");
        assert_eq!(e.protocol(NodeId::new(3)).delivery().distinct(), 20);
    }

    #[test]
    fn forwarding_group_expires_without_refresh() {
        // After the source stops sending (and hence stops querying), the
        // forwarding-group soft state must time out.
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            10,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
            &[0, 2],
            0,
            t,
            100.0,
            4,
        );
        e.run_until(SimTime::from_secs(60));
        assert!(
            !e.protocol(NodeId::new(1)).in_forwarding_group(e.now()),
            "soft state should expire once queries stop"
        );
    }

    #[test]
    fn duplicate_data_is_counted_once() {
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            20,
            64,
        );
        let mut e = build(
            &[(0.0, 0.0), (80.0, 60.0), (80.0, -60.0), (160.0, 0.0)],
            &[0, 3],
            0,
            t,
            110.0,
            5,
        );
        e.run_until(SimTime::from_secs(30));
        // Redundant mesh copies may arrive (that's the mesh's price) but
        // every packet is *delivered* at most once; a couple of packets
        // may be lost when both hidden forwarders' jitters coincide.
        assert!(e.protocol(NodeId::new(3)).delivery().distinct() >= 18);
        // The MAC-level duplicate suppression means the app-level log
        // never sees re-deliveries of the same (source, seq).
        assert_eq!(e.protocol(NodeId::new(3)).delivery().duplicates(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let t = TrafficSource::compact(
            SimTime::from_secs(20),
            SimDuration::from_millis(200),
            15,
            64,
        );
        let run = |seed| {
            let mut e = build(
                &[(0.0, 0.0), (70.0, 0.0), (140.0, 0.0)],
                &[0, 2],
                0,
                t,
                90.0,
                seed,
            );
            e.run_until(SimTime::from_secs(30));
            (
                e.protocol(NodeId::new(2)).delivery().distinct(),
                e.counters().iter().collect::<Vec<_>>().len(),
            )
        };
        assert_eq!(run(6), run(6));
    }
}
