//! Differential test: the grid-indexed engine must be *behaviourally
//! identical* to the brute-force engine — same deliveries, same
//! failures, same timer firings, same counters — over random scenarios
//! and seeds. The spatial index is a pure query accelerator; any
//! divergence here is a bug in the index, not a tuning trade-off.

use ag_mobility::{
    Field, Mobility, PauseRange, RandomWalk, RandomWaypoint, SpeedRange, Stationary, Vec2,
};
use ag_net::{
    ChurnParams, Engine, Message, NodeId, NodeSetup, PhyParams, ProtoCtx, Protocol, ReceptionModel,
    RxKind, TimerKey,
};
use ag_sim::rng::{SeedSplitter, StreamKind};
use ag_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A payload with a configurable wire size (drives airtime and thus
/// collision windows).
#[derive(Clone, Debug, PartialEq)]
struct Blob {
    tag: u32,
    size: usize,
}

impl Message for Blob {
    fn wire_size(&self) -> usize {
        self.size
    }
}

/// A traffic generator that keeps the channel busy: every `interval`,
/// each node alternates between broadcasting and unicasting to its ring
/// neighbour, and logs everything it observes.
#[derive(Debug)]
struct Chatter {
    interval: SimDuration,
    node_count: u32,
    payload: usize,
    sent: u32,
    received: Vec<(SimTime, NodeId, u32, RxKind)>,
    failures: Vec<(NodeId, u32)>,
}

impl Chatter {
    fn new(interval_ms: u64, node_count: u32, payload: usize) -> Self {
        Chatter {
            interval: SimDuration::from_millis(interval_ms),
            node_count,
            payload,
            sent: 0,
            received: Vec::new(),
            failures: Vec::new(),
        }
    }
}

impl Protocol for Chatter {
    type Msg = Blob;

    fn start<C: ProtoCtx<Blob>>(&mut self, api: &mut C) {
        // Stagger first transmissions by node id so not everyone keys up
        // at the same instant.
        let offset = SimDuration::from_millis(7 * (api.id().raw() as u64 + 1));
        api.set_timer(offset, 0);
    }

    fn on_packet<C: ProtoCtx<Blob>>(&mut self, api: &mut C, from: NodeId, msg: Blob, rx: RxKind) {
        self.received.push((api.now(), from, msg.tag, rx));
    }

    fn on_timer<C: ProtoCtx<Blob>>(&mut self, api: &mut C, _key: TimerKey) {
        self.sent += 1;
        let tag = api.id().raw() * 100_000 + self.sent;
        if self.sent.is_multiple_of(3) && self.node_count > 1 {
            let dest = NodeId::new((api.id().raw() + 1) % self.node_count);
            api.send(
                dest,
                Blob {
                    tag,
                    size: self.payload,
                },
            );
        } else {
            api.broadcast(Blob {
                tag,
                size: self.payload,
            });
        }
        api.set_timer(self.interval, 0);
    }

    fn on_send_failure<C: ProtoCtx<Blob>>(&mut self, _api: &mut C, to: NodeId, msg: Blob) {
        self.failures.push((to, msg.tag));
    }
}

/// Builds one node's mobility model; the mix (waypoint / walk /
/// stationary) exercises moving-segment, short-epoch and point buckets.
fn mobility_for(seed: u64, node: usize, field: Field, max_speed: f64) -> Box<dyn Mobility> {
    let mut rng = SeedSplitter::new(seed).stream(StreamKind::Placement, node as u64);
    match node % 3 {
        0 => Box::new(RandomWaypoint::new(
            field,
            SpeedRange::new(0.0, max_speed),
            PauseRange::uniform_secs(0.0, 4.0),
            &mut rng,
        )),
        1 => Box::new(RandomWalk::new(
            field,
            SpeedRange::new(0.5, max_speed.max(1.0)),
            SimDuration::from_secs(3),
            &mut rng,
        )),
        _ => Box::new(Stationary::random(field, &mut rng)),
    }
}

type RxLog = Vec<(SimTime, NodeId, u32, RxKind)>;
type FailLog = Vec<(NodeId, u32)>;

struct Outcome {
    per_node: Vec<(RxLog, FailLog, u32)>,
    counters: Vec<(&'static str, u64)>,
    positions: Vec<Vec2>,
}

/// One random scenario's knobs.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    seed: u64,
    nodes: usize,
    field_m: f64,
    range_m: f64,
    max_speed: f64,
    payload: usize,
    sim_secs: u64,
    /// 0 = ideal, 1 = distance-graded PER, 2 = log-normal shadowing.
    reception_kind: u8,
    /// Churn (mean up, mean down) in seconds; `None` for no churn.
    churn_secs: Option<(f64, f64)>,
}

impl Knobs {
    fn reception(&self) -> ReceptionModel {
        match self.reception_kind % 3 {
            0 => ReceptionModel::Ideal,
            1 => ReceptionModel::DistanceGraded { edge_per: 0.7 },
            _ => ReceptionModel::Shadowing {
                sigma_db: 8.0,
                path_loss_exp: 3.0,
            },
        }
    }
}

fn run_once(k: Knobs, spatial: bool) -> Outcome {
    run_engine(k, spatial, 1).0
}

/// Runs a scenario with `threads` precompute workers (1 = serial). With
/// more than one worker, the batch floor is dropped to 1 so the tiled
/// layer engages even in these tiny scenarios. Returns the outcome and
/// how many `TxEnd`s were served from validated precomputed sets.
fn run_engine(k: Knobs, spatial: bool, threads: usize) -> (Outcome, u64) {
    let field = Field::new(k.field_m, k.field_m);
    let setups = (0..k.nodes)
        .map(|i| NodeSetup {
            mobility: mobility_for(k.seed, i, field, k.max_speed),
            protocol: Chatter::new(40 + 13 * (i as u64 % 5), k.nodes as u32, k.payload),
        })
        .collect();
    let mut phy = PhyParams::paper_default(k.range_m)
        .with_spatial_index(spatial)
        .with_reception(k.reception());
    if let Some((up, down)) = k.churn_secs {
        phy = phy.with_churn(ChurnParams::new(up, down));
    }
    let mut engine = Engine::new(phy, k.seed, setups);
    if threads > 1 {
        engine.set_threads(threads);
        engine.set_parallel_batch_floor(1);
    }
    engine.run_until(SimTime::from_secs(k.sim_secs));
    let outcome = Outcome {
        per_node: engine
            .protocols()
            .iter()
            .map(|p| (p.received.clone(), p.failures.clone(), p.sent))
            .collect(),
        counters: engine.counters().iter().collect(),
        positions: (0..k.nodes)
            .map(|i| engine.position_of(NodeId::new(i as u32)))
            .collect(),
    };
    (outcome, engine.parallel_hits())
}

proptest! {
    /// Grid-indexed and brute-force engines agree event-for-event over
    /// random node counts, field sizes, ranges, speeds, payloads,
    /// seeds, reception models and churn schedules. The stress knobs
    /// ride the same proptest so the equivalence holds under hostile
    /// channels, not just the paper's ideal one.
    #[test]
    fn grid_path_is_identical_to_brute_force(
        seed in 0u64..10_000,
        nodes in 2usize..12,
        field_m in 80.0f64..600.0,
        range_m in 30.0f64..120.0,
        max_speed in 0.2f64..25.0,
        payload in 32usize..1500,
        reception_kind in 0u8..3,
        churn in proptest::option::of((2.0f64..20.0, 1.0f64..8.0)),
    ) {
        let k = Knobs {
            seed, nodes, field_m, range_m, max_speed, payload, sim_secs: 12,
            reception_kind, churn_secs: churn,
        };
        let grid = run_once(k, true);
        let brute = run_once(k, false);
        prop_assert_eq!(&grid.counters, &brute.counters, "counters diverged");
        for (i, (g, b)) in grid.per_node.iter().zip(&brute.per_node).enumerate() {
            prop_assert_eq!(g.2, b.2, "node {} send count diverged", i);
            prop_assert_eq!(&g.1, &b.1, "node {} failures diverged", i);
            prop_assert_eq!(&g.0, &b.0, "node {} receptions diverged", i);
        }
        prop_assert_eq!(&grid.positions, &brute.positions, "final positions diverged");
    }

    /// The tile-sharded parallel precompute layer must be a pure
    /// wall-clock optimisation: for any worker/tile count the run is
    /// byte-identical to the serial engine, across random node counts,
    /// reception models and churn schedules. Stamp validation is what
    /// makes this hold — a precomputed receiver set is only consumed
    /// when the world provably didn't change under it — so this test
    /// hammers exactly that machinery.
    #[test]
    fn tiled_path_is_identical_to_serial(
        seed in 0u64..10_000,
        nodes in 4usize..16,
        field_m in 80.0f64..400.0,
        range_m in 40.0f64..120.0,
        max_speed in 0.2f64..25.0,
        payload in 200usize..1500,
        threads in 2usize..7,
        reception_kind in 0u8..3,
        churn in proptest::option::of((2.0f64..20.0, 1.0f64..8.0)),
    ) {
        let k = Knobs {
            seed, nodes, field_m, range_m, max_speed, payload, sim_secs: 12,
            reception_kind, churn_secs: churn,
        };
        let serial = run_once(k, true);
        let (tiled, _hits) = run_engine(k, true, threads);
        prop_assert_eq!(&tiled.counters, &serial.counters, "counters diverged");
        for (i, (t, s)) in tiled.per_node.iter().zip(&serial.per_node).enumerate() {
            prop_assert_eq!(t.2, s.2, "node {} send count diverged", i);
            prop_assert_eq!(&t.1, &s.1, "node {} failures diverged", i);
            prop_assert_eq!(&t.0, &s.0, "node {} receptions diverged", i);
        }
        prop_assert_eq!(&tiled.positions, &serial.positions, "final positions diverged");
    }
}

/// Dense collision-heavy pinned scenario for the tiled layer: many
/// overlapping transmissions keep several live at once, so the pass
/// actually precomputes batches and `TxEnd`s consume them. Asserts the
/// parallel path *engaged* (hits > 0) — without that, this whole
/// differential would vacuously pass with the layer dormant — and that
/// the run is byte-identical to serial for 2 and 4 tiles.
#[test]
fn tiled_dense_identical_and_engaged() {
    let k = Knobs {
        seed: 99,
        nodes: 12,
        field_m: 90.0,
        range_m: 100.0,
        max_speed: 10.0,
        payload: 1200,
        sim_secs: 20,
        reception_kind: 0,
        churn_secs: None,
    };
    let serial = run_once(k, true);
    for threads in [2usize, 4] {
        let (tiled, hits) = run_engine(k, true, threads);
        assert!(
            hits > 0,
            "parallel precompute never engaged at {threads} threads"
        );
        assert_eq!(tiled.counters, serial.counters, "{threads} threads");
        for (t, s) in tiled.per_node.iter().zip(&serial.per_node) {
            assert_eq!(t.0, s.0);
            assert_eq!(t.1, s.1);
            assert_eq!(t.2, s.2);
        }
        assert_eq!(tiled.positions, serial.positions);
    }
}

/// Churn plus shadowing on the tiled path: radio failures rewrite grid
/// buckets and invalidate stamps mid-flight, so this pins the
/// invalidate-then-recompute fallback. Byte-identity must survive it.
#[test]
fn tiled_churny_shadowed_identical() {
    let k = Knobs {
        seed: 1234,
        nodes: 10,
        field_m: 200.0,
        range_m: 90.0,
        max_speed: 12.0,
        payload: 900,
        sim_secs: 25,
        reception_kind: 2,
        churn_secs: Some((6.0, 3.0)),
    };
    let serial = run_once(k, true);
    let (tiled, _hits) = run_engine(k, true, 3);
    assert_eq!(tiled.counters, serial.counters);
    assert!(
        serial
            .counters
            .iter()
            .any(|&(k, v)| k == "churn.fail" && v > 0),
        "scenario failed to churn: {:?}",
        serial.counters
    );
    for (t, s) in tiled.per_node.iter().zip(&serial.per_node) {
        assert_eq!(t.0, s.0);
        assert_eq!(t.1, s.1);
    }
    assert_eq!(tiled.positions, serial.positions);
}

/// A dense, collision-heavy scenario where every broadcast reaches (and
/// every overlap corrupts) many nodes — worst case for index bookkeeping.
#[test]
fn dense_cluster_identical_paths() {
    let out: Vec<Outcome> = [true, false]
        .iter()
        .map(|&sp| {
            run_once(
                Knobs {
                    seed: 99,
                    nodes: 10,
                    field_m: 90.0,
                    range_m: 100.0,
                    max_speed: 10.0,
                    payload: 900,
                    sim_secs: 20,
                    reception_kind: 0,
                    churn_secs: None,
                },
                sp,
            )
        })
        .collect();
    assert_eq!(out[0].counters, out[1].counters);
    assert!(
        out[0]
            .counters
            .iter()
            .any(|&(k, v)| k == "mac.rx_collision" && v > 0),
        "scenario failed to produce collisions: {:?}",
        out[0].counters
    );
    for (g, b) in out[0].per_node.iter().zip(&out[1].per_node) {
        assert_eq!(g.0, b.0);
    }
}

/// A fully hostile fixed scenario — shadowed channel *and* aggressive
/// churn — where the grid's detach/re-attach bookkeeping gets the most
/// exercise, pinned so it runs on every `cargo test` (the proptest only
/// samples this corner).
#[test]
fn stressed_channel_identical_paths() {
    let out: Vec<Outcome> = [true, false]
        .iter()
        .map(|&sp| {
            run_once(
                Knobs {
                    seed: 1234,
                    nodes: 9,
                    field_m: 250.0,
                    range_m: 90.0,
                    max_speed: 12.0,
                    payload: 700,
                    sim_secs: 25,
                    reception_kind: 2,
                    churn_secs: Some((6.0, 3.0)),
                },
                sp,
            )
        })
        .collect();
    assert_eq!(out[0].counters, out[1].counters);
    assert!(
        out[0]
            .counters
            .iter()
            .any(|&(k, v)| k == "churn.fail" && v > 0),
        "scenario failed to churn: {:?}",
        out[0].counters
    );
    for (g, b) in out[0].per_node.iter().zip(&out[1].per_node) {
        assert_eq!(g.0, b.0);
        assert_eq!(g.1, b.1);
    }
    assert_eq!(out[0].positions, out[1].positions);
}

/// A sparse city-sized scenario where most nodes are out of range of
/// each other — worst case for missed candidates.
#[test]
fn sparse_field_identical_paths() {
    let out: Vec<Outcome> = [true, false]
        .iter()
        .map(|&sp| {
            run_once(
                Knobs {
                    seed: 7,
                    nodes: 11,
                    field_m: 1000.0,
                    range_m: 60.0,
                    max_speed: 20.0,
                    payload: 400,
                    sim_secs: 25,
                    reception_kind: 0,
                    churn_secs: None,
                },
                sp,
            )
        })
        .collect();
    assert_eq!(out[0].counters, out[1].counters);
    for (g, b) in out[0].per_node.iter().zip(&out[1].per_node) {
        assert_eq!(g.0, b.0);
        assert_eq!(g.1, b.1);
    }
}
