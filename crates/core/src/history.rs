//! The history table (§4.4): a bounded FIFO of the most recent packets
//! received, retained so gossip replies can carry the actual data.

use std::collections::VecDeque;

use ag_sim::hash::DetHashMap as HashMap;

use crate::message::{PacketId, PacketRecord};

/// Bounded FIFO packet store.
///
/// # Example
///
/// ```
/// use ag_core::{HistoryTable, PacketId, PacketRecord};
/// use ag_net::NodeId;
///
/// let mut h = HistoryTable::new(100);
/// let id = PacketId::new(NodeId::new(1), 7);
/// h.push(PacketRecord { id, payload_len: 64 });
/// assert!(h.contains(&id));
/// assert_eq!(h.get(&id).unwrap().payload_len, 64);
/// ```
#[derive(Debug, Clone)]
pub struct HistoryTable {
    by_id: HashMap<PacketId, PacketRecord>,
    order: VecDeque<PacketId>,
    capacity: usize,
}

impl HistoryTable {
    /// Creates a history holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history table needs capacity");
        // `capacity` bounds eviction, not allocation: storage starts
        // empty and grows on demand, so the millions of history tables
        // a metropolis run builds cost nothing until a node actually
        // stores packets. Iteration goes through `order` (a FIFO), so
        // the map's bucket count cannot influence behaviour.
        HistoryTable {
            by_id: HashMap::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Stores a packet (no-op if already present); evicts the oldest
    /// packet when full.
    pub fn push(&mut self, rec: PacketRecord) {
        if self.by_id.contains_key(&rec.id) {
            return;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.by_id.remove(&old);
            }
        }
        self.order.push_back(rec.id);
        self.by_id.insert(rec.id, rec);
    }

    /// Fetches a stored packet.
    pub fn get(&self, id: &PacketId) -> Option<&PacketRecord> {
        self.by_id.get(id)
    }

    /// `true` if `id` is currently stored.
    pub fn contains(&self, id: &PacketId) -> bool {
        self.by_id.contains_key(id)
    }

    /// Iterates over stored packets, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PacketRecord> {
        self.order.iter().filter_map(|id| self.by_id.get(id))
    }

    /// Number of stored packets.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag_net::NodeId;
    use proptest::prelude::*;

    fn rec(origin: u32, seq: u32) -> PacketRecord {
        PacketRecord {
            id: PacketId::new(NodeId::new(origin), seq),
            payload_len: 64,
        }
    }

    #[test]
    fn stores_and_fetches() {
        let mut h = HistoryTable::new(4);
        h.push(rec(1, 1));
        assert!(h.contains(&PacketId::new(NodeId::new(1), 1)));
        assert!(!h.contains(&PacketId::new(NodeId::new(1), 2)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.capacity(), 4);
    }

    #[test]
    fn duplicate_push_is_noop() {
        let mut h = HistoryTable::new(4);
        h.push(rec(1, 1));
        h.push(rec(1, 1));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn evicts_fifo() {
        let mut h = HistoryTable::new(3);
        for s in 1..=4 {
            h.push(rec(1, s));
        }
        assert_eq!(h.len(), 3);
        assert!(!h.contains(&PacketId::new(NodeId::new(1), 1)));
        assert!(h.contains(&PacketId::new(NodeId::new(1), 4)));
        let order: Vec<u32> = h.iter().map(|r| r.id.seq).collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = HistoryTable::new(0);
    }

    proptest! {
        /// len never exceeds capacity; everything in `order` resolves.
        #[test]
        fn prop_bounded_and_consistent(seqs in prop::collection::vec(0u32..40, 0..200), cap in 1usize..16) {
            let mut h = HistoryTable::new(cap);
            for &s in &seqs {
                h.push(rec(1, s));
                prop_assert!(h.len() <= cap);
                prop_assert_eq!(h.iter().count(), h.len());
            }
        }

        /// The most recent `cap` *distinct* pushes are always retained.
        #[test]
        fn prop_recent_retained(n in 1u32..50, cap in 1usize..10) {
            let mut h = HistoryTable::new(cap);
            for s in 1..=n {
                h.push(rec(1, s));
            }
            let lo = n.saturating_sub(cap as u32 - 1).max(1);
            for s in lo..=n {
                prop_assert!(h.contains(&PacketId::new(NodeId::new(1), s)), "seq {} missing", s);
            }
        }
    }
}
