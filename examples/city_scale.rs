//! City scale: 500 nodes on a square kilometre.
//!
//! The paper evaluates 40–100 nodes on 200 m × 200 m. This example runs
//! the same full stack (MAODV multicast + Anonymous Gossip recovery) at
//! an order of magnitude more nodes, which is only tractable because
//! the engine's receiver and collision lookups go through the uniform-
//! grid spatial index (`crates/net/src/grid.rs`).
//!
//! Two parts:
//!
//! 1. An engine-only beacon workload at N = 500, timed through the grid
//!    index and through the brute-force scans, to show the raw engine
//!    speedup (both produce identical simulations).
//! 2. The full gossip stack on [`Scenario::city_scale`], grid-backed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

// Wall-clock use here is driver-side progress reporting only; the
// simulation itself tells time exclusively via SimTime (the ag-lint
// waivers at each call site say the same to the first lint layer).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use ag_bench::beacon_engine;
use ag_harness::{run_gossip, Scenario};
use ag_sim::SimTime;

const NODES: usize = 500;

fn main() {
    // ── Part 1: raw engine throughput, grid vs brute force. ──
    let sim_secs = 5;
    println!("engine throughput: {NODES} beaconing nodes, {sim_secs} s simulated");
    let mut wall = [0.0f64; 2];
    for (i, (label, spatial)) in [("grid", true), ("brute", false)].iter().enumerate() {
        // ag-lint: allow(wall-clock) -- driver-side progress timing, outside the simulation
        let t0 = Instant::now();
        let mut engine = beacon_engine(NODES, 1, *spatial);
        engine.run_until(SimTime::from_secs(sim_secs));
        wall[i] = t0.elapsed().as_secs_f64();
        let heard: u64 = engine.protocols().iter().map(|p| p.heard).sum();
        println!(
            "  {label:>5}: {:>7.2} s wall, {heard} beacons heard, {} collisions",
            wall[i],
            engine.counters().get("mac.rx_collision"),
        );
    }
    println!("  speedup: {:.1}x\n", wall[1] / wall[0]);

    // ── Part 2: the full gossip stack at city scale. ──
    let sc = Scenario::city_scale(NODES).with_duration_secs(60);
    println!(
        "full stack: {} nodes, {} members, {:.0} m x {:.0} m, range {} m, {} s simulated",
        sc.nodes,
        sc.member_count,
        sc.field.width(),
        sc.field.height(),
        sc.range_m,
        60
    );
    // ag-lint: allow(wall-clock) -- driver-side progress timing, outside the simulation
    let t0 = Instant::now();
    let result = run_gossip(&sc, 7);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "  {wall:.2} s wall; source sent {} packets, mean delivery {:.1} %",
        result.sent,
        100.0 * result.delivery_ratio()
    );
    let summary = result.received_summary();
    println!(
        "  packets per receiver: mean {:.1}, min {:.0}, max {:.0}",
        summary.mean(),
        summary.min(),
        summary.max()
    );
    for key in [
        "mac.broadcast_tx",
        "mac.unicast_tx",
        "mac.rx_delivered",
        "mac.rx_collision",
        "mob.transition",
    ] {
        println!(
            "  {key}: {}",
            result
                .counters
                .iter()
                .find(|(k, _)| k == key)
                .map_or(0, |(_, v)| *v)
        );
    }
}
