//! ODMRP constants.

use ag_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// ODMRP timing parameters (defaults follow the WCNC '99 paper: 3 s
/// Join-Query refresh, forwarding-group lifetime of three refreshes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdmrpConfig {
    /// Interval between a source's Join-Query floods.
    pub query_interval: SimDuration,
    /// How long a forwarding-group flag lives without refresh.
    pub fg_lifetime: SimDuration,
    /// TTL on Join-Query floods.
    pub flood_ttl: u8,
    /// Backward-learning route lifetime.
    pub route_lifetime: SimDuration,
    /// Duplicate-suppression cache sizes.
    pub seen_capacity: usize,
}

impl OdmrpConfig {
    /// The original paper's configuration.
    pub fn default_paper() -> Self {
        OdmrpConfig {
            query_interval: SimDuration::from_secs(3),
            fg_lifetime: SimDuration::from_secs(9),
            flood_ttl: 16,
            route_lifetime: SimDuration::from_secs(9),
            seen_capacity: 2048,
        }
    }
}

impl Default for OdmrpConfig {
    fn default() -> Self {
        OdmrpConfig::default_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = OdmrpConfig::default();
        assert_eq!(c.fg_lifetime, c.query_interval * 3);
        assert!(c.flood_ttl > 0);
    }
}
