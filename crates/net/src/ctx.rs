//! The protocol ↔ world boundary.
//!
//! [`ProtoCtx`] is the *only* surface a [`Protocol`](crate::Protocol)
//! implementation may touch: simulated time, its own address, frame
//! sends, timers, counters, and **named random choices**. Protocol code
//! written against this trait is pure with respect to the world — the
//! same monomorphized handler body runs
//!
//! * under the discrete-event engine ([`NodeApi`](crate::NodeApi)
//!   implements `ProtoCtx` by drawing from the node's deterministic
//!   RNG stream and scheduling real events), and
//! * under the `ag-check` model checker, whose context *enumerates*
//!   every outcome of each named choice instead of sampling one,
//!   turning each handler invocation into a `transition(state, action)
//!   -> (state, effects)` step of a finite machine.
//!
//! The named-choice methods exist so randomness is part of the boundary
//! rather than an ambient capability. Each names the *decision* a
//! protocol makes (jitter a timer, accept with probability `p`, pick a
//! next hop), which is what lets the checker treat them as
//! nondeterministic branch points and the conformance harness replay a
//! recorded engine run choice-for-choice (see [`Choice`]).

use std::fmt;
use std::hash::Hasher;

use ag_sim::hash::FastHasher;
use ag_sim::{SimDuration, SimTime};

use crate::types::{Message, NodeId, RxKind, TimerKey};

/// Everything a protocol can observe or do, as a trait.
///
/// The engine's [`NodeApi`](crate::NodeApi) is the production
/// implementation; `ag-check` provides an enumerating one (model
/// checking) and a replaying one (trace conformance). Handlers are
/// generic over `C`, so the engine pays no dynamic dispatch: the same
/// code monomorphizes per context.
///
/// # Determinism contract
///
/// Implementations must be deterministic functions of their own state:
/// given the same protocol state and the same sequence of returned
/// choice values, a handler must emit the same effects. The engine
/// implementation draws every choice from the node's
/// [`StreamKind::Node`](ag_sim::rng::StreamKind) stream and nothing
/// else, which is what makes recorded runs replayable.
pub trait ProtoCtx<M: Message> {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// This node's address.
    fn id(&self) -> NodeId;

    /// Total number of nodes in the network.
    fn node_count(&self) -> usize;

    /// Queues a unicast frame to `dest` (ACKed; retried; failure
    /// reported via `on_send_failure`).
    fn send(&mut self, dest: NodeId, msg: M);

    /// Queues a local broadcast frame (unacknowledged).
    fn broadcast(&mut self, msg: M);

    /// Schedules `on_timer` with `key` after `delay` (not cancellable).
    fn set_timer(&mut self, delay: SimDuration, key: TimerKey);

    /// Adds 1 to the observability counter `name`.
    fn count(&mut self, name: &'static str);

    /// Adds `n` to the observability counter `name`.
    fn count_n(&mut self, name: &'static str, n: u64);

    /// A uniform draw from `0..bound` (nanoseconds or microseconds by
    /// caller convention) used to de-synchronize periodic timers.
    ///
    /// Jitter never changes *what* a protocol does, only *when*; the
    /// model checker resolves it to 0 and explores timer-tie orders
    /// nondeterministically instead.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    fn jitter(&mut self, bound: u64) -> u64;

    /// A Bernoulli trial with probability `p` (e.g. the paper's
    /// anonymous-vs-cached coin and the member accept probability).
    ///
    /// Sampling implementations draw the trial as-is (the engine keeps
    /// its historical RNG stream bit-identical); enumerating
    /// implementations must not branch when the outcome is forced
    /// (`p <= 0.0` is `false`, `p >= 1.0` is `true`), so degenerate
    /// configurations stay deterministic under the checker.
    fn chance(&mut self, p: f64) -> bool;

    /// A uniform index draw from `0..n` (next-hop / cached-member
    /// selection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    fn pick_index(&mut self, n: usize) -> usize;

    /// A weighted index draw from `0..n` with weight `weight(i)` for
    /// each candidate (§4.2 locality weighting). Weights must be
    /// strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    fn pick_weighted<F: Fn(usize) -> f64>(&mut self, n: usize, weight: F) -> usize;
}

/// The recorded outcome of one named random choice.
///
/// The engine appends one `Choice` per [`ProtoCtx`] draw while tracing
/// is enabled; the conformance harness feeds them back verbatim, so a
/// replayed handler re-executes the engine run decision-for-decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Outcome of [`ProtoCtx::jitter`].
    Jitter(u64),
    /// Outcome of [`ProtoCtx::chance`].
    Chance(bool),
    /// Outcome of [`ProtoCtx::pick_index`] or
    /// [`ProtoCtx::pick_weighted`] (the selected candidate).
    Index(usize),
}

/// What the engine dispatched into a protocol instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dispatch<M> {
    /// [`Protocol::start`](crate::Protocol::start) at time zero.
    Start,
    /// [`Protocol::on_packet`](crate::Protocol::on_packet).
    Packet {
        /// The sending node.
        from: NodeId,
        /// The delivered payload.
        msg: M,
        /// Unicast or broadcast reception.
        rx: RxKind,
    },
    /// [`Protocol::on_timer`](crate::Protocol::on_timer).
    Timer {
        /// The timer tag.
        key: TimerKey,
    },
    /// [`Protocol::on_send_failure`](crate::Protocol::on_send_failure).
    SendFailure {
        /// The unreachable destination.
        to: NodeId,
        /// The undeliverable payload.
        msg: M,
    },
}

/// One protocol dispatch in an engine trace: what went in, which
/// choices were drawn, and a digest of the node's state afterwards.
///
/// A trace is the engine's half of the conformance contract: replaying
/// `dispatch` with `choices` through the pure facade must land on a
/// state with the same `digest`, or the simulated protocol and the
/// checked model have drifted apart.
#[derive(Debug, Clone)]
pub struct TraceRecord<M> {
    /// The node the dispatch went to.
    pub node: NodeId,
    /// Simulated time of the dispatch.
    pub at: SimTime,
    /// The handler invocation.
    pub dispatch: Dispatch<M>,
    /// Every named-choice outcome drawn during the handler, in order.
    pub choices: Vec<Choice>,
    /// [`state_digest`] of the protocol state after the handler
    /// returned.
    pub digest: u64,
}

/// Canonical digest of a protocol state: [`FastHasher`] over the
/// state's `Debug` rendering, streamed without an intermediate string.
///
/// `Debug` is the canonical form because every protocol table in this
/// workspace hashes with fixed keys
/// ([`DetHashMap`](ag_sim::hash::DetHashMap)), so iteration order — and
/// with it the rendering — is identical across processes for identical
/// operation histories. Two equal states therefore digest equally,
/// which is all conformance and the checker's visited set need.
pub fn state_digest<T: fmt::Debug>(value: &T) -> u64 {
    struct HashWriter(FastHasher);
    impl fmt::Write for HashWriter {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    let mut w = HashWriter(FastHasher::default());
    let _ = fmt::write(&mut w, format_args!("{value:?}"));
    w.0.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_and_reproduces() {
        let a = (1u32, "x", vec![3u8, 4]);
        let b = (1u32, "x", vec![3u8, 5]);
        assert_eq!(state_digest(&a), state_digest(&a));
        assert_ne!(state_digest(&a), state_digest(&b));
    }

    #[test]
    fn digest_is_stable_across_calls() {
        // `fmt` hands the writer the same chunk sequence for the same
        // value, so the streamed digest is reproducible.
        let v = vec![(1u16, 2u64); 17];
        assert_eq!(state_digest(&v), state_digest(&v));
    }

    #[test]
    fn choice_and_dispatch_are_comparable() {
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct Ping;
        impl Message for Ping {
            fn wire_size(&self) -> usize {
                1
            }
        }
        assert_eq!(Choice::Index(3), Choice::Index(3));
        assert_ne!(Choice::Chance(true), Choice::Chance(false));
        let d: Dispatch<Ping> = Dispatch::Timer { key: 7 };
        assert_eq!(d, Dispatch::Timer { key: 7 });
    }
}
