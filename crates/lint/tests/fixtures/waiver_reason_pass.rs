//! must-pass: a well-formed waiver — named rule, `--`, non-empty
//! reason — suppresses its finding and raises nothing itself.

pub fn waived() {
    // ag-lint: allow(wall-clock) -- fixture: documented driver timing
    let _t0 = std::time::Instant::now();
}
