//! # ag-sim: deterministic discrete-event simulation kernel
//!
//! This crate is the substrate replacing GloMoSim/PARSEC in the reproduction
//! of *Anonymous Gossip: Improving Multicast Reliability in Mobile Ad-Hoc
//! Networks* (Chandra, Ramasubramanian, Birman — ICDCS 2001). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer nanosecond simulated time,
//!   immune to floating-point drift over 600-second runs.
//! * [`EventQueue`] — the scheduler: a self-resizing calendar queue of
//!   timestamped events with deterministic FIFO tie-breaking, the heart
//!   of the kernel. The seed `BinaryHeap` implementation survives as
//!   [`reference::BinaryHeapQueue`], the differential-testing oracle and
//!   perf baseline (both drain in the identical `(time, seq)` order).
//! * [`rng`] — reproducible random-number streams: a master seed is split
//!   into independent per-component streams with SplitMix64 so that adding a
//!   node or a protocol never perturbs the randomness seen by others.
//! * [`stats`] — counters, summaries and histograms used by the experiment
//!   harness to build the paper's tables and error bars.
//!
//! The kernel is *sequential*: GloMoSim's parallelism was a wall-clock
//! optimisation, not a semantic feature, and a sequential kernel buys exact
//! reproducibility (a run is a pure function of `(scenario, seed)`).
//!
//! # Example
//!
//! ```
//! use ag_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "now");
//! assert_eq!(t, SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod time;

pub mod hash;
pub mod reference;
pub mod rng;
pub mod stats;

pub use event::{EventEntry, EventQueue};
pub use time::{SimDuration, SimTime};
