//! `Parallelism::auto()` environment handling.
//!
//! These tests mutate `AG_THREADS`, so they live in their own
//! integration-test binary (its own process) and run sequentially in a
//! single `#[test]` — env vars are process-global, and the in-crate
//! unit tests assume a clean environment.

use ag_harness::Parallelism;

#[test]
fn auto_honors_ag_threads_and_falls_back_sanely() {
    // Explicit positive values win verbatim.
    for v in ["1", "3", "16", " 2 "] {
        std::env::set_var("AG_THREADS", v);
        assert_eq!(
            Parallelism::auto().threads(),
            v.trim().parse::<usize>().unwrap(),
            "AG_THREADS={v:?}"
        );
    }
    // Garbage, zero and negatives fall back to machine parallelism.
    let fallback = {
        std::env::remove_var("AG_THREADS");
        Parallelism::auto().threads()
    };
    assert!(fallback >= 1);
    for v in ["0", "-4", "many", "", "  ", "2.5"] {
        std::env::set_var("AG_THREADS", v);
        assert_eq!(
            Parallelism::auto().threads(),
            fallback,
            "AG_THREADS={v:?} must fall back"
        );
    }
    std::env::remove_var("AG_THREADS");
}
