//! The Multicast Route Table (paper §3) with the Anonymous Gossip
//! `nearest_member` extension (paper §4.2).
//!
//! A node holding an entry is (or is becoming) a router of the group's
//! multicast tree. Each next hop carries:
//!
//! * an **enabled** flag — set only by MACT activation, exactly as in
//!   MAODV (inactive entries are join-in-progress bookkeeping);
//! * an **upstream** flag — the next hop toward the group leader;
//! * the **nearest_member** distance — hops from *this node* to the
//!   nearest group member reachable through that next hop. This is the
//!   field Anonymous Gossip's locality-weighted propagation reads.
//!
//! The propagation rule is split-horizon min-plus-one: the value this
//! node advertises *to* next hop `H` is
//! `1 + min(0 if member, min over other next hops K of nm[K])`,
//! saturating at a configured "infinity". On a tree (acyclic) with
//! split horizon this converges and changes stay local, matching §4.2.

use ag_net::NodeId;

use crate::GroupId;

/// One next-hop entry of the multicast route table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// The neighbour.
    pub node: NodeId,
    /// Activated by MACT (a real tree edge) vs. pending.
    pub enabled: bool,
    /// `true` if this next hop leads toward the group leader.
    pub upstream: bool,
    /// Hops from this node to the nearest member through this next hop;
    /// saturates at the table's infinity value when unknown.
    pub nearest_member: u8,
}

/// The per-group multicast routing state of one node.
///
/// # Example — the paper's Figure 1, seen from router E
///
/// ```
/// use ag_maodv::mrt::MulticastRouteTable;
/// use ag_maodv::GroupId;
/// use ag_net::NodeId;
///
/// let d = NodeId::new(3); // member, one hop away
/// let f = NodeId::new(5); // router toward member H (3 hops)
/// let mut mrt = MulticastRouteTable::new(GroupId(0), 32);
/// mrt.enable_next_hop(d, true);  // MACT from a member: nearest_member = 1
/// mrt.enable_next_hop(f, false);
/// mrt.set_nearest_member(f, 3);
/// // E is not a member: the value E advertises to D excludes D itself.
/// assert_eq!(mrt.advertised_nearest_member(d, false), 4); // 1 + nm[F]
/// assert_eq!(mrt.advertised_nearest_member(f, false), 2); // 1 + nm[D]
/// ```
#[derive(Debug, Clone)]
pub struct MulticastRouteTable {
    /// The group this entry is for.
    pub group: GroupId,
    /// Current group leader as far as this node knows.
    pub leader: Option<NodeId>,
    /// Freshest group sequence number seen.
    pub group_seq: u32,
    /// Hops to the leader (updated from GRPH floods).
    pub hops_to_leader: u8,
    next_hops: Vec<NextHop>,
    infinity: u8,
}

impl MulticastRouteTable {
    /// Creates an empty entry; `infinity` is the saturation value for
    /// `nearest_member` distances.
    pub fn new(group: GroupId, infinity: u8) -> Self {
        MulticastRouteTable {
            group,
            leader: None,
            group_seq: 0,
            hops_to_leader: u8::MAX,
            next_hops: Vec::new(),
            infinity,
        }
    }

    /// The saturation value for unknown member distances.
    pub fn infinity(&self) -> u8 {
        self.infinity
    }

    /// Looks up a next hop.
    pub fn next_hop(&self, node: NodeId) -> Option<&NextHop> {
        self.next_hops.iter().find(|h| h.node == node)
    }

    /// Ensures an (inactive) next-hop entry exists and returns it.
    pub fn ensure_next_hop(&mut self, node: NodeId) -> &mut NextHop {
        if let Some(i) = self.next_hops.iter().position(|h| h.node == node) {
            &mut self.next_hops[i]
        } else {
            self.next_hops.push(NextHop {
                node,
                enabled: false,
                upstream: false,
                nearest_member: self.infinity,
            });
            self.next_hops.last_mut().expect("just pushed")
        }
    }

    /// Activates the tree edge toward `node` (MACT processing). If the
    /// activating neighbour is itself a member, its distance is 1 (§4.2:
    /// "the nearest router … sets the value of nearest member field to
    /// one").
    pub fn enable_next_hop(&mut self, node: NodeId, neighbor_is_member: bool) {
        let inf = self.infinity;
        let h = self.ensure_next_hop(node);
        h.enabled = true;
        h.nearest_member = if neighbor_is_member { 1 } else { inf };
    }

    /// Marks `node` as the upstream next hop (clearing any previous one).
    pub fn set_upstream(&mut self, node: NodeId) {
        for h in &mut self.next_hops {
            h.upstream = h.node == node;
        }
    }

    /// The upstream next hop, if one is enabled.
    pub fn upstream(&self) -> Option<NodeId> {
        self.next_hops
            .iter()
            .find(|h| h.enabled && h.upstream)
            .map(|h| h.node)
    }

    /// Removes the entry for `node`; returns `true` if it existed.
    pub fn remove_next_hop(&mut self, node: NodeId) -> bool {
        let before = self.next_hops.len();
        self.next_hops.retain(|h| h.node != node);
        before != self.next_hops.len()
    }

    /// Drops all next-hop entries (partition reset).
    pub fn clear_next_hops(&mut self) {
        self.next_hops.clear();
    }

    /// Iterator over enabled (activated) next hops, in insertion order.
    pub fn enabled(&self) -> impl Iterator<Item = &NextHop> {
        self.next_hops.iter().filter(|h| h.enabled)
    }

    /// Number of enabled next hops.
    pub fn enabled_count(&self) -> usize {
        self.enabled().count()
    }

    /// All entries including inactive ones.
    pub fn all(&self) -> &[NextHop] {
        &self.next_hops
    }

    /// Records the `nearest_member` distance learned from `node`'s
    /// update. Returns `true` if the stored value changed.
    pub fn set_nearest_member(&mut self, node: NodeId, value: u8) -> bool {
        let inf = self.infinity;
        let Some(i) = self.next_hops.iter().position(|h| h.node == node) else {
            return false;
        };
        let v = value.min(inf);
        if self.next_hops[i].nearest_member != v {
            self.next_hops[i].nearest_member = v;
            true
        } else {
            false
        }
    }

    /// The distance this node advertises to next hop `to`: one more than
    /// the nearest member reachable *not* through `to` (split horizon),
    /// or 1 if this node is itself a member.
    pub fn advertised_nearest_member(&self, to: NodeId, self_is_member: bool) -> u8 {
        let mut best = if self_is_member { 0 } else { self.infinity };
        for h in self.enabled() {
            if h.node != to {
                best = best.min(h.nearest_member);
            }
        }
        best.saturating_add(1).min(self.infinity)
    }

    /// The advertisement vector: `(next hop, value)` for every enabled
    /// next hop. The caller diffs this against what it last sent and
    /// unicasts only the changes (§4.2: "sent only if different").
    pub fn advertisements(&self, self_is_member: bool) -> Vec<(NodeId, u8)> {
        self.enabled()
            .map(|h| {
                (
                    h.node,
                    self.advertised_nearest_member(h.node, self_is_member),
                )
            })
            .collect()
    }

    /// Distance to the nearest member through *any* enabled next hop.
    pub fn nearest_member_any(&self) -> u8 {
        self.enabled()
            .map(|h| h.nearest_member)
            .min()
            .unwrap_or(self.infinity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> NodeId {
        NodeId::new(n)
    }

    fn table() -> MulticastRouteTable {
        MulticastRouteTable::new(GroupId(0), 32)
    }

    #[test]
    fn ensure_is_idempotent_and_inactive() {
        let mut m = table();
        m.ensure_next_hop(id(1));
        m.ensure_next_hop(id(1));
        assert_eq!(m.all().len(), 1);
        assert!(!m.all()[0].enabled);
        assert_eq!(m.all()[0].nearest_member, 32);
        assert_eq!(m.enabled_count(), 0);
    }

    #[test]
    fn enable_sets_member_distance_one() {
        let mut m = table();
        m.enable_next_hop(id(1), true);
        m.enable_next_hop(id(2), false);
        assert_eq!(m.next_hop(id(1)).unwrap().nearest_member, 1);
        assert_eq!(m.next_hop(id(2)).unwrap().nearest_member, 32);
        assert_eq!(m.enabled_count(), 2);
    }

    #[test]
    fn upstream_is_exclusive() {
        let mut m = table();
        m.enable_next_hop(id(1), false);
        m.enable_next_hop(id(2), false);
        m.set_upstream(id(1));
        assert_eq!(m.upstream(), Some(id(1)));
        m.set_upstream(id(2));
        assert_eq!(m.upstream(), Some(id(2)));
        assert!(!m.next_hop(id(1)).unwrap().upstream);
    }

    #[test]
    fn remove_and_clear() {
        let mut m = table();
        m.enable_next_hop(id(1), false);
        m.enable_next_hop(id(2), false);
        assert!(m.remove_next_hop(id(1)));
        assert!(!m.remove_next_hop(id(1)));
        assert_eq!(m.enabled_count(), 1);
        m.clear_next_hops();
        assert_eq!(m.all().len(), 0);
    }

    /// The paper's Figure 1: members {A,C,D,H,I,J}, routers {B,E,F,G}.
    /// Checking router E (next hops D, F, B in our reconstruction) and
    /// the worked example for node D from §4.2.
    #[test]
    fn figure_one_router_e() {
        let (b, d, f) = (id(1), id(3), id(5));
        let mut e = table();
        e.enable_next_hop(d, true); // D is a member: distance 1
        e.enable_next_hop(f, false);
        e.enable_next_hop(b, false);
        e.set_nearest_member(f, 3); // E→F→G→H
        e.set_nearest_member(b, 2); // E→B→A
                                    // Split horizon: what E tells D excludes D.
        assert_eq!(e.advertised_nearest_member(d, false), 3); // 1 + min(3, 2)
        assert_eq!(e.advertised_nearest_member(f, false), 2); // 1 + min(1, 2)
        assert_eq!(e.advertised_nearest_member(b, false), 2); // 1 + min(1, 3)
        assert_eq!(e.nearest_member_any(), 1);
    }

    /// §4.2's worked example: D has next hops {B, C, E} with values
    /// {b, c, e}; D sends 1+min(c,e) to B, 1+min(b,e) to C, 1+min(b,c)
    /// to E. (Generic form, D not a member.)
    #[test]
    fn section_4_2_update_rule() {
        let (b, c, e) = (id(1), id(2), id(4));
        let mut d = table();
        d.enable_next_hop(b, false);
        d.enable_next_hop(c, false);
        d.enable_next_hop(e, false);
        d.set_nearest_member(b, 4);
        d.set_nearest_member(c, 2);
        d.set_nearest_member(e, 7);
        let ads = d.advertisements(false);
        let get = |n: NodeId| ads.iter().find(|(h, _)| *h == n).unwrap().1;
        assert_eq!(get(b), 1 + 2); // 1 + min(c, e) = 1 + min(2, 7)
        assert_eq!(get(c), 1 + 4); // 1 + min(b, e) = 1 + min(4, 7)
        assert_eq!(get(e), 1 + 2); // 1 + min(b, c) = 1 + min(4, 2)
    }

    #[test]
    fn member_advertises_distance_one() {
        let mut m = table();
        m.enable_next_hop(id(1), false);
        assert_eq!(m.advertised_nearest_member(id(1), true), 1);
    }

    #[test]
    fn advertisement_saturates_at_infinity() {
        let mut m = table();
        m.enable_next_hop(id(1), false);
        // Only next hop is the excluded one, node not a member: infinity.
        assert_eq!(m.advertised_nearest_member(id(1), false), 32);
        // Values already at infinity stay there.
        m.enable_next_hop(id(2), false);
        assert_eq!(m.advertised_nearest_member(id(1), false), 32);
    }

    #[test]
    fn set_nearest_member_reports_changes() {
        let mut m = table();
        m.enable_next_hop(id(1), false);
        assert!(m.set_nearest_member(id(1), 5));
        assert!(!m.set_nearest_member(id(1), 5));
        assert!(m.set_nearest_member(id(1), 4));
        // Unknown next hop: no-op.
        assert!(!m.set_nearest_member(id(9), 1));
        // Values clamp to infinity.
        assert!(m.set_nearest_member(id(1), 200));
        assert_eq!(m.next_hop(id(1)).unwrap().nearest_member, 32);
    }

    /// Convergence sanity for the split-horizon propagation on a path
    /// A(member) — B — C — D: simulate rounds of exchanging
    /// advertisements until stable, then check the fixpoint.
    #[test]
    fn propagation_converges_on_a_path() {
        let ids: Vec<NodeId> = (0..4).map(id).collect();
        let member = [true, false, false, false];
        let mut tables: Vec<MulticastRouteTable> = (0..4).map(|_| table()).collect();
        for i in 0..4usize {
            if i > 0 {
                tables[i].enable_next_hop(ids[i - 1], member[i - 1]);
            }
            if i < 3 {
                tables[i].enable_next_hop(ids[i + 1], member[i + 1]);
            }
        }
        // Exchange advertisements until no table changes (≤ diameter rounds).
        for _ in 0..6 {
            let mut changed = false;
            for i in 0..4usize {
                for (to, val) in tables[i].advertisements(member[i]) {
                    let j = to.index();
                    changed |= tables[j].set_nearest_member(ids[i], val);
                }
            }
            if !changed {
                break;
            }
        }
        // D's distance to the member A through C must be 3.
        assert_eq!(tables[3].next_hop(ids[2]).unwrap().nearest_member, 3);
        assert_eq!(tables[2].next_hop(ids[1]).unwrap().nearest_member, 2);
        assert_eq!(tables[1].next_hop(ids[0]).unwrap().nearest_member, 1);
        // Nothing claims a member in the A-ward direction beyond A itself.
        assert_eq!(tables[0].next_hop(ids[1]).unwrap().nearest_member, 32);
    }
}
