//! Delivery accounting shared by the bare-MAODV baseline and the gossip
//! layer.
//!
//! The paper's headline metric is "number of packets received by each
//! group member" (de-duplicated), split here by *how* the packet arrived
//! so the harness can attribute recovery to gossip.

use ag_sim::hash::DetHashSet as HashSet;

use ag_net::NodeId;
use serde::Serialize;

/// How a data packet reached a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPath {
    /// Along the multicast tree (phase one).
    Tree,
    /// Carried by a gossip reply (phase two).
    Gossip,
}

/// Per-member record of every distinct data packet received.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeliveryLog {
    seen: HashSet<(NodeId, u32)>,
    via_tree: u64,
    via_gossip: u64,
    duplicates: u64,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records packet `(origin, seq)` arriving via `path`. Returns `true`
    /// if it was new (first delivery).
    pub fn record(&mut self, origin: NodeId, seq: u32, path: DeliveryPath) -> bool {
        if self.seen.insert((origin, seq)) {
            match path {
                DeliveryPath::Tree => self.via_tree += 1,
                DeliveryPath::Gossip => self.via_gossip += 1,
            }
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// `true` if `(origin, seq)` has been delivered.
    pub fn contains(&self, origin: NodeId, seq: u32) -> bool {
        self.seen.contains(&(origin, seq))
    }

    /// Distinct packets delivered.
    pub fn distinct(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Distinct packets that arrived along the tree.
    pub fn via_tree(&self) -> u64 {
        self.via_tree
    }

    /// Distinct packets first delivered by a gossip reply.
    pub fn via_gossip(&self) -> u64 {
        self.via_gossip
    }

    /// Re-deliveries of already-known packets.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_delivery_counts_once() {
        let mut log = DeliveryLog::new();
        let o = NodeId::new(1);
        assert!(log.record(o, 1, DeliveryPath::Tree));
        assert!(!log.record(o, 1, DeliveryPath::Gossip));
        assert_eq!(log.distinct(), 1);
        assert_eq!(log.via_tree(), 1);
        assert_eq!(log.via_gossip(), 0);
        assert_eq!(log.duplicates(), 1);
        assert!(log.contains(o, 1));
        assert!(!log.contains(o, 2));
    }

    #[test]
    fn paths_attributed_independently() {
        let mut log = DeliveryLog::new();
        let o = NodeId::new(1);
        log.record(o, 1, DeliveryPath::Tree);
        log.record(o, 2, DeliveryPath::Gossip);
        log.record(NodeId::new(2), 1, DeliveryPath::Gossip);
        assert_eq!(log.distinct(), 3);
        assert_eq!(log.via_tree(), 1);
        assert_eq!(log.via_gossip(), 2);
        assert_eq!(log.duplicates(), 0);
    }
}
