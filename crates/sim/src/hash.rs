//! Deterministic hashing for simulation-side maps.
//!
//! `std`'s default `RandomState` draws fresh SipHash keys per process.
//! That never changes simulation *results* here — every protocol is
//! written to be iteration-order independent, and the golden snapshots
//! prove it across processes — but it does change map iteration order,
//! and with it the exact *allocation pattern* of anything that grows
//! while folding over a map. The perf trajectory gates allocation
//! counts as exact integers (see `docs/BENCHMARKS.md`), so run-to-run
//! wobble of even a handful of allocations would make that gate flaky.
//!
//! The fix is a fixed-key hasher: same map behaviour every process,
//! and cheaper per write than SipHash (hash-flooding resistance buys
//! nothing against a workload we generate ourselves). Protocol tables
//! use the [`DetHashMap`]/[`DetHashSet`] aliases instead of the std
//! defaults.

use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style multiply-rotate hasher with no per-process state.
///
/// The mixing constant is the 64-bit golden-ratio multiplier; each
/// written word is folded in with a rotate-xor-multiply step. Quality
/// is ample for the small integer and tuple keys the protocol tables
/// use, and hashing stays a few instructions per word.
#[derive(Default, Clone)]
pub struct FastHasher(u64);

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy keys spread into the high
        // bits hashbrown derives its control bytes from.
        let mut z = self.0;
        z ^= z >> 32;
        z = z.wrapping_mul(SEED);
        z ^ (z >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "c" and "a" + "bc" differ.
            self.fold(u64::from_le_bytes(word) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) producing [`FastHasher`]s —
/// identical in every process.
pub type DetBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` with deterministic, per-process-stable hashing.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetBuildHasher>;

/// A `HashSet` with deterministic, per-process-stable hashing.
pub type DetHashSet<K> = std::collections::HashSet<K, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        DetBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_distinct_keys_spread() {
        assert_eq!(hash_of(&(7u32, 9u32)), hash_of(&(7u32, 9u32)));
        let mut seen = DetHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        // Sequential integers must not collapse onto few hashes.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_chunking_is_length_prefixed() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FastHasher::default();
        b.write(b"a");
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let collect = || {
            let mut m = DetHashMap::default();
            for i in 0..1000u32 {
                m.insert(i, i * 2);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }
}
